//! Regression tests for seeded reproducibility: identical seeds must give
//! bit-identical runs at both levels of the stack — the vector-level `run_avg`
//! and the node-level `GossipSimulation` — which is what lets
//! `simulator_and_vector_algorithm_agree` and every benchmark pin exact
//! tolerances to fixed seeds.

use epidemic_aggregation::prelude::*;
use rand::SeedableRng;

fn vector_run(seed: u64) -> (Vec<u64>, Vec<(u64, u64)>) {
    let n = 500;
    let mut values: Vec<f64> = (0..n).map(|i| (i % 91) as f64).collect();
    let topology = CompleteTopology::new(n);
    let mut selector = SequentialSelector::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let reports = run_avg(&mut values, &topology, &mut selector, &mut rng, 8).unwrap();
    (
        values.iter().map(|v| v.to_bits()).collect(),
        reports
            .iter()
            .map(|r| (r.variance_before.to_bits(), r.variance_after.to_bits()))
            .collect(),
    )
}

#[test]
fn vector_level_runs_are_bit_identical_for_identical_seeds() {
    assert_eq!(vector_run(2024), vector_run(2024));
    assert_ne!(
        vector_run(2024).0,
        vector_run(2025).0,
        "different seeds must explore different exchange schedules"
    );
}

fn simulation_summaries(seed: u64) -> Vec<gossip_sim::CycleSummary> {
    let values: Vec<f64> = (0..400).map(|i| (i % 53) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(10)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol), &values, seed);
    sim.run(25)
}

#[test]
fn node_level_simulations_are_bit_identical_for_identical_seeds() {
    let a = simulation_summaries(77);
    let b = simulation_summaries(77);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cycle, y.cycle);
        assert_eq!(x.exchanges, y.exchanges);
        assert_eq!(x.messages_lost, y.messages_lost);
        assert_eq!(
            x.estimate_mean.to_bits(),
            y.estimate_mean.to_bits(),
            "cycle {}: means differ at the bit level",
            x.cycle
        );
        assert_eq!(
            x.estimate_variance.to_bits(),
            y.estimate_variance.to_bits(),
            "cycle {}: variances differ at the bit level",
            x.cycle
        );
        assert_eq!(x.epoch_estimates, y.epoch_estimates);
    }
    assert_ne!(
        simulation_summaries(77)
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        simulation_summaries(78)
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        "different master seeds must give different trajectories"
    );
}

/// Churn runs exercise the arena free list (departures freeing slots, joins
/// reclaiming them, generation bumps on reuse); slot recycling must not
/// perturb determinism — same seed, bit-identical trajectory.
fn churn_summaries(seed: u64) -> (Vec<gossip_sim::CycleSummary>, usize) {
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol), &values, seed);
    let mut summaries = Vec::new();
    for cycle in 0..30 {
        // 5 joins then 5 departures per cycle: every join after the first
        // cycle lands in a recycled slot with a bumped generation.
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        summaries.push(sim.run_cycle());
    }
    (summaries, sim.slot_capacity())
}

#[test]
fn churn_runs_with_slot_reuse_are_bit_identical_for_identical_seeds() {
    let (a, capacity_a) = churn_summaries(99);
    let (b, capacity_b) = churn_summaries(99);
    assert_eq!(capacity_a, capacity_b);
    assert!(
        capacity_a <= 305,
        "free-list reuse must keep the arena at peak live + per-cycle joins, got {capacity_a}"
    );
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.live_nodes, y.live_nodes);
        assert_eq!(x.exchanges, y.exchanges);
        assert_eq!(
            x.estimate_mean.to_bits(),
            y.estimate_mean.to_bits(),
            "cycle {}: means differ at the bit level under churn",
            x.cycle
        );
        assert_eq!(
            x.estimate_variance.to_bits(),
            y.estimate_variance.to_bits(),
            "cycle {}: variances differ at the bit level under churn",
            x.cycle
        );
        assert_eq!(x.epoch_estimates, y.epoch_estimates);
    }
    assert_ne!(
        churn_summaries(99)
            .0
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        churn_summaries(100)
            .0
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        "different seeds must churn differently"
    );
}

/// The experiment runners (used by the benches and the convergence-rate
/// integration tests) are reproducible end to end: same seed, same Summary.
#[test]
fn variance_experiments_are_reproducible() {
    let run = || {
        VarianceExperiment::figure3(
            2_000,
            TopologyKind::Complete,
            SelectorKind::Sequential,
            1,
            5,
            123,
        )
        .run_first_cycle()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.mean.to_bits(), b.mean.to_bits());
    assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
}
