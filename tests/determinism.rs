//! Regression tests for seeded reproducibility: identical seeds must give
//! bit-identical runs at both levels of the stack — the vector-level `run_avg`
//! and the node-level `GossipSimulation` — which is what lets
//! `simulator_and_vector_algorithm_agree` and every benchmark pin exact
//! tolerances to fixed seeds.

use epidemic_aggregation::prelude::*;
use rand::SeedableRng;

fn vector_run(seed: u64) -> (Vec<u64>, Vec<(u64, u64)>) {
    let n = 500;
    let mut values: Vec<f64> = (0..n).map(|i| (i % 91) as f64).collect();
    let topology = CompleteTopology::new(n);
    let mut selector = SequentialSelector::new();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let reports = run_avg(&mut values, &topology, &mut selector, &mut rng, 8).unwrap();
    (
        values.iter().map(|v| v.to_bits()).collect(),
        reports
            .iter()
            .map(|r| (r.variance_before.to_bits(), r.variance_after.to_bits()))
            .collect(),
    )
}

#[test]
fn vector_level_runs_are_bit_identical_for_identical_seeds() {
    assert_eq!(vector_run(2024), vector_run(2024));
    assert_ne!(
        vector_run(2024).0,
        vector_run(2025).0,
        "different seeds must explore different exchange schedules"
    );
}

fn simulation_summaries(seed: u64) -> Vec<gossip_sim::CycleSummary> {
    let values: Vec<f64> = (0..400).map(|i| (i % 53) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(10)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol), &values, seed);
    sim.run(25)
}

#[test]
fn node_level_simulations_are_bit_identical_for_identical_seeds() {
    let a = simulation_summaries(77);
    let b = simulation_summaries(77);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.cycle, y.cycle);
        assert_eq!(x.exchanges, y.exchanges);
        assert_eq!(x.messages_lost, y.messages_lost);
        assert_eq!(
            x.estimate_mean.to_bits(),
            y.estimate_mean.to_bits(),
            "cycle {}: means differ at the bit level",
            x.cycle
        );
        assert_eq!(
            x.estimate_variance.to_bits(),
            y.estimate_variance.to_bits(),
            "cycle {}: variances differ at the bit level",
            x.cycle
        );
        assert_eq!(x.epoch_estimates, y.epoch_estimates);
    }
    assert_ne!(
        simulation_summaries(77)
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        simulation_summaries(78)
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        "different master seeds must give different trajectories"
    );
}

/// Churn runs exercise the arena free list (departures freeing slots, joins
/// reclaiming them, generation bumps on reuse); slot recycling must not
/// perturb determinism — same seed, bit-identical trajectory.
fn churn_summaries(seed: u64) -> (Vec<gossip_sim::CycleSummary>, usize) {
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol), &values, seed);
    let mut summaries = Vec::new();
    for cycle in 0..30 {
        // 5 joins then 5 departures per cycle: every join after the first
        // cycle lands in a recycled slot with a bumped generation.
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        summaries.push(sim.run_cycle());
    }
    (summaries, sim.slot_capacity())
}

#[test]
fn churn_runs_with_slot_reuse_are_bit_identical_for_identical_seeds() {
    let (a, capacity_a) = churn_summaries(99);
    let (b, capacity_b) = churn_summaries(99);
    assert_eq!(capacity_a, capacity_b);
    assert!(
        capacity_a <= 305,
        "free-list reuse must keep the arena at peak live + per-cycle joins, got {capacity_a}"
    );
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.live_nodes, y.live_nodes);
        assert_eq!(x.exchanges, y.exchanges);
        assert_eq!(
            x.estimate_mean.to_bits(),
            y.estimate_mean.to_bits(),
            "cycle {}: means differ at the bit level under churn",
            x.cycle
        );
        assert_eq!(
            x.estimate_variance.to_bits(),
            y.estimate_variance.to_bits(),
            "cycle {}: variances differ at the bit level under churn",
            x.cycle
        );
        assert_eq!(x.epoch_estimates, y.epoch_estimates);
    }
    assert_ne!(
        churn_summaries(99)
            .0
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        churn_summaries(100)
            .0
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        "different seeds must churn differently"
    );
}

/// Drives a sharded run with churn and message loss: joins and departures
/// exercise the global directory's swap-remove bookkeeping and the per-shard
/// free lists; the loss model exercises the per-exchange seeded draws.
fn sharded_summaries(
    seed: u64,
    shards: usize,
    workers: Option<usize>,
    message_loss: f64,
) -> (Vec<gossip_sim::ShardedCycleSummary>, Vec<u64>) {
    sharded_summaries_with(
        seed,
        shards,
        workers,
        message_loss,
        SamplerConfig::UniformComplete,
    )
}

fn sharded_summaries_with(
    seed: u64,
    shards: usize,
    workers: Option<usize>,
    message_loss: f64,
    sampler: SamplerConfig,
) -> (Vec<gossip_sim::ShardedCycleSummary>, Vec<u64>) {
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let config = ShardedConfig {
        base: SimulationConfig {
            protocol,
            conditions: NetworkConditions::with_message_loss(message_loss),
            leader_policy: None,
            sampler,
            redundancy: None,
        },
        shards,
        workers,
    };
    let mut sim = ShardedSimulation::new(config, &values, seed).unwrap();
    let mut summaries = Vec::new();
    for cycle in 0..30 {
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        summaries.push(sim.run_cycle());
    }
    let bits = sim.estimates().iter().map(|v| v.to_bits()).collect();
    (summaries, bits)
}

/// Tentpole pin: the sharded engine is bit-deterministic — same seed, same
/// shard count, bit-identical cycle summaries (including the merged
/// floating-point telemetry), regardless of thread scheduling.
#[test]
fn sharded_runs_are_bit_identical_for_identical_seeds() {
    for shards in [1, 3, 8] {
        let (a, bits_a) = sharded_summaries(2024, shards, None, 0.1);
        let (b, bits_b) = sharded_summaries(2024, shards, None, 0.1);
        assert_eq!(a, b, "{shards}-shard runs must be bit-identical");
        assert_eq!(bits_a, bits_b);
    }
    assert_ne!(
        sharded_summaries(2024, 2, None, 0.1).1,
        sharded_summaries(2025, 2, None, 0.1).1,
        "different seeds must explore different schedules"
    );
}

/// Worker threads are an execution resource, not a semantic one: for a fixed
/// shard count, the single-worker sequential executor (fused exchanges, no
/// mailboxes) and the multi-worker round/mailbox executor must produce
/// bit-identical summaries — including when workers own several shards each.
#[test]
fn worker_count_does_not_change_results_at_all() {
    let (reference, reference_bits) = sharded_summaries(31, 4, Some(1), 0.1);
    for workers in [2, 3, 4] {
        let (summaries, bits) = sharded_summaries(31, 4, Some(workers), 0.1);
        assert_eq!(
            summaries, reference,
            "{workers}-worker execution must match the sequential executor"
        );
        assert_eq!(bits, reference_bits);
    }
}

/// Tentpole pin: changing the shard count changes *only* the floating-point
/// summation order of cross-shard telemetry reductions — never the node
/// values. The exchange schedule, loss draws and churn victims are drawn
/// from shard-count-agnostic streams over the global directory, and the
/// round/barrier execution is equivalent to applying the schedule
/// sequentially. (Holds for single-instance configurations as pinned here;
/// under multi-instance epochs with message loss the draws are consumed in
/// instance order and led-instance tags differ across shard counts.)
#[test]
fn shard_count_changes_only_telemetry_summation_order() {
    let (reference, reference_bits) = sharded_summaries(77, 1, None, 0.1);
    for shards in [2, 4, 8] {
        // Exercise the threaded executor for half the configurations so the
        // invariant is pinned across executors too.
        let workers = if shards == 4 { Some(shards) } else { None };
        let (summaries, bits) = sharded_summaries(77, shards, workers, 0.1);
        assert_eq!(
            bits, reference_bits,
            "{shards}-shard node estimates must be bit-identical to 1 shard"
        );
        for (x, y) in summaries.iter().zip(&reference) {
            assert_eq!(x.cycle, y.cycle);
            assert_eq!(x.live_nodes, y.live_nodes);
            assert_eq!(x.exchanges, y.exchanges, "cycle {}", x.cycle);
            assert_eq!(x.messages_lost, y.messages_lost, "cycle {}", x.cycle);
            assert_eq!(x.completed_epoch, y.completed_epoch);
            assert_eq!(x.epoch_estimates.count(), y.epoch_estimates.count());
            // Telemetry reductions agree up to fp summation order.
            assert!(
                (x.estimate_mean - y.estimate_mean).abs() <= 1e-9 * (1.0 + y.estimate_mean.abs()),
                "cycle {}: mean {} vs {}",
                x.cycle,
                x.estimate_mean,
                y.estimate_mean
            );
            assert!(
                (x.estimate_variance - y.estimate_variance).abs()
                    <= 1e-9 * (1.0 + y.estimate_variance.abs()),
                "cycle {}: variance {} vs {}",
                x.cycle,
                x.estimate_variance,
                y.estimate_variance
            );
        }
    }
}

/// Tentpole pin for the struct-of-arrays hot path: with one worker and
/// uniform sampling the engine runs the batched SoA fused executor, and its
/// results must be bit-identical at 1/2/4/8 shards — all reproducing the
/// *pre-SoA* golden trajectory (the same FNV fingerprint pinned by
/// [`uniform_sampler_is_bit_identical_to_the_pre_sampler_engines`] for this
/// harness). Batched shuffles, pre-drawn peer picks and per-seq loss seeds
/// must replay the exact draw sequence of the node-path executor.
#[test]
fn soa_fused_executor_reproduces_the_golden_across_shard_counts() {
    for shards in [1usize, 2, 4, 8] {
        let (_, bits) = sharded_summaries(2024, shards, Some(1), 0.1);
        let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &bits {
            fnv ^= b;
            fnv = fnv.wrapping_mul(0x1000_0000_01b3);
        }
        assert_eq!(
            fnv, 0x64bd_b10a_57df_4315,
            "SoA executor at {shards} shard(s) drifted from the golden trajectory"
        );
    }
}

/// The SoA executor and the threaded round/mailbox executor stay
/// bit-identical on the *hard* configuration too: leader-led size
/// estimation (multi-instance epochs, cold-path led instances), message
/// loss and churn all at once, across worker counts at a fixed shard count.
#[test]
fn soa_executor_matches_threaded_executor_with_leaders_loss_and_churn() {
    let run = |workers: usize| {
        let config = ShardedConfig {
            base: SimulationConfig {
                protocol: ProtocolConfig::builder()
                    .cycles_per_epoch(8)
                    .late_join(aggregate_core::config::LateJoinPolicy::FixedState(0.0))
                    .build()
                    .unwrap(),
                conditions: NetworkConditions::with_message_loss(0.05),
                leader_policy: Some(LeaderPolicy::Fixed { probability: 0.02 }),
                sampler: SamplerConfig::UniformComplete,
                redundancy: None,
            },
            shards: 4,
            workers: Some(workers),
        };
        let values: Vec<f64> = (0..240).map(|i| (i % 31) as f64).collect();
        let mut sim = ShardedSimulation::new(config, &values, 404).unwrap();
        let mut summaries = Vec::new();
        for cycle in 0..25 {
            for i in 0..4 {
                sim.add_node((cycle * 4 + i) as f64);
            }
            sim.remove_random_nodes(4);
            summaries.push(sim.run_cycle());
        }
        let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
        (summaries, bits, sim.last_size_estimate())
    };
    let (reference, reference_bits, reference_size) = run(1);
    assert!(
        reference_size.is_some(),
        "a leader-led COUNT epoch must have completed"
    );
    for workers in [2, 4] {
        let (summaries, bits, size) = run(workers);
        assert_eq!(
            summaries, reference,
            "{workers}-worker run must match the SoA executor"
        );
        assert_eq!(bits, reference_bits);
        assert_eq!(size.map(f64::to_bits), reference_size.map(f64::to_bits));
    }
}

/// The loss-free size-estimation scenario (multi-instance epochs) is also
/// shard-count invariant at the node level: with no loss draws to consume,
/// instance-tag ordering cannot perturb anything.
#[test]
fn sharded_size_estimation_is_shard_count_invariant_without_loss() {
    let run = |shards: usize| {
        let config = ShardedConfig {
            base: SimulationConfig {
                protocol: ProtocolConfig::builder()
                    .cycles_per_epoch(10)
                    .late_join(aggregate_core::config::LateJoinPolicy::FixedState(0.0))
                    .build()
                    .unwrap(),
                conditions: NetworkConditions::reliable(),
                leader_policy: Some(LeaderPolicy::Fixed { probability: 0.02 }),
                sampler: SamplerConfig::UniformComplete,
                redundancy: None,
            },
            shards,
            workers: None,
        };
        let values = vec![0.0; 200];
        let mut sim = ShardedSimulation::new(config, &values, 99).unwrap();
        let summaries = sim.run(20);
        let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
        let sizes: Vec<u64> = summaries
            .iter()
            .filter(|s| s.epoch_size_estimates.count() > 0)
            .map(|s| s.epoch_size_estimates.count())
            .collect();
        (bits, sizes, sim.last_size_estimate().unwrap())
    };
    let (bits1, sizes1, estimate1) = run(1);
    for shards in [2, 5] {
        let (bits, sizes, estimate) = run(shards);
        assert_eq!(bits, bits1, "{shards}-shard default estimates must match");
        assert_eq!(sizes, sizes1, "same reporting-node counts per epoch");
        assert!(
            (estimate - estimate1).abs() <= 1e-9 * estimate1,
            "pooled size estimate {estimate} vs {estimate1}"
        );
    }
}

/// Sampler-refactor pin: with the default uniform sampler the engines must
/// reproduce the *pre-refactor* trajectories bit for bit. The golden values
/// below were captured from the engines before the peer-sampling layer was
/// introduced (same harnesses as `simulation_summaries(77)` and
/// `sharded_summaries(2024, 3, None, 0.1)`); any change to the uniform draw
/// sequence shows up here.
#[test]
fn uniform_sampler_is_bit_identical_to_the_pre_sampler_engines() {
    let last = simulation_summaries(77).pop().unwrap();
    assert_eq!(
        last.estimate_mean.to_bits(),
        0x4039_2147_ae14_7adf,
        "reference-engine mean drifted from the pre-refactor trajectory"
    );
    assert_eq!(
        last.estimate_variance.to_bits(),
        0x3fe0_b58d_981d_4c54,
        "reference-engine variance drifted from the pre-refactor trajectory"
    );

    let (_, bits) = sharded_summaries(2024, 3, None, 0.1);
    assert_eq!(bits.len(), 300);
    assert_eq!(bits[0], 0x4040_c7e9_0fd8_0000);
    let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
    for b in &bits {
        fnv ^= b;
        fnv = fnv.wrapping_mul(0x1000_0000_01b3);
    }
    assert_eq!(
        fnv, 0x64bd_b10a_57df_4315,
        "sharded-engine estimates drifted from the pre-refactor trajectory"
    );
}

/// Fault-lab refactor pin: the engines now route *every* run through a
/// `FaultInjector`, with the empty [`FaultPlan`] as the default. That
/// refactor must be invisible: an explicit empty plan reproduces the same
/// golden pre-refactor trajectories as
/// [`uniform_sampler_is_bit_identical_to_the_pre_sampler_engines`], on both
/// cycle engines, churn and message loss included.
#[test]
fn empty_fault_plan_reproduces_the_pre_fault_lab_goldens() {
    // Reference engine, seed 77 (same harness as simulation_summaries).
    let values: Vec<f64> = (0..400).map(|i| (i % 53) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(10)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::with_faults(
        SimulationConfig::averaging(protocol),
        &values,
        77,
        FaultPlan::none(),
    )
    .unwrap();
    let last = sim.run(25).pop().unwrap();
    assert_eq!(last.estimate_mean.to_bits(), 0x4039_2147_ae14_7adf);
    assert_eq!(last.estimate_variance.to_bits(), 0x3fe0_b58d_981d_4c54);
    assert_eq!(last.exchanges_blocked, 0);

    // Sharded engine with churn + loss, seed 2024 / 3 shards (same harness
    // as sharded_summaries): the golden FNV over all node estimates.
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let config = ShardedConfig {
        base: SimulationConfig {
            protocol,
            conditions: NetworkConditions::with_message_loss(0.1),
            leader_policy: None,
            sampler: SamplerConfig::UniformComplete,
            redundancy: None,
        },
        shards: 3,
        workers: None,
    };
    let mut sim = ShardedSimulation::with_faults(config, &values, 2024, FaultPlan::none()).unwrap();
    for cycle in 0..30 {
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        sim.run_cycle();
    }
    let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
    for v in sim.estimates() {
        fnv ^= v.to_bits();
        fnv = fnv.wrapping_mul(0x1000_0000_01b3);
    }
    assert_eq!(
        fnv, 0x64bd_b10a_57df_4315,
        "empty-plan sharded run drifted from the pre-fault-lab trajectory"
    );
}

/// Adversary-lab refactor pin: the engines now also carry a stateful
/// [`AdversaryPlan`], with the empty plan as the default. The empty
/// adversary consumes no seed stream and touches no node, so an explicit
/// `AdversaryPlan::none()` must reproduce the same golden pre-refactor
/// trajectories as [`empty_fault_plan_reproduces_the_pre_fault_lab_goldens`]
/// on both cycle engines, churn and message loss included.
#[test]
fn empty_adversary_plan_reproduces_the_pre_adversary_lab_goldens() {
    // Reference engine, seed 77 (same harness as simulation_summaries).
    let values: Vec<f64> = (0..400).map(|i| (i % 53) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(10)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::with_adversary(
        SimulationConfig::averaging(protocol),
        &values,
        77,
        FaultPlan::none(),
        AdversaryPlan::none(),
    )
    .unwrap();
    assert!(sim.adversary().is_empty());
    let last = sim.run(25).pop().unwrap();
    assert_eq!(last.estimate_mean.to_bits(), 0x4039_2147_ae14_7adf);
    assert_eq!(last.estimate_variance.to_bits(), 0x3fe0_b58d_981d_4c54);

    // Sharded engine with churn + loss, seed 2024 / 3 shards (same harness
    // as sharded_summaries): the golden FNV over all node estimates.
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let config = ShardedConfig {
        base: SimulationConfig {
            protocol,
            conditions: NetworkConditions::with_message_loss(0.1),
            leader_policy: None,
            sampler: SamplerConfig::UniformComplete,
            redundancy: None,
        },
        shards: 3,
        workers: None,
    };
    let mut sim = ShardedSimulation::with_adversary(
        config,
        &values,
        2024,
        FaultPlan::none(),
        AdversaryPlan::none(),
    )
    .unwrap();
    for cycle in 0..30 {
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        sim.run_cycle();
    }
    let mut fnv: u64 = 0xcbf2_9ce4_8422_2325;
    for v in sim.estimates() {
        fnv ^= v.to_bits();
        fnv = fnv.wrapping_mul(0x1000_0000_01b3);
    }
    assert_eq!(
        fnv, 0x64bd_b10a_57df_4315,
        "empty-adversary sharded run drifted from the pre-adversary-lab trajectory"
    );
}

/// Faulted runs are just as reproducible as fault-free ones: one seed, one
/// trajectory — across repeats and regardless of the executor.
#[test]
fn faulted_runs_are_bit_identical_for_identical_seeds() {
    let plan = || FaultPlan {
        link_failure: 0.15,
        base_loss: 0.05,
        ..FaultPlan::with_partition(5, 12, 0.4)
    };
    let run = |seed: u64| {
        let values: Vec<f64> = (0..250).map(|i| (i % 29) as f64).collect();
        let protocol = ProtocolConfig::builder()
            .cycles_per_epoch(9)
            .build()
            .unwrap();
        let mut sim = GossipSimulation::with_faults(
            SimulationConfig::averaging(protocol),
            &values,
            seed,
            plan(),
        )
        .unwrap();
        sim.run(20)
    };
    let a = run(505);
    let b = run(505);
    assert!(a.iter().any(|s| s.exchanges_blocked > 0));
    assert!(a.iter().any(|s| s.messages_lost > 0));
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.exchanges, y.exchanges);
        assert_eq!(x.exchanges_blocked, y.exchanges_blocked);
        assert_eq!(x.messages_lost, y.messages_lost);
        assert_eq!(
            x.estimate_variance.to_bits(),
            y.estimate_variance.to_bits(),
            "cycle {}: faulted variances differ at the bit level",
            x.cycle
        );
    }
    assert_ne!(
        run(505).last().unwrap().estimate_variance.to_bits(),
        run(506).last().unwrap().estimate_variance.to_bits(),
        "different seeds must draw different fault maps"
    );
}

/// Live NEWSCAST sampler on the reference engine, under churn and slot
/// reuse: same seed → bit-identical trajectories; different seeds diverge.
fn newscast_churn_summaries(seed: u64) -> Vec<gossip_sim::CycleSummary> {
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let config = SimulationConfig {
        sampler: SamplerConfig::newscast(),
        ..SimulationConfig::averaging(protocol)
    };
    let mut sim = GossipSimulation::new(config, &values, seed);
    let mut summaries = Vec::new();
    for cycle in 0..30 {
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        summaries.push(sim.run_cycle());
    }
    summaries
}

#[test]
fn newscast_sampler_runs_are_bit_identical_for_identical_seeds() {
    let a = newscast_churn_summaries(404);
    let b = newscast_churn_summaries(404);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.live_nodes, y.live_nodes);
        assert_eq!(x.exchanges, y.exchanges);
        assert_eq!(
            x.estimate_mean.to_bits(),
            y.estimate_mean.to_bits(),
            "cycle {}: NEWSCAST-sampled means differ at the bit level",
            x.cycle
        );
        assert_eq!(
            x.estimate_variance.to_bits(),
            y.estimate_variance.to_bits(),
            "cycle {}: NEWSCAST-sampled variances differ at the bit level",
            x.cycle
        );
    }
    assert_ne!(
        newscast_churn_summaries(404)
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        newscast_churn_summaries(405)
            .last()
            .unwrap()
            .estimate_variance
            .to_bits(),
        "different seeds must explore different view dynamics"
    );
}

/// Static-overlay sampling is just as reproducible: the overlay is generated
/// from a labelled stream of the master seed, so the whole run is a pure
/// function of (seed, config).
#[test]
fn static_overlay_runs_are_bit_identical_for_identical_seeds() {
    let run = |seed: u64| {
        let values: Vec<f64> = (0..200).map(|i| (i % 23) as f64).collect();
        let protocol = ProtocolConfig::builder()
            .cycles_per_epoch(30)
            .build()
            .unwrap();
        let config = SimulationConfig {
            sampler: SamplerConfig::StaticOverlay {
                topology: TopologyKind::RandomRegular { degree: 10 },
            },
            ..SimulationConfig::averaging(protocol)
        };
        let mut sim = GossipSimulation::new(config, &values, seed);
        sim.run(10)
            .iter()
            .map(|s| s.estimate_variance.to_bits())
            .collect::<Vec<u64>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

/// Live NEWSCAST on the sharded engine: worker threads never touch the
/// sampler (all picks happen in the coordinator pass), so any worker count
/// must produce bit-identical summaries for a fixed shard count.
#[test]
fn newscast_sharded_runs_are_worker_count_invariant() {
    let sampler = SamplerConfig::newscast();
    let (reference, reference_bits) = sharded_summaries_with(55, 4, Some(1), 0.1, sampler);
    for workers in [2, 4] {
        let (summaries, bits) = sharded_summaries_with(55, 4, Some(workers), 0.1, sampler);
        assert_eq!(
            summaries, reference,
            "{workers}-worker NEWSCAST run must match the sequential executor"
        );
        assert_eq!(bits, reference_bits);
    }
}

/// Live NEWSCAST across shard counts: the membership protocol iterates and
/// bootstraps over *directory positions* (shard-count invariant), never raw
/// identifiers (which embed shard bits), so node estimates stay bit-identical
/// across 1/2/4/8 shards — the same invariant the uniform sampler upholds.
#[test]
fn newscast_shard_count_changes_only_telemetry_summation_order() {
    let sampler = SamplerConfig::newscast();
    let (reference, reference_bits) = sharded_summaries_with(56, 1, None, 0.1, sampler);
    for shards in [2, 4, 8] {
        let (summaries, bits) = sharded_summaries_with(56, shards, None, 0.1, sampler);
        assert_eq!(
            bits, reference_bits,
            "{shards}-shard NEWSCAST node estimates must be bit-identical to 1 shard"
        );
        for (x, y) in summaries.iter().zip(&reference) {
            assert_eq!(x.live_nodes, y.live_nodes, "cycle {}", x.cycle);
            assert_eq!(x.exchanges, y.exchanges, "cycle {}", x.cycle);
            assert_eq!(x.messages_lost, y.messages_lost, "cycle {}", x.cycle);
            assert!(
                (x.estimate_variance - y.estimate_variance).abs()
                    <= 1e-9 * (1.0 + y.estimate_variance.abs()),
                "cycle {}: variance {} vs {}",
                x.cycle,
                x.estimate_variance,
                y.estimate_variance
            );
        }
    }
}

/// Tentpole pin — one protocol core, two runtimes. The wire-path
/// [`VirtualCluster`] (every exchange encoded to a 33-byte frame, shipped
/// through an `InMemoryNetwork` endpoint, decoded and delivered to a
/// `NodeCore` under a `VirtualClock`) must reproduce [`GossipSimulation`]
/// **bit for bit** for the same seed, membership and configuration —
/// including the golden pre-refactor trajectory, proving the live message
/// path and the simulator run one and the same protocol core.
#[test]
fn wire_cluster_is_bit_identical_to_the_cycle_engine() {
    let values: Vec<f64> = (0..400).map(|i| (i % 53) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(10)
        .build()
        .unwrap();
    let mut cluster =
        VirtualCluster::new(SimulationConfig::averaging(protocol), &values, 77).unwrap();
    let wire = cluster.run(25);
    let engine = simulation_summaries(77);
    assert_eq!(wire, engine, "wire-path summaries diverge from the engine");
    let last = wire.last().unwrap();
    // The wire path reproduces the golden pre-refactor trajectory too.
    assert_eq!(last.estimate_mean.to_bits(), 0x4039_2147_ae14_7adf);
    assert_eq!(last.estimate_variance.to_bits(), 0x3fe0_b58d_981d_4c54);

    let engine_estimates = {
        let mut sim = GossipSimulation::new(
            SimulationConfig::averaging(
                ProtocolConfig::builder()
                    .cycles_per_epoch(10)
                    .build()
                    .unwrap(),
            ),
            &values,
            77,
        );
        sim.run(25);
        sim.estimates()
    };
    let wire_bits: Vec<u64> = cluster.estimates().iter().map(|v| v.to_bits()).collect();
    let engine_bits: Vec<u64> = engine_estimates.iter().map(|v| v.to_bits()).collect();
    assert_eq!(wire_bits, engine_bits, "node estimates diverge bitwise");
}

/// The identity holds under a full fault schedule — link failures, base
/// loss, a partition window and a crash burst all draw from the same
/// labelled streams on both sides, so the wire path reproduces the faulted
/// engine trajectory draw for draw.
#[test]
fn wire_cluster_matches_the_engine_under_a_fault_plan() {
    let plan = || FaultPlan {
        link_failure: 0.1,
        base_loss: 0.05,
        crashes: vec![CrashBurst {
            cycle: 4,
            fraction: 0.2,
        }],
        ..FaultPlan::with_partition(6, 12, 0.3)
    };
    let values: Vec<f64> = (0..250).map(|i| (i % 29) as f64).collect();
    let config = || {
        SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(9)
                .build()
                .unwrap(),
        )
    };
    let mut cluster = VirtualCluster::with_faults(config(), &values, 505, plan()).unwrap();
    let wire = cluster.run(20);
    let mut sim = GossipSimulation::with_faults(config(), &values, 505, plan()).unwrap();
    let engine = sim.run(20);
    assert!(wire.iter().any(|s| s.messages_lost > 0));
    assert!(wire.iter().any(|s| s.exchanges_blocked > 0));
    assert!(wire.last().unwrap().live_nodes < 250, "burst must fire");
    assert_eq!(wire, engine, "faulted wire run diverges from the engine");
    assert_eq!(
        cluster
            .estimates()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        sim.estimates()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
    );
}

/// The identity holds with live NEWSCAST peer sampling: both runtimes build
/// their sampler from the same labelled membership stream, so view dynamics
/// and peer picks coincide exactly.
#[test]
fn wire_cluster_matches_the_engine_under_newscast_sampling() {
    let values: Vec<f64> = (0..200).map(|i| (i % 23) as f64).collect();
    let config = || SimulationConfig {
        sampler: SamplerConfig::newscast(),
        ..SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(8)
                .build()
                .unwrap(),
        )
    };
    let mut cluster = VirtualCluster::new(config(), &values, 404).unwrap();
    let mut sim = GossipSimulation::new(config(), &values, 404);
    assert_eq!(cluster.run(20), sim.run(20));
    assert_eq!(
        cluster
            .estimates()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        sim.estimates()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
    );
}

/// The identity holds through leader election and multi-instance epochs
/// (the paper's COUNT protocol): leader draws come from the shared schedule
/// stream in the same order on both sides.
#[test]
fn wire_cluster_matches_the_engine_with_leader_led_size_estimation() {
    let values = vec![0.0; 150];
    let config = || SimulationConfig {
        leader_policy: Some(LeaderPolicy::Fixed { probability: 0.02 }),
        ..SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(10)
                .build()
                .unwrap(),
        )
    };
    let mut cluster = VirtualCluster::new(config(), &values, 99).unwrap();
    let mut sim = GossipSimulation::new(config(), &values, 99);
    assert_eq!(cluster.run(30), sim.run(30));
    let (wire_size, engine_size) = (cluster.last_size_estimate(), sim.last_size_estimate());
    assert_eq!(
        wire_size.map(f64::to_bits),
        engine_size.map(f64::to_bits),
        "pooled size estimates diverge: {wire_size:?} vs {engine_size:?}"
    );
    assert!(wire_size.is_some(), "an epoch must have completed");
}

/// CI-scale identity pin (run by the `net-smoke` job with
/// `--include-ignored`): a 1 000-node wire cluster under NEWSCAST sampling
/// *and* a fault plan stays bit-identical to the engine for 30 cycles.
#[test]
#[ignore = "CI-scale: ~1k nodes x 30 cycles on the framed wire path"]
fn thousand_node_wire_cluster_is_bit_identical_to_the_engine() {
    let values: Vec<f64> = (0..1_000).map(|i| (i % 101) as f64).collect();
    let config = || SimulationConfig {
        sampler: SamplerConfig::newscast(),
        ..SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(10)
                .build()
                .unwrap(),
        )
    };
    let plan = || FaultPlan {
        link_failure: 0.05,
        ..FaultPlan::with_message_loss(0.02)
    };
    let mut cluster = VirtualCluster::with_faults(config(), &values, 1_234, plan()).unwrap();
    let mut sim = GossipSimulation::with_faults(config(), &values, 1_234, plan()).unwrap();
    assert_eq!(cluster.run(30), sim.run(30));
    assert_eq!(
        cluster
            .estimates()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        sim.estimates()
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        "1k-node wire estimates diverge from the engine"
    );
}

/// The experiment runners (used by the benches and the convergence-rate
/// integration tests) are reproducible end to end: same seed, same Summary.
#[test]
fn variance_experiments_are_reproducible() {
    let run = || {
        VarianceExperiment::figure3(
            2_000,
            TopologyKind::Complete,
            SelectorKind::Sequential,
            1,
            5,
            123,
        )
        .run_first_cycle()
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.mean.to_bits(), b.mean.to_bits());
    assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
}

/// Telemetry tentpole pin, part 1: enabling the full flight recorder +
/// watchdog changes not a single protocol bit. The traced sharded run must
/// reproduce the untraced estimates exactly, at every shard count and on
/// every executor (sequential SoA, threaded round/mailbox) — and the merged
/// JSONL trace must itself be **byte-identical** across shard and worker
/// counts, because every event is keyed by shard-count-invariant global
/// directory positions or global sequence numbers and merged through the
/// distribution-independent sort in `merge_events`.
fn traced_sharded_run(seed: u64, shards: usize, workers: Option<usize>) -> (Vec<u64>, String) {
    let values: Vec<f64> = (0..300).map(|i| (i % 37) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(8)
        .build()
        .unwrap();
    let config = ShardedConfig {
        base: SimulationConfig {
            protocol,
            conditions: NetworkConditions::with_message_loss(0.1),
            leader_policy: None,
            sampler: SamplerConfig::UniformComplete,
            redundancy: None,
        },
        shards,
        workers,
    };
    let mut sim = ShardedSimulation::new(config, &values, seed).unwrap();
    sim.set_telemetry(TelemetryConfig::full());
    for cycle in 0..30 {
        for i in 0..5 {
            sim.add_node((cycle * 5 + i) as f64);
        }
        sim.remove_random_nodes(5);
        sim.run_cycle();
    }
    assert_eq!(
        sim.dropped_trace_events(),
        0,
        "ring overflowed; raise capacity"
    );
    let bits = sim.estimates().iter().map(|v| v.to_bits()).collect();
    let trace = epidemic_aggregation::telemetry::trace::to_jsonl(&sim.drain_trace());
    (bits, trace)
}

#[test]
fn tracing_leaves_sharded_estimates_bit_identical_across_shards_and_workers() {
    let untraced = sharded_summaries(2024, 1, None, 0.1).1;
    let (reference_bits, reference_trace) = traced_sharded_run(2024, 1, None);
    assert_eq!(
        reference_bits, untraced,
        "enabling full tracing changed the node estimates"
    );
    assert!(!reference_trace.is_empty());
    for (shards, workers) in [(2, None), (4, Some(1)), (4, Some(3)), (8, Some(4))] {
        let (bits, trace) = traced_sharded_run(2024, shards, workers);
        assert_eq!(
            bits, reference_bits,
            "{shards}-shard/{workers:?}-worker traced estimates drifted"
        );
        assert_eq!(
            trace, reference_trace,
            "merged trace must be byte-identical at {shards} shards / {workers:?} workers"
        );
    }
}

/// Telemetry tentpole pin, part 2: two same-seed traced runs emit
/// byte-identical merged JSONL — the flight recorder consumes no randomness
/// and stamps virtual (never wall-clock) time.
#[test]
fn same_seed_traced_runs_produce_byte_identical_jsonl() {
    let (_, a) = traced_sharded_run(7, 4, Some(4));
    let (_, b) = traced_sharded_run(7, 4, Some(4));
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed traces must be byte-identical");
}

/// Telemetry tentpole pin, part 3: the reference engine and the lockstep
/// wire cluster both reproduce the golden seed-77 trajectory with full
/// tracing enabled, and their watchdogs reach a verdict on the converged run.
#[test]
fn tracing_leaves_reference_engine_and_wire_cluster_goldens_bit_identical() {
    let values: Vec<f64> = (0..400).map(|i| (i % 53) as f64).collect();
    let protocol = || {
        ProtocolConfig::builder()
            .cycles_per_epoch(10)
            .build()
            .unwrap()
    };

    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol()), &values, 77);
    sim.set_telemetry(TelemetryConfig::full());
    let last = sim.run(25).pop().unwrap();
    assert_eq!(last.estimate_mean.to_bits(), 0x4039_2147_ae14_7adf);
    assert_eq!(last.estimate_variance.to_bits(), 0x3fe0_b58d_981d_4c54);
    let engine_events = sim.drain_trace();
    assert!(!engine_events.is_empty());
    assert!(sim.watchdog_verdict().is_some());

    let mut cluster =
        VirtualCluster::new(SimulationConfig::averaging(protocol()), &values, 77).unwrap();
    cluster.set_telemetry(TelemetryConfig::full());
    let last = cluster.run(25).pop().unwrap();
    assert_eq!(last.estimate_mean.to_bits(), 0x4039_2147_ae14_7adf);
    assert_eq!(last.estimate_variance.to_bits(), 0x3fe0_b58d_981d_4c54);
    assert!(!cluster.drain_trace().is_empty());
    assert!(cluster.watchdog_verdict().is_some());
}
