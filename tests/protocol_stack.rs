//! Integration tests for the full distributed stack: protocol nodes driven by
//! the cycle simulator, the membership service feeding the aggregation layer,
//! and the live in-memory cluster.

use epidemic_aggregation::prelude::*;

/// The protocol-level simulator (real `ProtocolNode`s exchanging messages)
/// reproduces the vector-level AVG behaviour: same limit, comparable speed.
#[test]
fn simulator_and_vector_algorithm_agree() {
    let n = 1_000;
    let values: Vec<f64> = (0..n).map(|i| (i % 250) as f64).collect();
    let true_mean = mean(&values);

    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(100)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol), &values, 21);
    let summaries = sim.run(20);
    let last = summaries.last().unwrap();
    assert!((last.estimate_mean - true_mean).abs() < 1e-9);
    assert!(last.estimate_variance < 1e-6);
}

/// Epoch restarts make the protocol adaptive: after the inputs change, the
/// next epoch's converged estimates reflect the new values.
#[test]
fn epochs_track_changing_inputs() {
    let n = 300;
    let values = vec![10.0; n];
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(15)
        .build()
        .unwrap();
    let mut sim = GossipSimulation::new(SimulationConfig::averaging(protocol), &values, 9);

    // First epoch: average of the original values.
    let mut first_epoch_estimate = None;
    for summary in sim.run(15) {
        if summary.completed_epoch.is_some() {
            first_epoch_estimate = Some(summary.epoch_estimates[0]);
        }
    }
    assert!((first_epoch_estimate.unwrap() - 10.0).abs() < 1e-9);

    // Double every node's value. The change is picked up at the next epoch
    // *restart*, so the epoch already in flight still reports the old value
    // and the one after it reports the new one — the one-epoch lag the paper
    // describes for Figure 4.
    for i in 0..n {
        sim.set_local_value(NodeId::new(i), 20.0);
    }
    let mut epoch_estimates = Vec::new();
    for summary in sim.run(30) {
        if summary.completed_epoch.is_some() {
            epoch_estimates.push(summary.epoch_estimates[0]);
        }
    }
    assert_eq!(epoch_estimates.len(), 2);
    assert!(
        (epoch_estimates[0] - 10.0).abs() < 1e-9,
        "in-flight epoch keeps the old average"
    );
    assert!(
        (epoch_estimates[1] - 20.0).abs() < 1e-9,
        "next epoch reports the new average"
    );
}

/// Network size estimation end to end, with leader election and epochs, over
/// the protocol-level simulator.
#[test]
fn size_estimation_tracks_a_static_network() {
    let scenario = SizeEstimationScenario {
        churn: ChurnSchedule::steady(3_000),
        cycles_per_epoch: 30,
        total_cycles: 90,
        leader_policy: LeaderPolicy::Adaptive {
            target_leaders: 4.0,
            fallback_probability: 0.005,
        },
        message_loss: 0.0,
        sampler: SamplerConfig::UniformComplete,
        seed: 31,
    };
    let points = scenario.run().expect("valid scenario");
    assert!(points.len() >= 2);
    for point in &points {
        let err = (point.estimate_mean - 3_000.0).abs() / 3_000.0;
        assert!(
            err < 0.05,
            "epoch {}: estimate {} should be within 5% of 3000",
            point.epoch,
            point.estimate_mean
        );
    }
}

/// The membership substrate (newscast) provides views random enough that the
/// aggregation protocol run over them converges at essentially the
/// complete-graph rate — the paper's justification for analysing the complete
/// topology only.
#[test]
fn aggregation_over_newscast_views_converges_like_random_overlay() {
    use rand::SeedableRng;
    let n = 2_000;
    let view_size = 20;
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let mut membership = NewscastNetwork::bootstrap_ring(n, view_size);
    for _ in 0..30 {
        membership.run_cycle(&mut rng);
    }
    let overlay = membership.view_topology();

    let mut values: Vec<f64> = (0..n).map(|i| (i % 200) as f64).collect();
    let true_mean = mean(&values);
    let mut selector = SequentialSelector::new();
    let reports = run_avg(&mut values, &overlay, &mut selector, &mut rng, 25).unwrap();

    // Converged to the correct value...
    assert!(values.iter().all(|v| (v - true_mean).abs() < 0.01));
    // ...and the first-cycle reduction factor is close to the paper's rate.
    let factor = reports[0].reduction_factor().unwrap();
    assert!(
        (factor - theory::seq_rate()).abs() < 0.07,
        "reduction over newscast views: {factor}"
    );
}

/// The in-process "live" cluster (threads + channels, no simulator) reaches
/// consensus on a value close to the true average.
#[test]
fn in_memory_cluster_reaches_consensus() {
    let values = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
    let true_mean = mean(&values);
    let report = GossipCluster::run_in_memory(
        &values,
        ClusterConfig {
            cycle_length_ms: 5,
            cycles: 40,
        },
    )
    .expect("cluster runs");
    let estimates = &report.estimates;
    let spread = estimates.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - estimates.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(spread < 1.5, "nodes disagree by {spread}");
    let cluster_mean = mean(estimates);
    assert!(
        (cluster_mean - true_mean).abs() < 0.15 * true_mean,
        "cluster mean {cluster_mean} vs true {true_mean}"
    );
    // The runtime surfaces exchange outcomes instead of swallowing them.
    assert!(report.stats.exchanges_completed > 0);
    assert_eq!(report.stats.decode_errors, 0);
}

/// Maximum aggregation spreads the global maximum to every node (epidemic
/// broadcast behaviour noted in Section 1.1), even with message loss.
#[test]
fn maximum_spreads_to_all_nodes_despite_message_loss() {
    use epidemic_aggregation::core::aggregate::AggregateKind;
    let n = 500;
    let mut values = vec![1.0; n];
    values[137] = 99.0;

    let protocol = ProtocolConfig::builder()
        .aggregate(AggregateKind::Maximum)
        .cycles_per_epoch(100)
        .build()
        .unwrap();
    let config = SimulationConfig {
        protocol,
        conditions: NetworkConditions::with_message_loss(0.2),
        leader_policy: None,
        sampler: SamplerConfig::UniformComplete,
        redundancy: None,
    };
    let mut sim = GossipSimulation::new(config, &values, 23);
    sim.run(20);
    assert!(sim.estimates().iter().all(|&v| v == 99.0));
}
