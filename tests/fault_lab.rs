//! Integration tests for the fault-injection lab: partitions interacting
//! with the epoch machinery, crash bursts against size estimation, and the
//! fault lab riding along with churn — all through the public facade, on
//! the real engines.

use epidemic_aggregation::core::config::LateJoinPolicy;
use epidemic_aggregation::prelude::*;
use epidemic_aggregation::sim as gossip_sim;

fn averaging_config(cycles_per_epoch: u32) -> SimulationConfig {
    SimulationConfig::averaging(
        ProtocolConfig::builder()
            .cycles_per_epoch(cycles_per_epoch)
            .build()
            .unwrap(),
    )
}

/// The partition × epoch-restart interaction (Section 4's epoch broadcast
/// meeting a healed network): while a partition is active, each side keeps
/// restarting epochs on its own and converges to its *side's* average, so
/// whole-network epoch reports stay spread out. Once the partition heals,
/// the next epoch restart re-seeds every estimate from the local values and
/// the epidemic exchange re-merges the sides: the first epoch that runs
/// entirely on the healed network reports the merged-membership average at
/// every node — including nodes that joined *during* the partition, which
/// the epoch broadcast releases into the first post-join epoch.
#[test]
fn healed_partition_rejoins_the_epoch_broadcast_and_merged_average() {
    // 8-cycle epochs; partition active over cycles 4..20, spanning the
    // epoch restarts at cycles 8 and 16 — both fire *while split*.
    let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
    let plan = FaultPlan::with_partition(4, 20, 0.5);
    let mut sim = GossipSimulation::with_faults(averaging_config(8), &values, 97, plan).unwrap();

    // Run up to the partition and through the first split epoch restart.
    let split_epoch: Vec<gossip_sim::CycleSummary> = sim.run(16);
    let mid_split = split_epoch.last().unwrap();
    assert_eq!(mid_split.completed_epoch, Some(1));
    assert!(
        mid_split.exchanges_blocked > 0,
        "the partition must actually block cross-side exchanges"
    );
    // Epoch 1 ran entirely under the partition: its converged estimates are
    // the two *side* averages, so the spread across nodes stays macroscopic
    // (fault-free epochs converge every node to the same value within
    // ~1e-3 here).
    let epoch1 = &mid_split.epoch_estimates;
    let spread = epoch1.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - epoch1.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    assert!(
        spread > 10.0,
        "two isolated sides must disagree about the average (spread {spread})"
    );

    // Two nodes join mid-partition, one with a very distinctive value. They
    // wait passively for the next epoch start, which the epoch broadcast
    // announces to them, and participate from then on.
    let newcomer = sim.add_node(1_000.0);
    sim.add_node(1_000.0);
    let merged_mean = (values.iter().sum::<f64>() + 2_000.0) / 202.0;

    // Heal (cycle 20) and let epoch 3 (cycles 24..32) run entirely on the
    // healed, merged membership.
    let healed: Vec<gossip_sim::CycleSummary> = sim.run(16);
    let last_epoch = healed
        .iter()
        .rfind(|s| s.completed_epoch.is_some())
        .unwrap();
    assert_eq!(last_epoch.completed_epoch, Some(3));
    assert_eq!(last_epoch.exchanges_blocked, 0, "healed: nothing blocked");
    assert_eq!(
        last_epoch.epoch_estimates.len(),
        202,
        "every node — including the mid-partition joiners — participates in \
         the first fully-healed epoch"
    );
    // Eight cycles of convergence per epoch leave a residual spread of a
    // few σ ≈ 0.5 around the target; every node must sit in that
    // neighbourhood and their pooled mean must hit the merged average.
    let pooled =
        last_epoch.epoch_estimates.iter().sum::<f64>() / last_epoch.epoch_estimates.len() as f64;
    assert!(
        (pooled - merged_mean).abs() < 0.1,
        "pooled epoch mean {pooled} must equal the merged-membership average {merged_mean}"
    );
    for estimate in &last_epoch.epoch_estimates {
        assert!(
            (estimate - merged_mean).abs() < 5.0,
            "epoch estimate {estimate} must converge to the merged-membership \
             average {merged_mean}"
        );
    }
    assert!(sim.node(newcomer).is_some());
}

/// The same heal-and-remerge behaviour holds on the sharded engine, and the
/// whole faulted trajectory is bit-reproducible for a fixed seed.
#[test]
fn sharded_partition_runs_heal_and_reproduce_bitwise() {
    let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
    let true_mean = values.iter().sum::<f64>() / values.len() as f64;
    let plan = FaultPlan::with_partition(2, 12, 0.4);
    let run = |seed: u64| {
        let config = ShardedConfig {
            base: averaging_config(10),
            shards: 4,
            workers: None,
        };
        let mut sim = ShardedSimulation::with_faults(config, &values, seed, plan.clone()).unwrap();
        let summaries = sim.run(30);
        let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
        (summaries, bits)
    };
    let (summaries, bits) = run(11);
    assert!(summaries[..12].iter().any(|s| s.exchanges_blocked > 0));
    assert!(summaries[12..].iter().all(|s| s.exchanges_blocked == 0));
    // Epoch restarts re-seed estimates from the local values at every epoch
    // boundary, so end-of-run variance is the post-restart one; the healed
    // network's convergence shows in the *epoch reports*: the last epoch
    // that ran entirely healed (cycles 20..30) reports the true average at
    // every node.
    let last_epoch = summaries
        .iter()
        .rfind(|s| s.completed_epoch.is_some())
        .unwrap();
    assert_eq!(last_epoch.completed_epoch, Some(2));
    assert_eq!(last_epoch.epoch_estimates.count(), 200);
    assert!(
        (last_epoch.epoch_estimates.mean() - true_mean).abs() < 0.1,
        "healed epoch mean {} must equal the true average {true_mean}",
        last_epoch.epoch_estimates.mean()
    );
    assert!(
        last_epoch.epoch_estimates.sample_variance() < 1.0,
        "healed epoch must converge (variance {})",
        last_epoch.epoch_estimates.sample_variance()
    );

    let (summaries2, bits2) = run(11);
    assert_eq!(summaries, summaries2, "same seed, same faulted trajectory");
    assert_eq!(bits, bits2);
    // (The *final* estimates are seed-independent here — the run ends on an
    // epoch boundary, whose restart re-seeds every estimate from the local
    // values — so seed sensitivity shows in the trajectories instead.)
    assert_ne!(
        run(12).0,
        summaries,
        "different seeds explore different faulted trajectories"
    );
}

/// Crash bursts ride along with churn: the Figure 4 oscillation keeps
/// running while the fault lab repeatedly removes 10 % of the network, and
/// the size estimator keeps tracking the (shrunken) population instead of
/// wedging.
#[test]
fn crash_bursts_compose_with_churn_and_size_estimation() {
    use epidemic_aggregation::faults::CrashBurst;

    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(20)
        .late_join(LateJoinPolicy::FixedState(0.0))
        .build()
        .unwrap();
    let config = SimulationConfig {
        protocol,
        leader_policy: Some(LeaderPolicy::Fixed { probability: 0.02 }),
        ..SimulationConfig::averaging(protocol)
    };
    let plan = FaultPlan {
        crashes: vec![
            CrashBurst {
                cycle: 25,
                fraction: 0.1,
            },
            CrashBurst {
                cycle: 45,
                fraction: 0.1,
            },
        ],
        ..FaultPlan::default()
    };
    let mut sim = GossipSimulation::with_faults(config, &vec![0.0; 600], 4242, plan).unwrap();
    let mut estimates = Vec::new();
    for _ in 0..80 {
        // Symmetric churn underneath the bursts: 3 joins, 3 departures.
        for _ in 0..3 {
            sim.add_node(0.0);
        }
        sim.remove_random_nodes(3);
        let summary = sim.run_cycle();
        if summary.completed_epoch.is_some() && !summary.epoch_size_estimates.is_empty() {
            let mean = summary.epoch_size_estimates.iter().sum::<f64>()
                / summary.epoch_size_estimates.len() as f64;
            estimates.push((summary.live_nodes, mean));
        }
    }
    assert!(estimates.len() >= 3, "epochs must keep completing");
    // The population shrank by ~10% twice; the last epoch's estimate must
    // track the surviving population, not the starting 600.
    let (live, estimate) = *estimates.last().unwrap();
    assert!(live < 520, "two 10% bursts must shrink the population");
    assert!(
        (estimate - live as f64).abs() < live as f64 * 0.2,
        "size estimate {estimate} must track the surviving {live} nodes"
    );
}

/// The loss ramp holds its end value: convergence visibly slows as the ramp
/// climbs, and the messages-lost telemetry follows the schedule.
#[test]
fn loss_ramps_progressively_degrade_the_measured_loss_rate() {
    use epidemic_aggregation::faults::LossRamp;

    let values: Vec<f64> = (0..400).map(|i| i as f64).collect();
    let plan = FaultPlan {
        loss_ramps: vec![LossRamp {
            start_cycle: 5,
            end_cycle: 15,
            start_loss: 0.0,
            end_loss: 0.4,
        }],
        ..FaultPlan::default()
    };
    let mut sim = GossipSimulation::with_faults(averaging_config(100), &values, 31, plan).unwrap();
    let summaries = sim.run(20);
    let early: usize = summaries[..5].iter().map(|s| s.messages_lost).sum();
    let late: usize = summaries[15..].iter().map(|s| s.messages_lost).sum();
    assert_eq!(early, 0, "before the ramp nothing is lost");
    // From cycle 15 on the rate holds at 0.4: ~0.4 · 2 messages · 400
    // exchanges · 5 cycles ≈ 1600 expected losses.
    assert!(
        late > 1_000,
        "after the ramp the loss rate must hold at 40% (lost {late})"
    );
    assert!(
        summaries.last().unwrap().estimate_variance < summaries.first().unwrap().estimate_variance,
        "even at 40% loss the variance keeps contracting"
    );
}

/// The value-injection adversary on the async engine: corrupted estimates
/// are diluted back into consensus, and an epoch restart flushes them.
#[test]
fn async_engine_dilutes_injected_values() {
    use epidemic_aggregation::faults::ValueInjection;

    let values = vec![1.0; 200];
    let config = AsyncConfig {
        protocol: ProtocolConfig::builder()
            .cycles_per_epoch(1_000)
            .build()
            .unwrap(),
        wakeup: WakeupDistribution::FixedPeriod { period: 1.0 },
        message_latency: 0.01,
        sampler: SamplerConfig::UniformComplete,
    };
    let plan = FaultPlan {
        injections: vec![ValueInjection {
            cycle: 2,
            fraction: 0.1,
            value: 501.0,
        }],
        ..FaultPlan::default()
    };
    let mut sim = AsyncSimulation::with_faults(config, &values, 5, plan).unwrap();
    let samples = sim.run_until(30.0, 1.0);
    let last = samples.last().unwrap();
    assert!(
        last.variance < 1e-2,
        "the network must re-reach consensus (variance {})",
        last.variance
    );
    // 10% of nodes overwritten with 501 against a background of 1: the
    // consensus lands near 1 + 0.1·500 = 51 — diluted, not amplified.
    assert!(
        (last.mean - 51.0).abs() < 15.0,
        "consensus must absorb the injected mass (mean {})",
        last.mean
    );
}
