//! NEWSCAST view dynamics under stress: the membership-layer properties the
//! paper's overlay-dependence experiments rely on.
//!
//! Three families of guarantees are pinned here: the overlay *self-heals*
//! after a mass failure (stale descriptors age out / are tail-dropped, views
//! refill with live peers), the emergent in-degree distribution stays
//! *narrow* (no node is systematically over- or under-represented, which is
//! what makes view sampling a stand-in for uniform sampling), and the
//! end-to-end engine keeps converging when half the network crashes mid-run.

use epidemic_aggregation::prelude::*;

fn ids(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::new).collect()
}

/// Kill half the network at once: every survivor's view initially points at
/// a coin-flip mix of live and dead peers, yet within a couple of cache
/// lifetimes every stale descriptor is gone and every view is full again —
/// failure handling without a failure detector.
#[test]
fn newscast_self_heals_after_mass_failure() {
    let n = 1_000;
    let cache = 20;
    let mut live = ids(n);
    let mut sampler = NewscastSampler::new(cache, &live, 97);
    {
        let directory = SliceDirectory::new(&live);
        for _ in 0..10 {
            sampler.begin_cycle(&directory);
        }
    }
    assert_eq!(
        sampler.stale_descriptors(),
        0,
        "steady state before the failure"
    );

    // 50 % of the nodes crash simultaneously.
    for dead in live.drain(0..n / 2) {
        sampler.on_depart(dead);
    }
    assert_eq!(sampler.len(), n / 2);
    let poisoned = sampler.stale_descriptors();
    assert!(
        poisoned > cache * n / 8,
        "half the descriptors should initially point at the dead ({poisoned})"
    );

    // Healing: aging pushes dead descriptors off the cache tail while fresh
    // descriptors of live nodes spread. A couple of cache lifetimes suffice.
    let directory = SliceDirectory::new(&live);
    let mut healed_at = None;
    for cycle in 0..3 * cache {
        sampler.begin_cycle(&directory);
        if sampler.stale_descriptors() == 0 {
            healed_at = Some(cycle + 1);
            break;
        }
    }
    let healed_at = healed_at.expect("overlay must flush every stale descriptor");
    assert!(
        healed_at <= 2 * cache,
        "healing took {healed_at} cycles, expected at most two cache lifetimes"
    );

    // The healed overlay is fully functional: full views of live peers only,
    // and every survivor still referenced by someone.
    for &id in &live {
        let view = sampler.view_of(id).expect("survivor keeps its state");
        assert_eq!(view.len(), cache, "views must refill after healing");
    }
    assert!(
        sampler.in_degrees().values().all(|&d| d > 0),
        "no survivor may be forgotten by the healed overlay"
    );
}

/// The steady-state in-degree distribution is narrow: mean in-degree equals
/// the cache size (every descriptor points somewhere), no node starves, and
/// the maximum stays within a small factor of the mean. This is the
/// load-balance property behind the paper's "democratic" claim.
#[test]
fn newscast_in_degree_distribution_stays_narrow() {
    let n = 2_000;
    let cache = 20;
    let live = ids(n);
    let directory = SliceDirectory::new(&live);
    let mut sampler = NewscastSampler::new(cache, &live, 3);
    for _ in 0..30 {
        sampler.begin_cycle(&directory);
    }
    let degrees = sampler.in_degrees();
    let values: Vec<usize> = degrees.values().copied().collect();
    let mean = values.iter().sum::<usize>() as f64 / values.len() as f64;
    let max = *values.iter().max().unwrap();
    let min = *values.iter().min().unwrap();
    assert!(
        (mean - cache as f64).abs() < 0.5,
        "mean in-degree {mean} must sit at the cache size {cache}"
    );
    assert!(min > 0, "no node may be forgotten");
    assert!(
        (max as f64) < 6.0 * mean,
        "in-degree distribution too skewed: max {max} vs mean {mean}"
    );
}

/// End to end through the cycle engine: a NEWSCAST-sampled network loses
/// half its nodes mid-run and still converges on the survivors' average —
/// the engine's tail-drop healing (failed contact → evict) plus the
/// membership cycle keep the overlay usable throughout.
#[test]
fn engine_with_newscast_sampler_survives_a_mass_crash() {
    let n = 600;
    let values: Vec<f64> = (0..n).map(|i| (i % 100) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(100)
        .build()
        .unwrap();
    let config = SimulationConfig {
        sampler: SamplerConfig::newscast(),
        ..SimulationConfig::averaging(protocol)
    };
    let mut sim = GossipSimulation::new(config, &values, 41);
    sim.run(5);
    assert_eq!(sim.remove_random_nodes(n / 2), n / 2);
    let summaries = sim.run(25);

    // Every cycle after the crash still runs a near-full exchange schedule —
    // the healed views keep producing live partners.
    let late = &summaries[5..];
    assert!(
        late.iter().all(|s| s.exchanges > n / 2 - n / 20),
        "healed overlay must sustain the exchange schedule"
    );
    // And the estimates converge on the survivors' average.
    let survivors_mean = mean(&sim.local_values());
    let last = summaries.last().unwrap();
    assert!(
        (last.estimate_mean - survivors_mean).abs() < 1.0,
        "estimate mean {} vs survivors' average {survivors_mean}",
        last.estimate_mean
    );
    assert!(
        last.estimate_variance < 1e-3,
        "variance {} must keep collapsing after the crash",
        last.estimate_variance
    );
}

/// A NEWSCAST-sampled network under sustained churn keeps its estimate mean
/// pinned to the live population's average-of-averages invariant and its
/// arena bounded — the overlay layer does not leak engine resources.
#[test]
fn engine_with_newscast_sampler_handles_sustained_churn() {
    let values = vec![10.0; 400];
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(10)
        .build()
        .unwrap();
    let config = SimulationConfig {
        sampler: SamplerConfig::Newscast { cache_size: 15 },
        ..SimulationConfig::averaging(protocol)
    };
    let mut sim = GossipSimulation::new(config, &values, 43);
    for _ in 0..40 {
        for _ in 0..5 {
            sim.add_node(10.0);
        }
        assert_eq!(sim.remove_random_nodes(5), 5);
        sim.run_cycle();
    }
    assert_eq!(sim.live_count(), 400);
    assert!(
        sim.slot_capacity() <= 405,
        "churn with the NEWSCAST sampler must not leak arena slots, got {}",
        sim.slot_capacity()
    );
    let summary = sim.run_cycle();
    assert!(
        summary.exchanges > 350,
        "churned overlay still sustains the schedule, got {}",
        summary.exchanges
    );
}
