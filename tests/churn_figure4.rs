//! The Figure 4 churn workload end to end: the node arena must stay bounded
//! under indefinite churn (the free-list engine's contract) and the network
//! size estimate must track the oscillating true size.
//!
//! The scaled test runs in tier-1; the full-scale test (90 000–110 000 nodes,
//! 100 joins + 100 departures per cycle, 1 000 cycles — the paper's exact
//! setting) is `#[ignore]`d for time and runs with:
//!
//! ```text
//! cargo test --release --test churn_figure4 -- --ignored --nocapture
//! ```

use epidemic_aggregation::prelude::*;

/// Runs a scenario and asserts the two Figure 4 properties: arena capacity
/// bounded by `max_size + 2 * fluctuation_per_cycle`, and the mean size
/// estimate (after the bootstrap epoch) within 10 % of the true size.
fn assert_figure4_properties(scenario: SizeEstimationScenario) -> ChurnReport {
    let report = ChurnRunner::new(scenario).run().expect("valid scenario");

    let bound = scenario.churn.max_size + 2 * scenario.churn.fluctuation_per_cycle;
    assert!(
        report.peak_slot_capacity <= bound,
        "node arena leaked: peak {} slots exceeds max_size + 2*fluctuation = {bound}",
        report.peak_slot_capacity
    );
    assert!(
        report.peak_live_nodes <= bound,
        "live set {} exceeded the schedule's envelope {bound}",
        report.peak_live_nodes
    );

    assert!(
        report.points.len() >= 2,
        "expected at least two completed epochs, got {}",
        report.points.len()
    );
    let mean_error = report
        .mean_tracking_error()
        .expect("post-bootstrap epochs must report estimates");
    assert!(
        mean_error < 0.10,
        "mean size-estimate error {:.2}% exceeds the 10% Figure 4 bar",
        mean_error * 100.0
    );
    report
}

#[test]
fn scaled_figure4_churn_keeps_the_arena_bounded_and_tracks_the_size() {
    // 1 000-node version of the oscillation, full 1 000 cycles: the same
    // per-cycle churn structure as the paper's run at 1/100 the size.
    let report = assert_figure4_properties(SizeEstimationScenario::figure4_scaled(
        1_000, 1_000, 20040102,
    ));
    // 1 000 cycles × ~3 churn events each: a leaky arena would exceed 2 000
    // slots; the free list keeps it at the 1 100-node peak plus slack.
    assert!(report.total_joins >= 1_000);
    assert!(report.total_departures >= 1_000);
    // The oscillation returns to the schedule's target at the end.
    let expected_final = report.final_live_nodes;
    assert!((900..=1_100).contains(&expected_final));
}

#[test]
#[ignore = "full-scale paper workload (≈10 min release); run with --release -- --ignored"]
fn full_scale_figure4_churn_completes_within_bounded_memory() {
    // The paper's exact Section 4 scenario: oscillation between 90 000 and
    // 110 000 nodes over 500-cycle periods, plus 100 joins and 100
    // departures of fluctuation every cycle, for 1 000 cycles.
    let scenario = SizeEstimationScenario::figure4(20040102);
    assert_eq!(scenario.churn.max_size, 110_000);
    assert_eq!(scenario.churn.fluctuation_per_cycle, 100);
    assert!(scenario.total_cycles >= 1_000);

    let report = assert_figure4_properties(scenario);

    // ~200 fluctuation events per cycle plus the oscillation slope.
    assert!(report.total_joins >= 100_000);
    assert!(report.total_departures >= 100_000);
    eprintln!(
        "full-scale Figure 4: {} cycles over peak {} nodes in {:.1} s \
         ({:.1} cycles/s), peak arena {} slots (bound {}), mean tracking \
         error {:.2}%",
        report.cycles,
        report.peak_live_nodes,
        report.elapsed_seconds,
        report.cycles_per_second,
        report.peak_slot_capacity,
        scenario.churn.max_size + 2 * scenario.churn.fluctuation_per_cycle,
        report.mean_tracking_error().unwrap_or(f64::NAN) * 100.0
    );
}
