//! The Byzantine adversary lab's headline suite.
//!
//! Pins the error bounds of the paper's redundant-instance defense (Section
//! 4's "run multiple instances and report the median") against the stateful
//! adversaries of `gossip-faults`:
//!
//! * the acceptance bound — k = 5 instances, f = 2 captured leaders, 10⁴
//!   nodes: the median-of-k size estimate stays within 10 % while the
//!   undefended single-instance estimate diverges ≥ 5×;
//! * the order-statistic bound behind it — f < ⌈k/2⌉ adversarial reports of
//!   arbitrary amplitude never move the median outside the honest range;
//! * the single-corruption rule — a one-shot [`ValueInjection`] composing
//!   with an active colluder lie must not double-corrupt;
//! * colluder membership as a pure position coin — identical across the
//!   reference and sharded engines despite their different identifier
//!   layouts;
//! * the stateful/one-shot contrast — dilution absorbs a one-shot injection
//!   but never outruns a persistent lie.

use epidemic_aggregation::core::redundancy::merge_estimates;
use epidemic_aggregation::prelude::*;
use epidemic_aggregation::sim::robustness::attack_defense_sweep;
use epidemic_aggregation::sim::sampling::ADVERSARY_STREAM;
use epidemic_aggregation::sim::SeedSequence;

/// The issue's acceptance bound, pinned at CI-smoke scale: 10⁴ nodes,
/// k = 5 redundant counting instances, f = 2 captured leaders re-asserting a
/// state 20× too large. The defended estimate must stay within 10 % of the
/// true size; the undefended single-instance estimate must be off by ≥ 5×.
#[test]
fn median_of_five_bounds_size_error_under_two_captured_leaders_at_10k() {
    let nodes = 10_000usize;
    let points =
        attack_defense_sweep(nodes, 30, 5, 2, &[20.0], 20040102).expect("sweep completes an epoch");
    assert_eq!(points.len(), 1);
    let point = points[0];

    assert!(
        point.defended_error <= 0.10,
        "median-of-5 error {} exceeds the 10% acceptance bound",
        point.defended_error
    );
    let n = nodes as f64;
    assert!(
        point.undefended_estimate * 5.0 <= n || point.undefended_estimate >= 5.0 * n,
        "undefended estimate {} should be off by at least 5× (true size {n})",
        point.undefended_estimate
    );
    assert!(
        point.undefended_error >= 5.0 * point.defended_error.max(0.01),
        "undefended error {} should diverge ≥5× past the defended {}",
        point.undefended_error,
        point.defended_error
    );
}

/// The bound the defense rests on, swept across odd and even k: with
/// f < ⌈k/2⌉ adversarial reports of arbitrary amplitude and sign, the median
/// never escapes the honest reports' range — equivalently, f captured
/// instances shift the median by no more than the honest spread around the
/// (⌈k/2⌉)-th order statistic.
#[test]
fn median_shift_is_bounded_for_every_minority_capture() {
    for k in 1..=9usize {
        for f in 0..k.div_ceil(2) {
            let honest: Vec<f64> = (0..k - f).map(|i| 100.0 + i as f64).collect();
            let (lo, hi) = (honest[0], honest[honest.len() - 1]);
            for amplitude in [1e12, -1e12, 0.0, 101.5] {
                // Worst cases: all f reports stacked on one side, and split.
                for low_side in 0..=f {
                    let mut reports = honest.clone();
                    reports.extend(std::iter::repeat(-amplitude).take(low_side));
                    reports.extend(std::iter::repeat(amplitude).take(f - low_side));
                    let merged = merge_estimates(&reports, MergePolicy::Median)
                        .expect("finite reports merge");
                    assert!(
                        (lo..=hi).contains(&merged),
                        "k={k} f={f} amplitude={amplitude}: median {merged} escaped \
                         the honest range [{lo}, {hi}]"
                    );
                }
            }
        }
    }
}

/// Degenerate defenses are rejected up front with typed errors, and a plan
/// asserting a non-finite lie never reaches an engine: NaN cannot enter the
/// merge through either door.
#[test]
fn non_finite_attacks_and_empty_defenses_are_rejected_before_running() {
    let protocol = ProtocolConfig::builder().build().unwrap();
    let values = vec![1.0; 8];

    let config = SimulationConfig {
        redundancy: Some(RedundancyConfig::median_of(0)),
        ..SimulationConfig::averaging(protocol)
    };
    assert!(
        GossipSimulation::try_new(config, &values, 1).is_err(),
        "a zero-instance defense must be rejected at construction"
    );

    let nan_lie = AdversaryPlan::with_strategy(0.1, AttackStrategy::FixedLie { value: f64::NAN });
    assert!(nan_lie.validate().is_err(), "NaN lies must not validate");
    assert!(GossipSimulation::with_adversary(
        SimulationConfig::averaging(protocol),
        &values,
        1,
        FaultPlan::none(),
        nan_lie,
    )
    .is_err());
}

/// Satellite regression: one corruption per node per cycle. A node that a
/// `ValueInjection` targets while the adversary is actively lying through it
/// keeps the adversary's value; every other victim gets the injection.
/// Message loss 1.0 freezes the exchange phase, so the post-cycle estimates
/// are exactly the corruption outcome — any double-corruption would show.
#[test]
fn value_injection_composes_with_colluders_without_double_corruption() {
    let n = 64usize;
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(100)
        .build()
        .unwrap();
    let config = SimulationConfig {
        conditions: NetworkConditions::with_message_loss(1.0),
        ..SimulationConfig::averaging(protocol)
    };
    let values = vec![1.0; n];
    let plan = FaultPlan {
        injections: vec![ValueInjection {
            cycle: 0,
            fraction: 1.0,
            value: 100.0,
        }],
        ..FaultPlan::default()
    };
    let adversary = AdversaryPlan::with_strategy(0.5, AttackStrategy::FixedLie { value: 7.0 });

    let mut sim =
        GossipSimulation::with_adversary(config, &values, 2026, plan.clone(), adversary).unwrap();
    let colluders = sim.adversary().colluders().len();
    assert!(
        colluders > 0 && colluders < n,
        "the regression needs a mixed population, got {colluders}/{n} colluders"
    );
    sim.run(1);
    let estimates = sim.estimates();
    assert_eq!(estimates.len(), n);
    for (position, &estimate) in estimates.iter().enumerate() {
        if sim.adversary().is_colluder(NodeId::new(position)) {
            assert_eq!(
                estimate, 7.0,
                "colluder at position {position} must keep the adversary's lie"
            );
        } else {
            assert_eq!(
                estimate, 100.0,
                "honest victim at position {position} must get the one-shot injection"
            );
        }
    }

    // Outside the attack window the rule is inert: the same composition with
    // a not-yet-active adversary injects everyone, colluders included.
    let dormant = AdversaryPlan {
        start_cycle: 10,
        ..AdversaryPlan::with_strategy(0.5, AttackStrategy::FixedLie { value: 7.0 })
    };
    let mut sim = GossipSimulation::with_adversary(config, &values, 2026, plan, dormant).unwrap();
    sim.run(1);
    assert!(
        sim.estimates().iter().all(|&estimate| estimate == 100.0),
        "with the attack window closed, the injection must reach every node"
    );
}

/// Colluder membership is a pure coin on initial-directory *positions*, so
/// the realised set is identical across engines whose identifier layouts
/// differ: the reference engine (ids are positions) and the sharded engine
/// at any shard count (ids embed the shard layout) agree with the coin.
#[test]
fn colluder_sets_are_position_keyed_and_engine_invariant() {
    let n = 400usize;
    let seed = 97u64;
    let plan = AdversaryPlan::with_strategy(0.2, AttackStrategy::FixedLie { value: 50.0 });
    let coin_seed = SeedSequence::new(seed).seed_for_labeled(0, ADVERSARY_STREAM);
    let expected: Vec<usize> = (0..n).filter(|&p| plan.colludes_at(coin_seed, p)).collect();
    assert!(
        !expected.is_empty() && expected.len() < n,
        "fraction 0.2 of {n} should realise a proper subset, got {}",
        expected.len()
    );

    let protocol = ProtocolConfig::builder().build().unwrap();
    let values = vec![1.0; n];
    let reference = GossipSimulation::with_adversary(
        SimulationConfig::averaging(protocol),
        &values,
        seed,
        FaultPlan::none(),
        plan,
    )
    .unwrap();
    let reference_positions: Vec<usize> = reference
        .adversary()
        .colluders()
        .iter()
        .map(|id| id.as_u32() as usize)
        .collect();
    assert_eq!(
        reference_positions, expected,
        "reference-engine colluders must be exactly the coin's positions"
    );

    for shards in [1usize, 2, 4, 8] {
        let config = ShardedConfig {
            base: SimulationConfig::averaging(protocol),
            shards,
            workers: Some(1),
        };
        let sharded =
            ShardedSimulation::with_adversary(config, &values, seed, FaultPlan::none(), plan)
                .unwrap();
        assert_eq!(
            sharded.adversary().colluders().len(),
            expected.len(),
            "{shards}-shard engine must realise the same colluding set size"
        );
    }
}

/// The contrast motivating the stateful lab: the protocol dilutes a one-shot
/// injection into a bounded, converged offset, but a colluding set
/// re-asserting the same lie every cycle keeps pumping mass in — the
/// stateful displacement strictly outruns the one-shot one.
#[test]
fn a_stateful_lie_outruns_the_one_shot_injection_it_generalises() {
    let n = 1_000usize;
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(200)
        .build()
        .unwrap();
    let config = SimulationConfig::averaging(protocol);
    let values = vec![1.0; n];
    let (fraction, lie, seed) = (0.05, 100.0, 4242);

    let one_shot_plan = FaultPlan {
        injections: vec![ValueInjection {
            cycle: 0,
            fraction,
            value: lie,
        }],
        ..FaultPlan::default()
    };
    let mut one_shot = GossipSimulation::with_faults(config, &values, seed, one_shot_plan).unwrap();
    let one_shot_mean = one_shot.run(30).pop().unwrap().estimate_mean;
    // Mass conservation bounds the one-shot attack: ~5% of nodes set to 100
    // once can only move the average to about 1 + 0.05·99 ≈ 6.
    assert!(
        one_shot_mean < 10.0,
        "a one-shot injection is diluted to a bounded offset, got mean {one_shot_mean}"
    );

    let stateful = AdversaryPlan::with_strategy(fraction, AttackStrategy::FixedLie { value: lie });
    let mut persistent =
        GossipSimulation::with_adversary(config, &values, seed, FaultPlan::none(), stateful)
            .unwrap();
    let stateful_mean = persistent.run(30).pop().unwrap().estimate_mean;
    assert!(
        stateful_mean > 2.0 * one_shot_mean,
        "30 cycles of re-asserted lies (mean {stateful_mean}) must outrun the diluted \
         one-shot attack (mean {one_shot_mean})"
    );
}
