//! Integration tests spanning `aggregate-core`, `overlay-topology` and
//! `gossip-sim`: the paper's convergence theory holds for the full stack.

use epidemic_aggregation::prelude::*;

/// Section 3.3: the measured first-cycle variance reduction of each pair
/// selector matches the paper's closed form on the complete topology.
#[test]
fn selector_rates_match_paper_closed_forms() {
    for (selector, expected) in [
        (SelectorKind::PerfectMatching, theory::PM_RATE),
        (SelectorKind::RandomEdge, theory::rand_rate()),
        (SelectorKind::Sequential, theory::seq_rate()),
        (SelectorKind::PmRand, theory::seq_rate()),
    ] {
        let experiment =
            VarianceExperiment::figure3(10_000, TopologyKind::Complete, selector, 1, 8, 77);
        let summary = experiment.run_first_cycle().expect("valid experiment");
        assert!(
            (summary.mean - expected).abs() < 0.03,
            "{selector:?}: measured {} vs expected {expected}",
            summary.mean
        );
    }
}

/// Figure 3(a): convergence is independent of network size (the measured
/// factor is flat across two orders of magnitude of N).
#[test]
fn convergence_is_independent_of_network_size() {
    let mut means = Vec::new();
    for n in [100usize, 1_000, 10_000] {
        let experiment = VarianceExperiment::figure3(
            n,
            TopologyKind::Complete,
            SelectorKind::Sequential,
            1,
            10,
            5,
        );
        means.push(experiment.run_first_cycle().expect("valid experiment").mean);
    }
    let overall = means.iter().sum::<f64>() / means.len() as f64;
    for (i, mean) in means.iter().enumerate() {
        assert!(
            (mean - overall).abs() < 0.05,
            "size index {i}: mean {mean} deviates from overall {overall}"
        );
    }
}

/// Figure 3(a): the 20-regular random overlay behaves like the complete graph
/// for getPair_seq (the paper finds "no observable difference").
#[test]
fn twenty_regular_overlay_matches_complete_graph() {
    let complete = VarianceExperiment::figure3(
        5_000,
        TopologyKind::Complete,
        SelectorKind::Sequential,
        1,
        10,
        11,
    )
    .run_first_cycle()
    .expect("valid experiment");
    let regular = VarianceExperiment::figure3(
        5_000,
        TopologyKind::RandomRegular { degree: 20 },
        SelectorKind::Sequential,
        1,
        10,
        11,
    )
    .run_first_cycle()
    .expect("valid experiment");
    assert!(
        (complete.mean - regular.mean).abs() < 0.03,
        "complete {} vs 20-regular {}",
        complete.mean,
        regular.mean
    );
}

/// Section 5: 99.9% of the variance is gone within the predicted number of
/// cycles for the deployable sequential protocol.
#[test]
fn variance_drops_three_orders_of_magnitude_in_predicted_cycles() {
    let cycles = theory::cycles_for_accuracy(theory::seq_rate(), 1e-3).expect("valid rate");
    let reports = epidemic_aggregation::sim::runner::single_run_reports(
        20_000,
        TopologyKind::Complete,
        SelectorKind::Sequential,
        cycles as usize + 2, // small safety margin over the expectation
        ValueDistribution::Uniform { lo: 0.0, hi: 1.0 },
        13,
    )
    .expect("valid experiment");
    let initial = reports[0].variance_before;
    let last = reports.last().expect("non-empty").variance_after;
    assert!(
        last <= 1e-3 * initial,
        "variance only fell to {last:.3e} of {initial:.3e}"
    );
}

/// The protocol is label-invariant: permuting the initial values does not
/// change the statistical behaviour (the paper's argument for assuming
/// identically distributed initial values).
#[test]
fn averaging_is_insensitive_to_value_ordering() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let n = 2_000;
    let values: Vec<f64> = (0..n).map(|i| (i % 37) as f64).collect();
    let mut shuffled = values.clone();
    shuffled.shuffle(&mut rng);

    let run = |initial: &[f64]| -> f64 {
        let topo = CompleteTopology::new(initial.len());
        let mut working = initial.to_vec();
        let mut selector = SequentialSelector::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let reports = run_avg(&mut working, &topo, &mut selector, &mut rng, 1).unwrap();
        reports[0].reduction_factor().unwrap()
    };

    let original_factor = run(&values);
    let shuffled_factor = run(&shuffled);
    assert!(
        (original_factor - shuffled_factor).abs() < 0.05,
        "ordering changed the reduction factor: {original_factor} vs {shuffled_factor}"
    );
}
