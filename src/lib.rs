//! # epidemic-aggregation
//!
//! Umbrella crate for the reproduction of *"Epidemic-Style Proactive
//! Aggregation in Large Overlay Networks"* (Jelasity & Montresor, ICDCS 2004).
//!
//! The workspace is organised as a set of focused crates; this facade
//! re-exports them under one roof so that applications can depend on a single
//! crate and examples/integration tests can exercise the whole stack:
//!
//! * [`core`] (`aggregate-core`) — the aggregation protocol itself: aggregate
//!   functions, pair selectors, the AVG algorithm, epochs, size estimation and
//!   the convergence theory;
//! * [`topology`] (`overlay-topology`) — overlay graphs and generators;
//! * [`membership`] (`peer-sampling`) — newscast-style peer sampling;
//! * [`sim`] (`gossip-sim`) — cycle-driven and event-driven simulators,
//!   churn models and experiment runners;
//! * [`faults`] (`gossip-faults`) — the fault-injection lab: deterministic
//!   fault schedules (link failures, partitions, crash bursts, loss ramps,
//!   adversarial value injection) every engine executes;
//! * [`net`] (`gossip-net`) — transports, wire codec and two runtimes over
//!   the shared protocol core: the threaded deployment runtime and the
//!   deterministic lockstep cluster pinned against the simulator;
//! * [`analysis`] (`gossip-analysis`) — statistics and report generation.
//!
//! See the workspace `README.md` for a guided tour and `DESIGN.md` for the
//! paper-to-module mapping.
//!
//! ## Quick start
//!
//! ```
//! use epidemic_aggregation::prelude::*;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), AggregationError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let n = 1_000;
//! let topology = CompleteTopology::new(n);
//! let mut values: Vec<f64> = (0..n).map(|i| i as f64).collect();
//! let mut selector = SequentialSelector::new();
//! run_avg(&mut values, &topology, &mut selector, &mut rng, 30)?;
//! assert!(values.iter().all(|v| (v - 499.5).abs() < 1e-3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use aggregate_core as core;
pub use gossip_analysis as analysis;
pub use gossip_faults as faults;
pub use gossip_net as net;
pub use gossip_sim as sim;
pub use gossip_telemetry as telemetry;
pub use overlay_topology as topology;
pub use peer_sampling as membership;

/// The most commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use aggregate_core::aggregate::{Aggregate, AggregateKind, Average, Maximum, Minimum};
    pub use aggregate_core::avg::{mean, run_avg, run_avg_cycle, variance};
    pub use aggregate_core::node::ProtocolNode;
    pub use aggregate_core::sampler::{
        PeerSampler, SamplerConfig, SamplerDirectory, SliceDirectory, UniformSampler,
    };
    pub use aggregate_core::selectors::{
        PairSelector, PerfectMatchingSelector, RandomEdgeSelector, SelectorKind, SequentialSelector,
    };
    pub use aggregate_core::size_estimation::LeaderPolicy;
    pub use aggregate_core::{theory, AggregationError, GossipMessage, ProtocolConfig};
    pub use gossip_analysis::{Summary, Table};
    pub use gossip_faults::{
        Adversary, AdversaryPlan, AttackStrategy, CrashBurst, FaultInjector, FaultPlan, LossRamp,
        PartitionWindow, PlanInjector, ValueInjection,
    };
    pub use gossip_net::{
        ClusterConfig, ClusterReport, GossipCluster, GossipRuntime, NodeEnv, RuntimeStats,
        VirtualCluster,
    };
    pub use gossip_sim::runner::{
        ChurnReport, ChurnRunner, SizeEstimationScenario, VarianceExperiment,
    };
    pub use gossip_sim::{
        AsyncConfig, AsyncSimulation, AttackDefensePoint, ChurnSchedule, GossipSimulation,
        MergePolicy, NetworkConditions, RedundancyConfig, ReportError, RobustnessPoint,
        RobustnessSweep, ShardedConfig, ShardedSimulation, SimConfigError, SimError,
        SimulationConfig, ValueDistribution, WakeupDistribution,
    };
    pub use gossip_telemetry::{
        ConvergenceWatchdog, Diagnosis, Event, EventKind, FlightRecorder, MetricsRegistry,
        TelemetryConfig, TelemetrySink, WatchdogVerdict,
    };
    pub use overlay_topology::{
        generators, CompleteTopology, Graph, NodeId, Topology, TopologyBuilder, TopologyKind,
    };
    pub use peer_sampling::{NewscastNetwork, NewscastSampler, PeerSampling, StaticOverlaySampler};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_key_types() {
        use crate::prelude::*;
        // Compile-time check that the re-exports resolve.
        let _ = AggregateKind::Average;
        let _ = SelectorKind::Sequential;
        let _ = TopologyKind::Complete;
        let _ = NetworkConditions::reliable();
        assert!(FaultPlan::none().is_empty());
        assert!((theory::PM_RATE - 0.25).abs() < 1e-12);
    }
}
