//! Overlay-dependence experiments: the paper's robustness claim, measured.
//!
//! Section 5 of the paper argues that the convergence rates derived for
//! uniform peer sampling survive on realistic overlays: a NEWSCAST-maintained
//! partial view of `c ≥ 20` descriptors yields practically the same
//! per-cycle variance-reduction factor as sampling from the complete graph.
//! This module packages that experiment at both levels of the stack:
//!
//! * [`OverlayExperiment`] drives a *node-level* engine
//!   ([`crate::GossipSimulation`] or [`crate::ShardedSimulation`], which
//!   realise the `GETPAIR_SEQ` schedule) through any
//!   [`SamplerConfig`] — uniform-complete, static overlay families, or the
//!   live NEWSCAST sampler — and measures the per-cycle reduction factor to
//!   compare against `1/(2√e) ≈ 0.3033`;
//! * [`newscast_snapshot_factor`] measures the *vector-level* `AVG`
//!   algorithm with `GETPAIR_RAND` over a frozen NEWSCAST view topology, the
//!   quantity to compare against the uniform-random rate `1/e ≈ 0.3679`;
//! * [`overlay_sweep`] runs the whole sweep (overlay families × NEWSCAST
//!   cache sizes) and renders a [`Table`] whose CSV form is the artifact the
//!   bench target and `EXPERIMENTS.md` record.

use crate::{
    SeedSequence, ShardedConfig, ShardedSimulation, SimError, SimulationConfig, ValueDistribution,
};
use aggregate_core::avg;
use aggregate_core::sampler::SamplerConfig;
use aggregate_core::selectors::RandomEdgeSelector;
use aggregate_core::{theory, ProtocolConfig};
use gossip_analysis::Table;
use overlay_topology::TopologyKind;
use peer_sampling::NewscastNetwork;
use serde::{Deserialize, Serialize};

/// A node-level convergence measurement under a configurable peer-sampling
/// layer: `nodes` nodes holding uniform `[0, 1)` values run `cycles` cycles
/// of the full protocol, and the per-cycle variance-reduction factors are
/// averaged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayExperiment {
    /// Network size.
    pub nodes: usize,
    /// Cycles to run (the epoch is sized to outlast them, so no restart
    /// perturbs the variance trajectory).
    pub cycles: usize,
    /// The peer-sampling layer under test.
    pub sampler: SamplerConfig,
    /// Shard count; `0` selects the single-threaded reference engine. The
    /// sharded engine makes the 10⁵–10⁶-node points practical.
    pub shards: usize,
    /// Master seed.
    pub seed: u64,
}

/// The measured outcome of one [`OverlayExperiment`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlayMeasurement {
    /// The sampler under test.
    pub sampler: SamplerConfig,
    /// Network size.
    pub nodes: usize,
    /// Number of per-cycle factors that entered the mean (cycles whose
    /// predecessor variance was above numerical noise).
    pub cycles_measured: usize,
    /// Mean per-cycle variance-reduction factor `σ²ᵢ / σ²ᵢ₋₁`.
    pub mean_factor: f64,
    /// Estimate variance after the final cycle.
    pub final_variance: f64,
}

impl OverlayMeasurement {
    /// Ratio of the measured factor to the `GETPAIR_SEQ` theoretical rate
    /// `1/(2√e)` — the engines realise the SEQ schedule, so 1.0 means "the
    /// overlay costs nothing against uniform sampling".
    pub fn ratio_to_seq_rate(&self) -> f64 {
        self.mean_factor / theory::seq_rate()
    }
}

impl OverlayExperiment {
    /// The standard sweep point: `nodes` nodes, 20 cycles, reference engine.
    pub fn new(nodes: usize, sampler: SamplerConfig, seed: u64) -> Self {
        OverlayExperiment {
            nodes,
            cycles: 20,
            sampler,
            shards: 0,
            seed,
        }
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors (invalid overlay parameters, bad
    /// shard counts, …).
    pub fn run(&self) -> Result<OverlayMeasurement, SimError> {
        let protocol = ProtocolConfig::builder()
            .cycles_per_epoch(u32::try_from(self.cycles + 1).unwrap_or(u32::MAX))
            .build()?;
        let config = SimulationConfig {
            sampler: self.sampler,
            ..SimulationConfig::averaging(protocol)
        };
        let seeds = SeedSequence::new(self.seed);
        // stream: node value draws for overlay experiments
        let mut value_rng = seeds.rng_for_labeled(0, "overlay-values");
        let values =
            ValueDistribution::Uniform { lo: 0.0, hi: 1.0 }.generate(self.nodes, &mut value_rng);
        let initial_variance = avg::variance(&values);

        let variances: Vec<f64> = if self.shards == 0 {
            let mut sim = crate::GossipSimulation::try_new(config, &values, self.seed)?;
            sim.run(self.cycles)
                .iter()
                .map(|s| s.estimate_variance)
                .collect()
        } else {
            let sharded = ShardedConfig {
                base: config,
                shards: self.shards,
                workers: None,
            };
            let mut sim = ShardedSimulation::new(sharded, &values, self.seed)?;
            sim.run(self.cycles)
                .iter()
                .map(|s| s.estimate_variance)
                .collect()
        };

        let mut factors = Vec::with_capacity(variances.len());
        let mut previous = initial_variance;
        for &variance in &variances {
            if previous > 1e-12 {
                factors.push(variance / previous);
            }
            previous = variance;
        }
        let mean_factor = if factors.is_empty() {
            f64::NAN
        } else {
            factors.iter().sum::<f64>() / factors.len() as f64
        };
        Ok(OverlayMeasurement {
            sampler: self.sampler,
            nodes: self.nodes,
            cycles_measured: factors.len(),
            mean_factor,
            final_variance: variances.last().copied().unwrap_or(initial_variance),
        })
    }
}

/// First-cycle variance-reduction factor of the vector-level `AVG` algorithm
/// with `GETPAIR_RAND` over a *frozen snapshot* of a NEWSCAST overlay:
/// bootstrap a [`NewscastNetwork`] of `nodes` nodes with view size
/// `cache_size`, run `warmup_cycles` membership cycles, export the view
/// topology and measure `runs` independent first cycles.
///
/// This is the measurement to set against the uniform-random rate
/// `1/e ≈ 0.3679` (the paper's claim: within a few percent for `c ≥ 20`).
///
/// # Errors
///
/// Propagates protocol errors from the `AVG` driver.
pub fn newscast_snapshot_factor(
    nodes: usize,
    cache_size: usize,
    warmup_cycles: usize,
    runs: usize,
    seed: u64,
) -> Result<gossip_analysis::Summary, SimError> {
    let seeds = SeedSequence::new(seed);
    let mut factors = Vec::with_capacity(runs);
    for run in 0..runs {
        // stream: NEWSCAST view warm-up exchanges before measurement
        let mut membership_rng = seeds.rng_for_labeled(run as u64, "newscast-warmup");
        let mut network = NewscastNetwork::bootstrap_ring(nodes, cache_size);
        for _ in 0..warmup_cycles {
            network.run_cycle(&mut membership_rng);
        }
        let topology = network.view_topology();
        // stream: protocol execution — peer picks and exchange draws
        let mut rng = seeds.rng_for_labeled(run as u64, "protocol");
        let mut values = ValueDistribution::Uniform { lo: 0.0, hi: 1.0 }.generate(nodes, &mut rng);
        let mut selector = RandomEdgeSelector::new();
        let reports = avg::run_avg(&mut values, &topology, &mut selector, &mut rng, 1)
            .map_err(SimError::Protocol)?;
        if let Some(factor) = reports[0].reduction_factor() {
            factors.push(factor);
        }
    }
    Ok(gossip_analysis::Summary::from_slice(&factors))
}

/// The overlay families the sweep probes alongside uniform sampling, chosen
/// to match the paper's Figure 3(b) selection (random, small-world,
/// scale-free) at view-size-20 density.
pub fn sweep_samplers(cache_sizes: &[usize]) -> Vec<SamplerConfig> {
    let mut samplers = vec![
        SamplerConfig::UniformComplete,
        SamplerConfig::StaticOverlay {
            topology: TopologyKind::RandomRegular { degree: 20 },
        },
        SamplerConfig::StaticOverlay {
            topology: TopologyKind::SmallWorld {
                degree: 20,
                beta: 0.2,
            },
        },
        SamplerConfig::StaticOverlay {
            topology: TopologyKind::ScaleFree { attachment: 10 },
        },
    ];
    samplers.extend(
        cache_sizes
            .iter()
            .map(|&cache_size| SamplerConfig::Newscast { cache_size }),
    );
    samplers
}

/// Runs the full overlay sweep — every [`sweep_samplers`] family at
/// `nodes`/`cycles` — and renders the results as a [`Table`] (one row per
/// sampler, with the measured factor and its ratio to the SEQ rate).
///
/// # Errors
///
/// Propagates the first failing experiment.
pub fn overlay_sweep(
    nodes: usize,
    cycles: usize,
    cache_sizes: &[usize],
    shards: usize,
    seed: u64,
) -> Result<(Vec<OverlayMeasurement>, Table), SimError> {
    let mut measurements = Vec::new();
    for sampler in sweep_samplers(cache_sizes) {
        let experiment = OverlayExperiment {
            nodes,
            cycles,
            sampler,
            shards,
            seed,
        };
        measurements.push(experiment.run()?);
    }
    let table = overlay_sweep_table(&measurements);
    Ok((measurements, table))
}

/// Renders overlay measurements as the sweep's report table. The `sampler`
/// column carries [`SamplerConfig::paper_name`] and the `detail` column the
/// parameterised form, so CSV artifacts distinguish complete-graph from
/// NEWSCAST runs at a glance.
pub fn overlay_sweep_table(measurements: &[OverlayMeasurement]) -> Table {
    let mut table = Table::new(vec![
        "sampler",
        "detail",
        "nodes",
        "cycles_measured",
        "measured_factor",
        "seq_theory",
        "ratio_to_theory",
    ]);
    for m in measurements {
        table.add_row(vec![
            m.sampler.paper_name().to_string(),
            m.sampler.to_string(),
            m.nodes.to_string(),
            m.cycles_measured.to_string(),
            format!("{:.4}", m.mean_factor),
            format!("{:.4}", theory::seq_rate()),
            format!("{:.3}", m.ratio_to_seq_rate()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_experiment_measures_the_seq_rate() {
        let m = OverlayExperiment::new(2_000, SamplerConfig::UniformComplete, 11)
            .run()
            .unwrap();
        assert!(
            (m.mean_factor - theory::seq_rate()).abs() < 0.05,
            "measured {} vs theory {}",
            m.mean_factor,
            theory::seq_rate()
        );
        assert!(m.cycles_measured >= 10);
        assert!(m.final_variance < 1e-4);
        assert!((m.ratio_to_seq_rate() - 1.0).abs() < 0.2);
    }

    #[test]
    fn newscast_experiment_stays_close_to_uniform() {
        // The tentpole claim at test scale: a live NEWSCAST view of c = 20
        // costs almost nothing against uniform sampling.
        let uniform = OverlayExperiment::new(2_000, SamplerConfig::UniformComplete, 11)
            .run()
            .unwrap();
        let newscast = OverlayExperiment::new(2_000, SamplerConfig::newscast(), 11)
            .run()
            .unwrap();
        let ratio = newscast.mean_factor / uniform.mean_factor;
        assert!(
            (ratio - 1.0).abs() < 0.1,
            "newscast factor {} vs uniform {} (ratio {ratio})",
            newscast.mean_factor,
            uniform.mean_factor
        );
    }

    #[test]
    fn static_overlay_experiment_converges_on_regular_graphs() {
        let m = OverlayExperiment::new(
            1_000,
            SamplerConfig::StaticOverlay {
                topology: TopologyKind::RandomRegular { degree: 20 },
            },
            7,
        )
        .run()
        .unwrap();
        assert!(
            (m.mean_factor - theory::seq_rate()).abs() < 0.06,
            "measured {}",
            m.mean_factor
        );
    }

    #[test]
    fn shard_count_does_not_change_the_newscast_measurement() {
        // 1-shard and 4-shard sharded runs realise the same schedule and the
        // same NEWSCAST pick sequence (directory positions are shard-count
        // invariant); only the telemetry merge order may differ.
        let one = OverlayExperiment {
            shards: 1,
            ..OverlayExperiment::new(1_000, SamplerConfig::newscast(), 3)
        }
        .run()
        .unwrap();
        let four = OverlayExperiment {
            shards: 4,
            ..OverlayExperiment::new(1_000, SamplerConfig::newscast(), 3)
        }
        .run()
        .unwrap();
        assert!(
            (one.mean_factor - four.mean_factor).abs() < 1e-9,
            "1-shard {} vs 4-shard {}",
            one.mean_factor,
            four.mean_factor
        );
    }

    #[test]
    fn newscast_snapshot_matches_the_random_rate_for_large_caches() {
        let summary = newscast_snapshot_factor(2_000, 20, 20, 5, 42).unwrap();
        assert_eq!(summary.count, 5);
        assert!(
            (summary.mean - theory::rand_rate()).abs() < 0.04,
            "measured {} vs 1/e {}",
            summary.mean,
            theory::rand_rate()
        );
    }

    #[test]
    fn sweep_produces_one_labelled_row_per_sampler() {
        let (measurements, table) = overlay_sweep(400, 10, &[4, 20], 0, 5).unwrap();
        assert_eq!(measurements.len(), 6);
        let csv = table.to_csv();
        assert!(csv.starts_with("sampler,detail,nodes,cycles_measured"));
        assert!(csv.contains("uniform-complete"));
        assert!(csv.contains("newscast(c=4)"));
        assert!(csv.contains("newscast(c=20)"));
        assert!(csv.contains("static[20-regular random]"));
    }
}
