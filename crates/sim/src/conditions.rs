//! Network failure conditions: message loss and node crashes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Failure conditions applied by the simulation engines.
///
/// The paper's model assumes reliable, instantaneous communication for the
/// analysis and discusses failures qualitatively; the robustness ablation
/// (benchmark A2) quantifies them with this structure. Losses are applied to
/// each message independently; crashes remove a fraction of nodes at a given
/// cycle, mimicking a correlated failure event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConditions {
    /// Probability that any individual message (push or reply) is lost.
    pub message_loss: f64,
    /// Fraction of live nodes that crash at [`NetworkConditions::crash_at_cycle`].
    pub crash_fraction: f64,
    /// Cycle index at which the crash event happens.
    pub crash_at_cycle: Option<usize>,
}

impl NetworkConditions {
    /// Perfect network: no loss, no crashes. This reproduces the paper's
    /// analytical setting.
    pub const fn reliable() -> Self {
        NetworkConditions {
            message_loss: 0.0,
            crash_fraction: 0.0,
            crash_at_cycle: None,
        }
    }

    /// Conditions with only uniform message loss.
    pub fn with_message_loss(loss: f64) -> Self {
        NetworkConditions {
            message_loss: loss,
            ..Self::reliable()
        }
    }

    /// Conditions with a single crash event: `fraction` of the nodes die at
    /// `cycle`.
    pub fn with_crash(fraction: f64, cycle: usize) -> Self {
        NetworkConditions {
            crash_fraction: fraction,
            crash_at_cycle: Some(cycle),
            ..Self::reliable()
        }
    }

    /// Returns `true` when the parameters are valid probabilities.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.message_loss)
            && self.message_loss.is_finite()
            && (0.0..=1.0).contains(&self.crash_fraction)
            && self.crash_fraction.is_finite()
    }

    /// Samples whether one message gets lost.
    pub fn message_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.message_loss > 0.0 && rng.gen_bool(self.message_loss.clamp(0.0, 1.0))
    }
}

impl Default for NetworkConditions {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reliable_conditions_never_lose_messages() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cond = NetworkConditions::reliable();
        assert!(cond.is_valid());
        assert!((0..1000).all(|_| !cond.message_lost(&mut rng)));
        assert_eq!(NetworkConditions::default(), cond);
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cond = NetworkConditions::with_message_loss(0.2);
        let lost = (0..50_000).filter(|_| cond.message_lost(&mut rng)).count();
        let rate = lost as f64 / 50_000.0;
        assert!((rate - 0.2).abs() < 0.01, "observed loss rate {rate}");
    }

    #[test]
    fn crash_constructor_and_validation() {
        let cond = NetworkConditions::with_crash(0.5, 5);
        assert!(cond.is_valid());
        assert_eq!(cond.crash_at_cycle, Some(5));
        assert_eq!(cond.crash_fraction, 0.5);
        assert_eq!(cond.message_loss, 0.0);

        assert!(!NetworkConditions::with_message_loss(1.5).is_valid());
        assert!(!NetworkConditions::with_message_loss(f64::NAN).is_valid());
        assert!(!NetworkConditions::with_crash(-0.1, 0).is_valid());
    }
}
