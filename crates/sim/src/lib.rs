//! # gossip-sim
//!
//! Simulation engines and experiment runners for epidemic-style aggregation.
//!
//! The paper's evaluation is entirely simulation based; this crate is the
//! substrate that replaces the authors' simulator. It provides:
//!
//! * a **cycle-driven engine** ([`GossipSimulation`]) that drives real
//!   [`aggregate_core::node::ProtocolNode`] state machines over a simulated
//!   network with message loss, churn (joins/departures), epochs and
//!   leader election — the engine behind the Figure 4 reproduction. Node
//!   state lives in a slot-reclaiming, generation-tagged [`arena::NodeArena`],
//!   so indefinite churn runs in memory bounded by the peak live size;
//! * a **sharded multi-threaded engine** ([`ShardedSimulation`]) that
//!   partitions the arena into per-shard sub-arenas and executes each cycle
//!   across worker threads with a deterministic round/mailbox protocol —
//!   bit-identical per (seed, shard count), node values invariant across
//!   shard counts — the engine behind the million-node epochs
//!   (`examples/million_node.rs`);
//! * an **event-driven engine** ([`AsyncSimulation`]) with per-node clocks and
//!   message latency, validating that convergence does not depend on the
//!   synchronisation assumption of the analysis;
//! * **experiment runners** ([`runner`]) that package the paper's experiments
//!   (Figure 3's variance-reduction sweeps, Figure 4's size-estimation
//!   scenario, robustness ablations) as reusable, seeded procedures;
//! * the supporting models: initial value distributions ([`ValueDistribution`]),
//!   churn schedules ([`ChurnSchedule`]), failure conditions
//!   ([`NetworkConditions`]) and deterministic seed management
//!   ([`SeedSequence`]).
//!
//! ## Example: one point of Figure 3(a)
//!
//! ```
//! use gossip_sim::runner::VarianceExperiment;
//! use aggregate_core::SelectorKind;
//! use overlay_topology::TopologyKind;
//!
//! # fn main() -> Result<(), aggregate_core::AggregationError> {
//! let experiment = VarianceExperiment::figure3(
//!     1_000,                      // network size
//!     TopologyKind::Complete,     // overlay
//!     SelectorKind::Sequential,   // getPair_seq
//!     1,                          // one cycle → σ²₁/σ²₀
//!     10,                         // independent runs
//!     42,                         // master seed
//! );
//! let summary = experiment.run_first_cycle()?;
//! // The measured reduction factor is close to the paper's 1/(2√e) ≈ 0.303.
//! assert!((summary.mean - 0.303).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arena;
mod churn;
mod engine;
mod error;
mod event_engine;
pub mod overlay;
pub mod robustness;
pub mod runner;
pub mod sampling;
pub mod sharded;
pub mod soa;
mod values;

pub use churn::ChurnSchedule;
pub use engine::{CycleSummary, GossipSimulation, SimulationConfig};
// The failure models live in `gossip-faults` (the fault-injection lab);
// re-exported here because every simulation configuration embeds them.
pub use aggregate_core::redundancy::{MergePolicy, RedundancyConfig, ReportError};
pub use error::{SimConfigError, SimError};
pub use event_engine::{
    AsyncConfig, AsyncConfigError, AsyncSimulation, TimeSample, WakeupDistribution,
};
pub use gossip_faults::{
    Adversary, AdversaryPlan, AdversaryPlanError, AttackStrategy, ConditionsError, FaultInjector,
    FaultPlan, NetworkConditions, PlanInjector,
};
pub use overlay::{OverlayExperiment, OverlayMeasurement};
// `SeedSequence` moved to `aggregate-core`'s effects module (it now seeds
// the live runtime too); re-exported here so existing imports keep working.
pub use aggregate_core::effects::SeedSequence;
pub use robustness::{AttackDefensePoint, RobustnessPoint, RobustnessSweep};
pub use sampling::instantiate_sampler;
pub use sharded::{ShardedConfig, ShardedCycleSummary, ShardedSimulation};
pub use values::ValueDistribution;
