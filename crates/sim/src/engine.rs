//! Cycle-driven simulation engine for the distributed protocol.
//!
//! This engine drives real [`ProtocolNode`] state machines (the same code the
//! live runtime deploys) over a simulated network: per-cycle peer selection,
//! optional message loss, churn (joins and departures), epoch restarts and
//! leader election for network-size estimation. It is the engine behind the
//! Figure 4 reproduction and the robustness ablations.
//!
//! Node state lives in a slot-reclaiming [`crate::arena::NodeArena`]:
//! departures free their slot for the next join, identifiers carry a per-slot
//! generation so stale [`NodeId`]s cannot alias a slot's next occupant, and
//! peer selection runs over a dense live array. This is what lets the engine
//! sustain the paper's full-scale churn workload (Figure 4: 90 000–110 000
//! nodes with 200 membership events per cycle, indefinitely) with memory
//! bounded by the peak live size instead of the total join count.
//!
//! For the pure variance-reduction experiments of Figure 3 the lighter
//! whole-network `AVG` algorithm in [`aggregate_core::avg`] is used instead
//! (same mathematics, no message objects); see [`crate::runner`].
//!
//! This engine deliberately stays on the per-node message path and does
//! *not* adopt the struct-of-arrays fast path of the sharded engine
//! ([`crate::soa`]): its role is to exercise the exact `begin` → `respond`
//! → `complete` code a live transport runs (the wire-path identity pins in
//! `tests/determinism.rs` depend on that), and message-object construction
//! is precisely what the SoA layout batches away. Scale runs belong to
//! [`crate::sharded::ShardedSimulation`]; this engine is the semantic
//! reference it is pinned against.

use crate::arena::NodeArena;
use crate::sampling::{instantiate_sampler, ArenaDirectory};
use crate::{NetworkConditions, SeedSequence, SimConfigError};
use aggregate_core::aggregate::CountInit;
use aggregate_core::effects::{Clock, VirtualClock};
use aggregate_core::node::ProtocolNode;
use aggregate_core::redundancy::{redundant_size_estimate_from_epoch, RedundancyConfig};
use aggregate_core::sampler::{sample_live_peer, PeerSampler, SamplerConfig};
use aggregate_core::size_estimation::{self, LeaderPolicy};
use aggregate_core::{ExchangeCore, ExchangeTally, GossipMessage, InstanceTag, ProtocolConfig};
use gossip_analysis::OnlineStats;
use gossip_faults::{Adversary, AdversaryPlan, FaultInjector, FaultPlan, PlanInjector};
use gossip_telemetry::{Event, TelemetryConfig, TelemetrySink, WatchdogVerdict};
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Logical duration of one protocol cycle on the engines' virtual clocks.
/// Flight-recorder timestamps advance by this per cycle — virtual time, so
/// traces are deterministic and no protocol crate ever reads a wall clock.
pub(crate) const VIRTUAL_CYCLE_MS: u64 = 1_000;

/// Configuration of a [`GossipSimulation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Per-node protocol configuration.
    pub protocol: ProtocolConfig,
    /// Failure conditions — the simple uniform-loss + one-shot-crash model.
    /// At construction these are absorbed into the run's [`FaultPlan`]
    /// ([`FaultPlan::absorb_conditions`]) and executed by the engine's fault
    /// injector; richer schedules (link failures, partitions, loss ramps,
    /// value injection) enter through [`GossipSimulation::with_faults`].
    pub conditions: NetworkConditions,
    /// Leader-election policy for network-size estimation; `None` disables
    /// counting instances entirely.
    pub leader_policy: Option<LeaderPolicy>,
    /// The peer-sampling layer exchange partners are drawn from:
    /// uniform-complete (the paper's analytical model and the default), a
    /// static overlay graph, or a live NEWSCAST membership protocol running
    /// in lockstep with the aggregation cycles.
    pub sampler: SamplerConfig,
    /// The redundant-instance defense: when set, every epoch elects exactly
    /// `k` distinct counting-instance leaders (from the dedicated
    /// `redundancy-leaders` seed stream) and per-node size reports merge the
    /// per-instance estimates under the configured policy (median-of-k or
    /// trimmed mean) instead of pooling instance states by averaging.
    /// `None` keeps the undefended estimator and the probabilistic
    /// `leader_policy` elections.
    pub redundancy: Option<RedundancyConfig>,
}

impl SimulationConfig {
    /// Plain averaging over a reliable network, no size estimation, uniform
    /// peer sampling.
    pub fn averaging(protocol: ProtocolConfig) -> Self {
        SimulationConfig {
            protocol,
            conditions: NetworkConditions::reliable(),
            leader_policy: None,
            sampler: SamplerConfig::UniformComplete,
            redundancy: None,
        }
    }

    /// Validates this configuration together with the initial population it
    /// is about to be run on.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ZeroNodes`] for an empty population,
    /// [`SimConfigError::NonFiniteInitialValue`] for NaN/infinite initial
    /// values and [`SimConfigError::InvalidConditions`] for failure
    /// parameters that are not probabilities.
    pub fn validate(&self, initial_values: &[f64]) -> Result<(), SimConfigError> {
        if self.conditions.validate().is_err() {
            return Err(SimConfigError::InvalidConditions {
                message_loss: self.conditions.message_loss,
                crash_fraction: self.conditions.crash_fraction,
            });
        }
        if let Some(redundancy) = self.redundancy {
            redundancy.validate()?;
        }
        crate::error::validate_initial_values(initial_values)
    }
}

/// Summary of one simulated cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleSummary {
    /// Cycle index (0-based, global).
    pub cycle: usize,
    /// Number of live nodes at the end of the cycle.
    pub live_nodes: usize,
    /// Number of push–pull exchanges initiated.
    pub exchanges: usize,
    /// Number of messages dropped by the loss model.
    pub messages_lost: usize,
    /// Number of exchange attempts vetoed by the fault lab before any
    /// message was formed (dead link or active partition between the
    /// endpoints). Always zero under the empty [`FaultPlan`].
    pub exchanges_blocked: usize,
    /// Variance of the default-instance estimates over live nodes.
    pub estimate_variance: f64,
    /// Mean of the default-instance estimates over live nodes.
    pub estimate_mean: f64,
    /// The epoch that completed at the end of this cycle, if any.
    pub completed_epoch: Option<u64>,
    /// Converged default-instance estimates reported by nodes that
    /// participated in the full epoch (empty unless an epoch completed).
    pub epoch_estimates: Vec<f64>,
    /// Converged network-size estimates reported by nodes that participated in
    /// the full epoch (empty unless an epoch completed and size estimation is
    /// enabled).
    pub epoch_size_estimates: Vec<f64>,
}

/// A cycle-driven simulation of the full distributed protocol.
///
/// Exchange partners are drawn through the configured [`PeerSampler`]. The
/// default, [`SamplerConfig::UniformComplete`], samples uniformly over the
/// other live nodes — the complete-graph setting of the paper's Section 4
/// experiment, bit-identical to the engine's historical behaviour. A
/// [`SamplerConfig::StaticOverlay`] restricts partners to the edges of a
/// generated overlay graph, and [`SamplerConfig::Newscast`] runs a live
/// NEWSCAST membership protocol in lockstep with the aggregation cycles —
/// the setting of the paper's overlay-dependence experiments.
#[derive(Debug)]
pub struct GossipSimulation {
    config: SimulationConfig,
    arena: NodeArena,
    cycle: usize,
    rng: StdRng,
    sampler: Box<dyn PeerSampler>,
    /// The fault lab. By default a [`PlanInjector`] over the run's
    /// [`FaultPlan`] with the configured [`NetworkConditions`] absorbed
    /// underneath, so every run — faulty or not — executes through one
    /// injector path; the empty plan is bit-identical to the pre-fault-lab
    /// engine (pinned by `tests/determinism.rs`).
    injector: Box<dyn FaultInjector>,
    /// The stateful adversary: colluders re-asserting lies every cycle and
    /// captured counting-instance leaders. The empty plan never touches a
    /// node and consumes no randomness, so it is bit-identical to no
    /// adversary lab at all (pinned by `tests/determinism.rs`).
    adversary: Adversary,
    /// Master seed streams, kept for the per-epoch redundant leader draws.
    seeds: SeedSequence,
    /// Monotone counter keying the `redundancy-leaders` draws, one per
    /// election, so every epoch's leader set is an independent stream.
    elections: u64,
    last_size_estimate: Option<f64>,
    scratch_pushes: Vec<GossipMessage>,
    scratch_replies: Vec<GossipMessage>,
    /// The observability layer: flight recorder, metrics and watchdog.
    /// Disabled by default — the disabled path records nothing, consumes no
    /// randomness and is pinned bit-identical to the pre-telemetry goldens.
    telemetry: TelemetrySink,
    /// Virtual time driving the flight-recorder timestamps; advances by
    /// [`VIRTUAL_CYCLE_MS`] per cycle, never reads the wall clock.
    clock: VirtualClock,
}

impl GossipSimulation {
    /// Creates a simulation with one node per initial value, all present from
    /// epoch 0, using the given master seed.
    ///
    /// This permissive constructor accepts any population (including an empty
    /// one — useful for degenerate-case tests); use
    /// [`GossipSimulation::try_new`] to validate the configuration with a
    /// typed error instead.
    ///
    /// # Panics
    ///
    /// Panics when the peer-sampling configuration cannot be realised (e.g.
    /// invalid overlay-generator parameters) or the failure conditions are
    /// not probabilities; [`GossipSimulation::try_new`] reports the same
    /// conditions as typed errors.
    pub fn new(config: SimulationConfig, initial_values: &[f64], master_seed: u64) -> Self {
        GossipSimulation::build(
            config,
            initial_values,
            master_seed,
            FaultPlan::none(),
            AdversaryPlan::none(),
        )
        // lint-allow(unwrap): documented `# Panics` contract; `try_new` is the typed-error variant
        .expect("invalid simulation configuration")
    }

    /// Validating variant of [`GossipSimulation::new`], mirroring the
    /// [`crate::AsyncSimulation::new`] pattern: rejects an empty population,
    /// non-finite initial values, invalid failure conditions and unrealisable
    /// sampler configurations at construction.
    ///
    /// # Errors
    ///
    /// See [`SimulationConfig::validate`] and [`SimConfigError::Sampler`].
    pub fn try_new(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
    ) -> Result<Self, SimConfigError> {
        config.validate(initial_values)?;
        GossipSimulation::build(
            config,
            initial_values,
            master_seed,
            FaultPlan::none(),
            AdversaryPlan::none(),
        )
    }

    /// Creates a simulation executing the given [`FaultPlan`] (with the
    /// configuration's [`NetworkConditions`] absorbed underneath it) — the
    /// entry point of the fault-injection lab. With [`FaultPlan::none`] this
    /// is exactly [`GossipSimulation::try_new`].
    ///
    /// # Errors
    ///
    /// Everything [`GossipSimulation::try_new`] rejects, plus
    /// [`SimConfigError::Faults`] for a malformed schedule.
    pub fn with_faults(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
    ) -> Result<Self, SimConfigError> {
        config.validate(initial_values)?;
        GossipSimulation::build(
            config,
            initial_values,
            master_seed,
            plan,
            AdversaryPlan::none(),
        )
    }

    /// Creates a simulation executing both a [`FaultPlan`] and a stateful
    /// [`AdversaryPlan`] — the Byzantine adversary lab. With both plans
    /// empty this is exactly [`GossipSimulation::try_new`].
    ///
    /// # Errors
    ///
    /// Everything [`GossipSimulation::with_faults`] rejects, plus
    /// [`SimConfigError::Adversary`] for a malformed adversary plan.
    pub fn with_adversary(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
        adversary: AdversaryPlan,
    ) -> Result<Self, SimConfigError> {
        config.validate(initial_values)?;
        GossipSimulation::build(config, initial_values, master_seed, plan, adversary)
    }

    fn build(
        config: SimulationConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
        adversary_plan: AdversaryPlan,
    ) -> Result<Self, SimConfigError> {
        config
            .conditions
            .validate()
            .map_err(|_| SimConfigError::InvalidConditions {
                message_loss: config.conditions.message_loss,
                crash_fraction: config.conditions.crash_fraction,
            })?;
        let plan = plan.absorb_conditions(config.conditions);
        plan.validate()?;
        adversary_plan.validate()?;
        let mut arena = NodeArena::new();
        let mut initial_ids = Vec::with_capacity(initial_values.len());
        for &v in initial_values {
            initial_ids.push(arena.insert(|id| ProtocolNode::new(id, config.protocol, v)));
        }
        let seeds = SeedSequence::new(master_seed);
        let sampler = instantiate_sampler(config.sampler, &initial_ids, &seeds)?;
        let injector = Box::new(PlanInjector::new(
            plan,
            seeds.seed_for_labeled(0, crate::sampling::FAULTS_STREAM),
        ));
        let adversary = Adversary::new(
            adversary_plan,
            seeds.seed_for_labeled(0, crate::sampling::ADVERSARY_STREAM),
            &initial_ids,
        );
        let mut sim = GossipSimulation {
            config,
            arena,
            cycle: 0,
            rng: seeds.rng_for_run(0),
            sampler,
            injector,
            adversary,
            seeds,
            elections: 0,
            last_size_estimate: None,
            scratch_pushes: Vec::new(),
            scratch_replies: Vec::new(),
            telemetry: TelemetrySink::new(TelemetryConfig::disabled()),
            clock: VirtualClock::new(),
        };
        sim.elect_leaders();
        Ok(sim)
    }

    /// The realised adversary (colluding set and per-epoch captures) — the
    /// test suites inspect it to cross-check which nodes are lying.
    pub fn adversary(&self) -> &Adversary {
        &self.adversary
    }

    /// Installs an observability configuration (flight recorder, metrics,
    /// convergence watchdog). Call before running; the default is
    /// [`TelemetryConfig::disabled`], whose trajectory is pinned
    /// bit-identical to the pre-telemetry engine. Recording consumes no
    /// randomness, so enabling it never changes node estimates either.
    pub fn set_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = TelemetrySink::new(config);
        self.telemetry
            .begin_cycle(self.cycle as u64, self.clock.now_ms());
    }

    /// Drains the flight recorder into canonical trace order (post-hoc
    /// export path — runners and tests only, never protocol code).
    pub fn drain_trace(&mut self) -> Vec<Event> {
        self.telemetry.drain_events() // lint-allow(observer-effect): post-hoc export accessor for runners/tests, not protocol logic
    }

    /// Events discarded because the flight-recorder ring was full; drain
    /// per cycle (or raise the capacity) to keep this at zero.
    pub fn dropped_trace_events(&self) -> u64 {
        self.telemetry.dropped_events() // lint-allow(observer-effect): post-hoc export accessor for runners/tests, not protocol logic
    }

    /// The convergence watchdog's current verdict, if one is configured.
    pub fn watchdog_verdict(&self) -> Option<WatchdogVerdict> {
        self.telemetry.watchdog_verdict() // lint-allow(observer-effect): post-hoc diagnosis accessor for runners/tests, not protocol logic
    }

    /// Verdict transitions logged by the convergence watchdog.
    pub fn watchdog_diagnoses(&self) -> &[gossip_telemetry::Diagnosis] {
        self.telemetry.diagnoses() // lint-allow(observer-effect): post-hoc diagnosis accessor for runners/tests, not protocol logic
    }

    /// The accumulated telemetry counters (post-hoc readout).
    pub fn telemetry_metrics(&self) -> &gossip_telemetry::MetricsRegistry {
        self.telemetry.metrics() // lint-allow(observer-effect): post-hoc metrics accessor for runners/tests, not protocol logic
    }

    /// The peer-sampling configuration this simulation draws partners from
    /// (surfaced by report tables so CSV artifacts distinguish
    /// complete-graph from overlay-constrained runs).
    pub fn sampler_config(&self) -> SamplerConfig {
        self.sampler.config()
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.arena.len()
    }

    /// Number of allocated node slots (live + reclaimable). Bounded by the
    /// peak number of simultaneously live nodes plus the joins that precede
    /// the same cycle's departures — the churn tests pin this.
    pub fn slot_capacity(&self) -> usize {
        self.arena.slot_capacity()
    }

    /// Number of dead slots currently awaiting reuse by the free list.
    pub fn free_slot_count(&self) -> usize {
        self.arena.free_slots()
    }

    /// The current cycle index.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The most recent pooled network-size estimate (mean over reporting
    /// nodes of the last completed epoch), if any epoch has completed.
    pub fn last_size_estimate(&self) -> Option<f64> {
        self.last_size_estimate
    }

    /// Read access to a node. Returns `None` for departed nodes and for
    /// stale identifiers whose slot has since been reassigned.
    pub fn node(&self, id: NodeId) -> Option<&ProtocolNode> {
        self.arena.get(id)
    }

    /// Current default-instance estimates of all live nodes.
    pub fn estimates(&self) -> Vec<f64> {
        self.arena
            .live_slots()
            .iter()
            .filter_map(|&slot| self.arena.node_at_slot(slot))
            .filter_map(|node| node.estimate())
            .collect()
    }

    /// Current local attribute values of all live nodes.
    pub fn local_values(&self) -> Vec<f64> {
        self.arena
            .live_slots()
            .iter()
            .filter_map(|&slot| self.arena.node_at_slot(slot))
            .map(|node| node.local_value())
            .collect()
    }

    /// Updates the local attribute value of a node (takes effect at the next
    /// epoch restart, as in the paper's adaptive protocol).
    pub fn set_local_value(&mut self, id: NodeId, value: f64) {
        if let Some(node) = self.arena.get_mut(id) {
            node.set_local_value(value);
        }
    }

    /// Adds a node with the given local value, reusing a reclaimed slot when
    /// one is free. The node joins passively: it is told the next epoch
    /// identifier and the number of cycles left until that epoch starts,
    /// exactly as in Section 4.
    pub fn add_node(&mut self, local_value: f64) -> NodeId {
        let cycles_per_epoch = self.config.protocol.cycles_per_epoch() as usize;
        let cycle_in_epoch = self.cycle % cycles_per_epoch;
        let cycles_until_start = (cycles_per_epoch - cycle_in_epoch) as u32;
        let next_epoch = (self.cycle / cycles_per_epoch) as u64 + 1;
        let protocol = self.config.protocol;
        let id = self.arena.insert(|id| {
            ProtocolNode::joining(id, protocol, local_value, next_epoch, cycles_until_start)
        });
        if self.telemetry.events_enabled() {
            self.telemetry.node_joined(u64::from(id.as_u32()));
        }
        let GossipSimulation { sampler, arena, .. } = self;
        sampler.on_join(id, &ArenaDirectory { arena });
        id
    }

    /// Removes a specific node (crash or departure). Returns `true` if the
    /// node was live; stale identifiers from a slot's previous occupant are
    /// rejected.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        if self.arena.remove(id) {
            self.sampler.on_depart(id);
            if self.telemetry.events_enabled() {
                self.telemetry.node_departed(u64::from(id.as_u32()));
            }
            true
        } else {
            false
        }
    }

    /// Removes `count` uniformly random live nodes (used by churn schedules
    /// and crash experiments). Returns the number actually removed.
    pub fn remove_random_nodes(&mut self, count: usize) -> usize {
        let mut removed = 0;
        for _ in 0..count {
            if self.arena.is_empty() {
                break;
            }
            let position = self.rng.gen_range(0..self.arena.len());
            let slot = self.arena.live_slots()[position];
            let id = self.arena.id_at_slot(slot);
            self.arena.remove_live_at(position);
            self.sampler.on_depart(id);
            if self.telemetry.events_enabled() {
                self.telemetry.node_departed(u64::from(id.as_u32()));
            }
            removed += 1;
        }
        removed
    }

    /// Runs one full protocol cycle and returns its summary.
    ///
    /// The per-exchange node stepping is [`ExchangeCore`] — the same
    /// implementation the event-driven and sharded engines drive. This
    /// reference engine deliberately runs the full message path
    /// ([`ExchangeCore::begin`]/[`ExchangeCore::respond`]/
    /// [`ExchangeCore::complete`], the code a live transport exercises)
    /// rather than the fused fast path; the loss-draw order and arithmetic
    /// are bit-identical to the pre-extraction engine, which
    /// `tests/determinism.rs` pins.
    pub fn run_cycle(&mut self) -> CycleSummary {
        let mut tally = ExchangeTally::default();
        let mut exchanges_blocked = 0usize;

        // Fault lab first: enter the cycle, fire any scheduled crash burst
        // (victims drawn through the ordinary churn path, so arena free
        // lists and sampler notifications behave exactly as under churn),
        // then apply adversarial value injections. Under the empty plan all
        // of this is a no-op that consumes no randomness.
        self.injector.begin_cycle(self.cycle);
        let crash_victims = self.injector.crash_count(self.arena.len());
        if crash_victims > 0 {
            self.remove_random_nodes(crash_victims);
        }
        // The stateful adversary next: colluders re-assert their lie at the
        // start of every active cycle (this is what distinguishes them from
        // the one-shot ValueInjection — dilution never wins while the attack
        // runs), and captured counting-instance leaders re-assert the false
        // state into the instances they lead. All of it is pure — no RNG —
        // so the empty plan stays bit-identical.
        {
            let GossipSimulation {
                adversary,
                arena,
                cycle,
                telemetry,
                ..
            } = self;
            let record = telemetry.events_enabled();
            if let Some(value) = adversary.lie_at(*cycle) {
                for &id in adversary.colluders() {
                    if let Some(node) = arena.get_mut(id) {
                        node.corrupt_estimate(value);
                        if record {
                            telemetry.value_corrupted(u64::from(id.as_u32()));
                        }
                    }
                }
            }
            if let Some(state) = adversary.captured_state_at(*cycle) {
                for &id in adversary.captured() {
                    if let Some(node) = arena.get_mut(id) {
                        node.corrupt_instance(InstanceTag::from_leader(id), state);
                    }
                }
            }
        }
        // One corruption per node per cycle: a node the adversary is actively
        // lying through keeps the adversary's value — the injection would be
        // overwritten at the next cycle start anyway, and skipping it keeps
        // the composed labs from double-corrupting (pinned by a regression
        // test in tests/byzantine.rs).
        for (pos, value) in self.injector.corruptions(self.arena.len()) {
            let slot = self.arena.live_slots()[pos];
            let id = self.arena.id_at_slot(slot);
            if self.adversary.overrides_injection(self.cycle, id) {
                continue;
            }
            if let Some(node) = self.arena.node_at_slot_mut(slot) {
                node.corrupt_estimate(value);
                if self.telemetry.events_enabled() {
                    self.telemetry.value_corrupted(u64::from(id.as_u32()));
                }
            }
        }
        let loss = self.injector.loss_probability();

        // Overlay maintenance next, in lockstep with the aggregation cycle:
        // NEWSCAST exchanges and ages its views here (from its own labelled
        // seed stream — the engine's schedule draws below are untouched, so
        // the uniform configuration stays bit-identical to the pre-sampler
        // engine).
        {
            let GossipSimulation { sampler, arena, .. } = self;
            sampler.begin_cycle(&ArenaDirectory { arena });
        }

        // Active phase: every live node initiates one exchange, in random
        // order (the GETPAIR_SEQ schedule realised by a distributed system).
        let mut order = self.arena.live_slots().to_vec();
        order.shuffle(&mut self.rng);
        for initiator_slot in order {
            if self.arena.node_at_slot(initiator_slot).is_none() {
                continue;
            }
            let peer_id = {
                let GossipSimulation {
                    sampler,
                    arena,
                    rng,
                    ..
                } = self;
                let initiator_pos = arena
                    .live_pos_of_slot(initiator_slot)
                    // lint-allow(unwrap): initiator slot comes from this cycle's live snapshot
                    .expect("checked above") as usize;
                sample_live_peer(
                    sampler.as_mut(),
                    &ArenaDirectory { arena },
                    initiator_pos,
                    rng,
                )
            };
            let Some(peer_id) = peer_id else {
                continue;
            };
            // The fault lab vetoes the contact attempt when the link is dead
            // or a partition separates the endpoints — the exchange simply
            // does not happen, and the failed contact is reported to the
            // peer-sampling layer exactly like a contact with a dead node,
            // so cached views (NEWSCAST) tail-drop unreachable neighbours
            // and heal around dead links and partitions.
            let initiator_id = self.arena.id_at_slot(initiator_slot);
            if self.injector.link_blocked(initiator_id, peer_id) {
                self.sampler.peer_failed(initiator_id, peer_id);
                exchanges_blocked += 1;
                if self.telemetry.events_enabled() {
                    self.telemetry.exchange_vetoed(
                        u64::from(initiator_id.as_u32()),
                        u64::from(peer_id.as_u32()),
                    );
                }
                continue;
            }
            let peer_slot = self.arena.slot_of(peer_id).expect("sampled peer is live"); // lint-allow(unwrap): sampler returned it from the live directory this cycle
            let arena = &mut self.arena;
            let rng = &mut self.rng;
            let initiator = arena
                .node_at_slot_mut(initiator_slot)
                // lint-allow(unwrap): initiator slot comes from this cycle's live snapshot
                .expect("checked above");
            if !ExchangeCore::begin(initiator, peer_id, &mut self.scratch_pushes) {
                continue;
            }
            tally.exchanges += 1;
            let seq = (tally.exchanges - 1) as u64;
            if self.telemetry.events_enabled() {
                self.telemetry.exchange_begun(
                    seq,
                    u64::from(initiator_id.as_u32()),
                    u64::from(peer_id.as_u32()),
                );
            }
            self.scratch_replies.clear();
            let mut lost = || loss > 0.0 && rng.gen_bool(loss);
            let peer = arena
                .node_at_slot_mut(peer_slot)
                // lint-allow(unwrap): peer_slot resolved from a live id above; no churn mid-cycle
                .expect("live within cycle");
            let lost_before = tally.messages_lost;
            ExchangeCore::respond(
                peer,
                &self.scratch_pushes,
                &mut self.scratch_replies,
                &mut lost,
                &mut tally,
            );
            let initiator = arena
                .node_at_slot_mut(initiator_slot)
                // lint-allow(unwrap): initiator slot comes from this cycle's live snapshot
                .expect("checked above");
            ExchangeCore::complete(initiator, &self.scratch_replies);
            if self.telemetry.events_enabled() {
                let lost_now = tally.messages_lost - lost_before;
                for _ in 0..lost_now {
                    self.telemetry.message_lost(seq);
                }
                if lost_now == 0 {
                    self.telemetry.exchange_completed(seq);
                }
            }
        }
        let ExchangeTally {
            exchanges,
            messages_lost,
        } = tally;

        // End-of-cycle phase: epoch book-keeping on every live node.
        let mut completed_epoch = None;
        let mut epoch_estimates = Vec::new();
        let mut epoch_size_estimates = Vec::new();
        for pos in 0..self.arena.len() {
            let slot = self.arena.live_slots()[pos];
            let Some(node) = self.arena.node_at_slot_mut(slot) else {
                continue;
            };
            if let Some(result) = node.end_cycle() {
                completed_epoch = Some(result.epoch);
                if result.full_participation {
                    if let Some(estimate) = result.default_estimate() {
                        epoch_estimates.push(estimate);
                    }
                    // The defended estimator merges per-instance estimates
                    // (median-of-k / trimmed mean); the undefended one pools
                    // instance states by averaging.
                    let size = match self.config.redundancy {
                        Some(redundancy) => {
                            redundant_size_estimate_from_epoch(&result, redundancy.merge).ok()
                        }
                        None => size_estimation::size_estimate_from_epoch(&result),
                    };
                    if let Some(size) = size {
                        epoch_size_estimates.push(size);
                    }
                }
            }
        }

        if !epoch_size_estimates.is_empty() {
            let mean = epoch_size_estimates.iter().sum::<f64>() / epoch_size_estimates.len() as f64;
            self.last_size_estimate = Some(mean);
        }

        // A completed epoch means the next cycle starts a new epoch: re-run
        // the leader election for the counting instances.
        if let Some(epoch) = completed_epoch {
            if self.telemetry.events_enabled() {
                self.telemetry.epoch_restarted(epoch);
            }
            self.elect_leaders();
        }

        // Per-cycle summary statistics in one streaming pass (Welford) —
        // at the paper's 10⁵-node scale the old collect-then-two-pass path
        // allocated an 800 kB vector and walked it twice every cycle.
        let mut stats = OnlineStats::new();
        for &slot in self.arena.live_slots() {
            if let Some(estimate) = self
                .arena
                .node_at_slot(slot)
                .and_then(|node| node.estimate())
            {
                stats.push(estimate);
            }
        }

        let summary = CycleSummary {
            cycle: self.cycle,
            live_nodes: self.arena.len(),
            exchanges,
            messages_lost,
            exchanges_blocked,
            estimate_variance: stats.sample_variance(),
            estimate_mean: stats.mean(),
            completed_epoch,
            epoch_estimates,
            epoch_size_estimates,
        };
        self.telemetry
            .observe_variance(self.cycle as u64, summary.estimate_variance);
        self.cycle += 1;
        // Advance virtual time and open the next cycle's recording context,
        // so churn applied between run_cycle calls lands in the cycle-start
        // band of the cycle it affects.
        self.clock.advance(VIRTUAL_CYCLE_MS);
        self.telemetry
            .begin_cycle(self.cycle as u64, self.clock.now_ms());
        summary
    }

    /// Runs `cycles` consecutive cycles, returning all summaries.
    pub fn run(&mut self, cycles: usize) -> Vec<CycleSummary> {
        (0..cycles).map(|_| self.run_cycle()).collect()
    }

    fn elect_leaders(&mut self) {
        // A new epoch starts: whatever leaders the adversary captured last
        // epoch died with their instances.
        self.adversary.begin_epoch();
        if let Some(redundancy) = self.config.redundancy {
            self.elect_redundant_leaders(redundancy.instances);
            return;
        }
        let Some(policy) = self.config.leader_policy else {
            return;
        };
        let previous = self.last_size_estimate;
        let mut any_leader = false;
        for pos in 0..self.arena.len() {
            let slot = self.arena.live_slots()[pos];
            let id = self.arena.id_at_slot(slot);
            if let Some(node) = self.arena.node_at_slot_mut(slot) {
                if size_estimation::elect_leader(node, policy, previous, &mut self.rng) {
                    any_leader = true;
                    self.adversary.observe_leader(id);
                    if self.telemetry.events_enabled() {
                        self.telemetry.leader_elected(u64::from(id.as_u32()));
                    }
                }
            }
        }
        // Guarantee progress: if the random draw elected nobody (possible for
        // small networks and small probabilities), promote one deterministic
        // leader so the epoch still produces a size estimate.
        if !any_leader {
            if let Some(&slot) = self.arena.live_slots().first() {
                let id = self.arena.id_at_slot(slot);
                if let Some(node) = self.arena.node_at_slot_mut(slot) {
                    node.start_led_instance(
                        aggregate_core::InstanceTag::from_leader(node.id()),
                        1.0,
                    );
                    self.adversary.observe_leader(id);
                    if self.telemetry.events_enabled() {
                        self.telemetry.leader_elected(u64::from(id.as_u32()));
                    }
                }
            }
        }
    }

    /// The redundant-instance election: exactly `min(k, live)` *distinct*
    /// leaders per epoch, drawn by a partial Fisher–Yates over the live
    /// directory from the dedicated `redundancy-leaders` stream — so the
    /// defense's randomness never perturbs the schedule draws, and runs
    /// without the defense are untouched.
    fn elect_redundant_leaders(&mut self, instances: usize) {
        let live = self.arena.len();
        if live == 0 {
            return;
        }
        let k = instances.min(live);
        let mut rng = self
            .seeds
            .rng_for_labeled(self.elections, crate::sampling::REDUNDANCY_STREAM);
        self.elections += 1;
        let mut positions: Vec<u32> = (0..live as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..live);
            positions.swap(i, j);
        }
        for &pos in &positions[..k] {
            let slot = self.arena.live_slots()[pos as usize];
            let id = self.arena.id_at_slot(slot);
            if let Some(node) = self.arena.node_at_slot_mut(slot) {
                node.start_led_instance(
                    InstanceTag::from_leader(id),
                    CountInit::initial_value(true),
                );
                self.adversary.observe_leader(id);
                if self.telemetry.events_enabled() {
                    self.telemetry.leader_elected(u64::from(id.as_u32()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::config::LateJoinPolicy;

    fn averaging_config(cycles_per_epoch: u32) -> SimulationConfig {
        SimulationConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(cycles_per_epoch)
                .build()
                .unwrap(),
        )
    }

    fn counting_config(cycles_per_epoch: u32, policy: LeaderPolicy) -> SimulationConfig {
        SimulationConfig {
            protocol: ProtocolConfig::builder()
                .cycles_per_epoch(cycles_per_epoch)
                .late_join(LateJoinPolicy::FixedState(0.0))
                .build()
                .unwrap(),
            conditions: NetworkConditions::reliable(),
            leader_policy: Some(policy),
            sampler: SamplerConfig::UniformComplete,
            redundancy: None,
        }
    }

    #[test]
    fn estimates_converge_to_the_true_average() {
        let values: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = GossipSimulation::new(averaging_config(30), &values, 1);
        let summaries = sim.run(20);
        let final_variance = summaries.last().unwrap().estimate_variance;
        assert!(final_variance < 1e-4, "variance {final_variance} too large");
        assert!((summaries.last().unwrap().estimate_mean - true_mean).abs() < 1e-6);
        assert_eq!(sim.live_count(), 500);
        assert_eq!(sim.cycle(), 20);
    }

    #[test]
    fn mean_is_preserved_without_failures() {
        let values: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = GossipSimulation::new(averaging_config(50), &values, 3);
        for summary in sim.run(10) {
            assert!(
                (summary.estimate_mean - true_mean).abs() < 1e-9,
                "cycle {}: mean drifted to {}",
                summary.cycle,
                summary.estimate_mean
            );
            assert_eq!(summary.exchanges, 200);
            assert_eq!(summary.messages_lost, 0);
        }
    }

    #[test]
    fn variance_reduction_per_cycle_matches_the_paper_rate() {
        // The engine realises GETPAIR_SEQ, so the per-cycle reduction should
        // hover around 1/(2*sqrt(e)) ≈ 0.303 on a complete overlay.
        let values: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64).collect();
        let mut sim = GossipSimulation::new(averaging_config(100), &values, 7);
        let summaries = sim.run(8);
        let mut factors = Vec::new();
        for pair in summaries.windows(2) {
            if pair[0].estimate_variance > 1e-12 {
                factors.push(pair[1].estimate_variance / pair[0].estimate_variance);
            }
        }
        let mean_factor = factors.iter().sum::<f64>() / factors.len() as f64;
        assert!(
            (mean_factor - aggregate_core::theory::seq_rate()).abs() < 0.06,
            "mean per-cycle reduction {mean_factor}"
        );
    }

    #[test]
    fn epoch_completion_reports_converged_estimates_and_restarts() {
        let values = vec![0.0, 10.0, 20.0, 30.0];
        let mut sim = GossipSimulation::new(averaging_config(10), &values, 5);
        let mut epoch_seen = false;
        for summary in sim.run(10) {
            if let Some(epoch) = summary.completed_epoch {
                assert_eq!(epoch, 0);
                assert_eq!(summary.epoch_estimates.len(), 4);
                for estimate in &summary.epoch_estimates {
                    assert!((estimate - 15.0).abs() < 0.5);
                }
                epoch_seen = true;
            }
        }
        assert!(epoch_seen, "an epoch must complete after 10 cycles");
    }

    #[test]
    fn message_loss_slows_but_does_not_prevent_convergence() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let mut reliable = GossipSimulation::new(averaging_config(100), &values, 11);
        let mut lossy = GossipSimulation::new(
            SimulationConfig {
                conditions: NetworkConditions::with_message_loss(0.2),
                ..averaging_config(100)
            },
            &values,
            11,
        );
        let reliable_summaries = reliable.run(15);
        let lossy_summaries = lossy.run(15);
        let reliable_var = reliable_summaries.last().unwrap().estimate_variance;
        let lossy_var = lossy_summaries.last().unwrap().estimate_variance;
        assert!(lossy_summaries.iter().any(|s| s.messages_lost > 0));
        assert!(
            lossy_var < 1.0,
            "lossy network still converges, got {lossy_var}"
        );
        assert!(
            reliable_var <= lossy_var * 10.0,
            "reliable should not be dramatically worse"
        );
    }

    #[test]
    fn joining_nodes_wait_for_the_next_epoch() {
        let values = vec![5.0; 20];
        let mut sim = GossipSimulation::new(averaging_config(6), &values, 13);
        sim.run(2);
        let newcomer = sim.add_node(500.0);
        assert_eq!(sim.live_count(), 21);
        // During the remainder of epoch 0 the newcomer never contaminates the
        // running average (all veterans hold exactly 5.0).
        for summary in sim.run(4) {
            if summary.completed_epoch.is_some() {
                for estimate in &summary.epoch_estimates {
                    assert!((estimate - 5.0).abs() < 1e-9);
                }
            }
        }
        // In the next epoch the newcomer participates and the average moves.
        let summaries = sim.run(6);
        let completed: Vec<_> = summaries
            .iter()
            .filter(|s| s.completed_epoch.is_some())
            .collect();
        assert!(!completed.is_empty());
        let estimates = &completed.last().unwrap().epoch_estimates;
        let expected = (5.0 * 20.0 + 500.0) / 21.0;
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!(
            (mean - expected).abs() < 1e-6,
            "epoch mean {mean} must equal the new true average {expected}"
        );
        for estimate in estimates {
            // Six cycles of convergence leave a visible spread, but every
            // node must already be in the right neighbourhood.
            assert!(
                (estimate - expected).abs() < 25.0,
                "estimate {estimate} should approach {expected}"
            );
        }
        assert!(sim.node(newcomer).is_some());
    }

    #[test]
    fn node_removal_shrinks_the_live_set() {
        let values = vec![1.0; 10];
        let mut sim = GossipSimulation::new(averaging_config(5), &values, 17);
        assert!(sim.remove_node(NodeId::new(3)));
        assert!(!sim.remove_node(NodeId::new(3)));
        assert_eq!(sim.live_count(), 9);
        assert_eq!(sim.remove_random_nodes(4), 4);
        assert_eq!(sim.live_count(), 5);
        assert!(sim.node(NodeId::new(3)).is_none());
        // The simulation keeps running after removals.
        let summary = sim.run_cycle();
        assert_eq!(summary.live_nodes, 5);
    }

    #[test]
    fn size_estimation_produces_accurate_epoch_estimates() {
        let n = 400;
        let values = vec![0.0; n];
        let mut sim = GossipSimulation::new(
            counting_config(25, LeaderPolicy::Fixed { probability: 0.01 }),
            &values,
            19,
        );
        let summaries = sim.run(25);
        let last = summaries.last().unwrap();
        assert_eq!(last.completed_epoch, Some(0));
        assert!(
            !last.epoch_size_estimates.is_empty(),
            "someone must report a size estimate"
        );
        let mean_estimate =
            last.epoch_size_estimates.iter().sum::<f64>() / last.epoch_size_estimates.len() as f64;
        assert!(
            (mean_estimate - n as f64).abs() < n as f64 * 0.05,
            "size estimate {mean_estimate} should be ≈ {n}"
        );
        assert!(sim.last_size_estimate().is_some());
    }

    #[test]
    fn set_local_value_changes_the_next_epoch_result() {
        let values = vec![10.0; 8];
        let mut sim = GossipSimulation::new(averaging_config(4), &values, 23);
        for i in 0..8 {
            sim.set_local_value(NodeId::new(i), 30.0);
        }
        // First epoch still reports the old average (10), the second the new.
        let all: Vec<CycleSummary> = sim.run(8);
        let epochs: Vec<&CycleSummary> =
            all.iter().filter(|s| s.completed_epoch.is_some()).collect();
        assert_eq!(epochs.len(), 2);
        assert!((epochs[0].epoch_estimates[0] - 10.0).abs() < 1e-9);
        assert!((epochs[1].epoch_estimates[0] - 30.0).abs() < 1e-9);
        assert_eq!(sim.local_values(), vec![30.0; 8]);
    }

    #[test]
    fn departed_slots_are_reused_and_stale_ids_stay_dead() {
        let values = vec![1.0; 10];
        let mut sim = GossipSimulation::new(averaging_config(5), &values, 41);
        let stale = NodeId::new(4);
        assert!(sim.remove_node(stale));
        assert_eq!(sim.free_slot_count(), 1);
        let newcomer = sim.add_node(2.0);
        // The join reclaimed the freed slot instead of growing the arena…
        assert_eq!(sim.slot_capacity(), 10);
        assert_eq!(sim.free_slot_count(), 0);
        // …and the old identifier does not alias the new occupant.
        assert_ne!(stale, newcomer);
        assert!(sim.node(stale).is_none());
        assert!(!sim.remove_node(stale));
        assert!(sim.node(newcomer).is_some());
        assert_eq!(sim.live_count(), 10);
    }

    #[test]
    fn sustained_churn_keeps_the_arena_bounded() {
        let values = vec![0.0; 200];
        let mut sim = GossipSimulation::new(averaging_config(10), &values, 43);
        for _ in 0..50 {
            for _ in 0..5 {
                sim.add_node(0.0);
            }
            assert_eq!(sim.remove_random_nodes(5), 5);
            sim.run_cycle();
        }
        assert_eq!(sim.live_count(), 200);
        // The leaky engine would sit at 450 slots here; the free list keeps
        // the arena at peak live + the joins preceding the departures.
        assert!(
            sim.slot_capacity() <= 205,
            "slot capacity {} must stay bounded",
            sim.slot_capacity()
        );
    }

    #[test]
    fn node_added_exactly_at_an_epoch_start_joins_that_epochs_successor() {
        // 6 cycles per epoch; after 6 cycles the next run_cycle starts epoch 1.
        let values = vec![5.0; 20];
        let mut sim = GossipSimulation::new(averaging_config(6), &values, 47);
        sim.run(6);
        assert_eq!(sim.cycle() % 6, 0, "cycle 6 is exactly an epoch boundary");
        let newcomer = sim.add_node(500.0);
        // The newcomer waits out the entire epoch 1 without contaminating it…
        for summary in sim.run(6) {
            if summary.completed_epoch.is_some() {
                for estimate in &summary.epoch_estimates {
                    assert!((estimate - 5.0).abs() < 1e-9);
                }
            }
        }
        // …and participates from epoch 2 on, shifting the epoch average.
        let expected = (5.0 * 20.0 + 500.0) / 21.0;
        let summaries = sim.run(6);
        let completed: Vec<_> = summaries
            .iter()
            .filter(|s| s.completed_epoch.is_some())
            .collect();
        assert_eq!(completed.len(), 1);
        let estimates = &completed[0].epoch_estimates;
        assert_eq!(estimates.len(), 21);
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!(
            (mean - expected).abs() < 1e-6,
            "epoch mean {mean} must equal the new true average {expected}"
        );
        assert!(sim.node(newcomer).is_some());
    }

    #[test]
    fn removing_the_sole_leader_mid_epoch_does_not_wedge_size_estimation() {
        // Probability 0 forces the deterministic fallback: exactly one leader
        // (the first live node) carries the counting instance.
        let n = 60;
        let values = vec![0.0; n];
        let mut sim = GossipSimulation::new(
            counting_config(20, LeaderPolicy::Fixed { probability: 0.0 }),
            &values,
            53,
        );
        // Kill the elected leader mid-epoch. Its share of the counting mass
        // dies with it, so this epoch's estimate is biased — but the engine
        // must re-elect at the restart and keep producing estimates.
        sim.run(5);
        assert!(sim.remove_node(NodeId::new(0)));
        let mut completed_epochs = 0;
        for summary in sim.run(60) {
            if summary.completed_epoch.is_some() {
                completed_epochs += 1;
            }
        }
        assert!(completed_epochs >= 2, "epochs must keep completing");
        let estimate = sim
            .last_size_estimate()
            .expect("size estimation must not wedge after the leader dies");
        assert!(
            estimate.is_finite() && estimate > 0.0,
            "estimate {estimate} must stay usable"
        );
        // Epochs after the leader's death count the surviving population.
        assert!(
            (estimate - (n - 1) as f64).abs() < (n - 1) as f64 * 0.25,
            "estimate {estimate} should approximate the surviving {}",
            n - 1
        );
    }

    #[test]
    fn try_new_rejects_invalid_configurations_with_typed_errors() {
        let config = averaging_config(10);
        assert_eq!(
            GossipSimulation::try_new(config, &[], 1).err(),
            Some(SimConfigError::ZeroNodes)
        );
        assert!(matches!(
            GossipSimulation::try_new(config, &[1.0, f64::NAN], 1).err(),
            Some(SimConfigError::NonFiniteInitialValue { index: 1, .. })
        ));
        assert!(matches!(
            GossipSimulation::try_new(config, &[1.0, f64::NEG_INFINITY, 2.0], 1).err(),
            Some(SimConfigError::NonFiniteInitialValue { index: 1, .. })
        ));
        let bad_conditions = SimulationConfig {
            conditions: NetworkConditions::with_message_loss(1.5),
            ..config
        };
        assert!(matches!(
            GossipSimulation::try_new(bad_conditions, &[1.0], 1).err(),
            Some(SimConfigError::InvalidConditions { .. })
        ));
        // A valid configuration behaves exactly like the permissive
        // constructor (same seed, same trajectory).
        let mut checked = GossipSimulation::try_new(config, &[1.0, 5.0], 7).unwrap();
        let mut plain = GossipSimulation::new(config, &[1.0, 5.0], 7);
        assert_eq!(checked.run(3), plain.run(3));
    }

    #[test]
    fn empty_fault_plan_is_identical_to_the_plain_constructor() {
        let values: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let config = averaging_config(10);
        let mut plain = GossipSimulation::new(config, &values, 7);
        let mut faulted =
            GossipSimulation::with_faults(config, &values, 7, FaultPlan::none()).unwrap();
        assert_eq!(plain.run(12), faulted.run(12));
    }

    #[test]
    fn dead_links_block_exchanges_but_the_protocol_still_converges() {
        let values: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let plan = FaultPlan::with_link_failure(0.2);
        let mut sim =
            GossipSimulation::with_faults(averaging_config(100), &values, 11, plan).unwrap();
        let summaries = sim.run(25);
        let blocked: usize = summaries.iter().map(|s| s.exchanges_blocked).sum();
        let attempted: usize = summaries.iter().map(|s| s.exchanges).sum::<usize>() + blocked;
        let blocked_rate = blocked as f64 / attempted as f64;
        assert!(
            (blocked_rate - 0.2).abs() < 0.03,
            "blocked rate {blocked_rate} should track the 20% dead-link probability"
        );
        let last = summaries.last().unwrap();
        assert!(
            last.estimate_variance < 1e-3,
            "graceful degradation: still converging, variance {}",
            last.estimate_variance
        );
        assert!((last.estimate_mean - true_mean).abs() < 1e-9);
    }

    #[test]
    fn a_partition_splits_convergence_and_healing_restores_the_global_mean() {
        // Two value populations: while partitioned, each side converges to
        // its own mean, so the whole-network variance plateaus above zero;
        // healing lets the halves re-merge toward the global average.
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let plan = FaultPlan::with_partition(0, 10, 0.5);
        let mut sim =
            GossipSimulation::with_faults(averaging_config(1_000), &values, 13, plan).unwrap();
        let during = sim.run(10);
        let split_var = during.last().unwrap().estimate_variance;
        assert!(
            split_var > 1.0,
            "two isolated sides cannot reach consensus (variance {split_var})"
        );
        assert!(during.iter().all(|s| s.exchanges_blocked > 0));
        let healed = sim.run(25);
        let last = healed.last().unwrap();
        assert_eq!(last.exchanges_blocked, 0);
        assert!(
            last.estimate_variance < 1e-3,
            "healed network must converge, variance {}",
            last.estimate_variance
        );
        assert!((last.estimate_mean - true_mean).abs() < 1e-9);
    }

    #[test]
    fn value_injection_perturbs_the_mean_and_the_protocol_dilutes_it() {
        let values = vec![1.0; 200];
        let plan = FaultPlan {
            injections: vec![gossip_faults::ValueInjection {
                cycle: 2,
                fraction: 0.1,
                value: 1_001.0,
            }],
            ..FaultPlan::default()
        };
        let mut sim =
            GossipSimulation::with_faults(averaging_config(100), &values, 17, plan).unwrap();
        sim.run(2);
        let poisoned = sim.run_cycle();
        // 20 nodes now push mass 1000 each into the averaging: the mean
        // jumps to ≈ 1 + 20·1000/200 = 101.
        assert!(
            poisoned.estimate_mean > 50.0,
            "injection must move the mean, got {}",
            poisoned.estimate_mean
        );
        let later = sim.run(20).pop().unwrap();
        // Mass conservation: the corrupted mass stays in the system and the
        // network converges *to the corrupted average* — the attack is
        // diluted into consensus, not amplified.
        assert!(
            later.estimate_variance < 1e-3,
            "network must re-converge, variance {}",
            later.estimate_variance
        );
        assert!((later.estimate_mean - poisoned.estimate_mean).abs() < 1.0);
    }

    #[test]
    fn dead_links_compose_with_the_newscast_sampler() {
        // The fault lab must work through a partial view too: a vetoed
        // contact is reported as a failed contact (tail-drop eviction of
        // the unreachable descriptor), the blocked rate tracks the
        // dead-link probability (NEWSCAST maintenance keeps re-learning
        // descriptors, so the steady state stays near the link rate), and
        // the protocol still converges to the exact mean.
        let values: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let config = SimulationConfig {
            sampler: aggregate_core::sampler::SamplerConfig::newscast(),
            ..averaging_config(200)
        };
        let plan = FaultPlan::with_link_failure(0.2);
        let mut sim = GossipSimulation::with_faults(config, &values, 21, plan).unwrap();
        let summaries = sim.run(30);
        let blocked: usize = summaries.iter().map(|s| s.exchanges_blocked).sum();
        let attempted: usize = summaries.iter().map(|s| s.exchanges).sum::<usize>() + blocked;
        let blocked_rate = blocked as f64 / attempted as f64;
        assert!(
            (blocked_rate - 0.2).abs() < 0.05,
            "blocked rate {blocked_rate} should track the dead-link probability"
        );
        let last = summaries.last().unwrap();
        assert!(
            last.estimate_variance < 1e-6,
            "NEWSCAST + dead links must still converge, variance {}",
            last.estimate_variance
        );
        assert!((last.estimate_mean - true_mean).abs() < 1e-9);
    }

    #[test]
    fn malformed_fault_plans_are_rejected_with_typed_errors() {
        let config = averaging_config(10);
        let bad = FaultPlan::with_link_failure(1.5);
        assert!(matches!(
            GossipSimulation::with_faults(config, &[1.0, 2.0], 1, bad).err(),
            Some(SimConfigError::Faults { .. })
        ));
        let bad = FaultPlan::with_partition(5, 5, 0.5);
        assert!(matches!(
            GossipSimulation::with_faults(config, &[1.0, 2.0], 1, bad).err(),
            Some(SimConfigError::Faults { .. })
        ));
    }

    #[test]
    fn tiny_networks_do_not_panic() {
        let mut sim = GossipSimulation::new(averaging_config(3), &[1.0], 29);
        let summary = sim.run_cycle();
        assert_eq!(summary.exchanges, 0);
        assert_eq!(summary.live_nodes, 1);
        let mut empty = GossipSimulation::new(averaging_config(3), &[], 31);
        let summary = empty.run_cycle();
        assert_eq!(summary.live_nodes, 0);
    }
}
