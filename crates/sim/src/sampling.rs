//! Engine-side plumbing for the pluggable peer-sampling layer.
//!
//! The sampling *interface* ([`PeerSampler`], [`SamplerDirectory`],
//! [`SamplerConfig`]) lives in `aggregate-core`; the overlay-backed
//! implementations live in `peer-sampling`. This module supplies the glue
//! the simulation engines need:
//!
//! * [`instantiate_sampler`] — turns the serialisable [`SamplerConfig`] of a
//!   [`crate::SimulationConfig`] into a live [`PeerSampler`], deriving every
//!   internal seed from the run's master seed through *labelled* streams
//!   (`"sampler-membership"` for NEWSCAST's view-exchange randomness,
//!   `"sampler-topology"` for static-overlay generation) so the sampler's
//!   randomness never interferes with the engines' schedule/pick draws —
//!   which is what keeps the uniform configuration bit-identical to the
//!   pre-sampler engines;
//! * `ArenaDirectory` (crate-private) — the O(1) [`SamplerDirectory`] over
//!   a [`NodeArena`]'s dense live array, used by the reference engine (the
//!   sharded engine has its own directory over the global live list).

use crate::arena::NodeArena;
use crate::{SeedSequence, SimConfigError};
use aggregate_core::sampler::{PeerSampler, SamplerConfig, SamplerDirectory, UniformSampler};
use overlay_topology::NodeId;
use peer_sampling::{NewscastSampler, StaticOverlaySampler};

/// Label of the seed stream feeding a NEWSCAST sampler's internal RNG.
pub const MEMBERSHIP_STREAM: &str = "sampler-membership";

/// Label of the seed stream feeding static-overlay generation.
pub const TOPOLOGY_STREAM: &str = "sampler-topology";

/// Label of the seed stream feeding the fault-injection lab (link/partition
/// coins and adversarial victim picks). Isolated from every schedule stream,
/// so the empty fault plan leaves engine trajectories bit-identical.
pub const FAULTS_STREAM: &str = "fault-injection";

/// Label of the seed stream feeding the adversary lab's colluder-membership
/// coins. Isolated from every schedule stream, so the empty adversary plan
/// leaves engine trajectories bit-identical.
pub const ADVERSARY_STREAM: &str = "adversary-collusion";

/// Label of the seed stream electing the redundant counting-instance leaders
/// (the median-of-k defense's `k` leaders per epoch). Isolated from the
/// schedule and probabilistic-election streams.
pub const REDUNDANCY_STREAM: &str = "redundancy-leaders";

/// Builds the [`PeerSampler`] described by `config` over the initial
/// population `initial` (in directory order), deriving internal seeds from
/// `seeds` through labelled streams.
///
/// # Errors
///
/// [`SimConfigError::Sampler`] when the configuration cannot be realised
/// (invalid overlay-generator parameters, zero NEWSCAST cache).
pub fn instantiate_sampler(
    config: SamplerConfig,
    initial: &[NodeId],
    seeds: &SeedSequence,
) -> Result<Box<dyn PeerSampler + Send>, SimConfigError> {
    match config {
        SamplerConfig::UniformComplete => Ok(Box::new(UniformSampler::new())),
        SamplerConfig::StaticOverlay { topology } => {
            let sampler = StaticOverlaySampler::new(
                topology,
                initial,
                seeds.seed_for_labeled(0, TOPOLOGY_STREAM),
            )
            .map_err(|e| SimConfigError::Sampler {
                reason: e.to_string(),
            })?;
            Ok(Box::new(sampler))
        }
        SamplerConfig::Newscast { cache_size } => {
            if cache_size == 0 {
                return Err(SimConfigError::Sampler {
                    reason: "newscast cache size must be positive".to_string(),
                });
            }
            Ok(Box::new(NewscastSampler::new(
                cache_size,
                initial,
                seeds.seed_for_labeled(0, MEMBERSHIP_STREAM),
            )))
        }
        // `SamplerConfig` is non_exhaustive: reject variants this engine
        // version does not know how to build instead of silently defaulting.
        other => Err(SimConfigError::Sampler {
            reason: format!("unsupported sampler configuration {other:?}"),
        }),
    }
}

/// The reference engine's [`SamplerDirectory`]: positions are the arena's
/// dense live order, liveness is a generation-checked arena lookup — all
/// O(1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaDirectory<'a> {
    pub arena: &'a NodeArena,
}

impl SamplerDirectory for ArenaDirectory<'_> {
    fn len(&self) -> usize {
        self.arena.len()
    }

    fn id_at(&self, pos: usize) -> NodeId {
        self.arena.id_at_slot(self.arena.live_slots()[pos])
    }

    fn is_live(&self, id: NodeId) -> bool {
        self.arena.get(id).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::ProtocolConfig;
    use overlay_topology::TopologyKind;

    #[test]
    fn instantiates_every_family_and_reports_its_config() {
        let ids: Vec<NodeId> = (0..50).map(NodeId::new).collect();
        let seeds = SeedSequence::new(7);
        for config in SamplerConfig::all() {
            let sampler = instantiate_sampler(config, &ids, &seeds).unwrap();
            assert_eq!(sampler.config(), config);
        }
    }

    #[test]
    fn invalid_configurations_surface_typed_errors() {
        let ids: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let seeds = SeedSequence::new(7);
        let too_dense = SamplerConfig::StaticOverlay {
            topology: TopologyKind::RandomRegular { degree: 10 },
        };
        assert!(matches!(
            instantiate_sampler(too_dense, &ids, &seeds).err(),
            Some(SimConfigError::Sampler { .. })
        ));
        let zero_cache = SamplerConfig::Newscast { cache_size: 0 };
        assert!(matches!(
            instantiate_sampler(zero_cache, &ids, &seeds).err(),
            Some(SimConfigError::Sampler { .. })
        ));
    }

    #[test]
    fn arena_directory_exposes_live_order_and_liveness() {
        let mut arena = NodeArena::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| {
                arena.insert(|id| {
                    aggregate_core::node::ProtocolNode::new(id, ProtocolConfig::default(), i as f64)
                })
            })
            .collect();
        arena.remove(ids[1]);
        let directory = ArenaDirectory { arena: &arena };
        assert_eq!(directory.len(), 3);
        assert!(!directory.is_empty());
        assert!(directory.is_live(ids[0]));
        assert!(!directory.is_live(ids[1]));
        let listed: Vec<NodeId> = (0..directory.len()).map(|p| directory.id_at(p)).collect();
        assert!(listed.contains(&ids[0]) && listed.contains(&ids[3]));
    }
}
