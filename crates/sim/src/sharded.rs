//! Sharded, multi-threaded cycle engine with bit-deterministic results.
//!
//! The round-synchronous model of the paper is embarrassingly parallel
//! *within* a cycle: each push–pull exchange touches exactly two nodes, so
//! exchanges over disjoint node pairs commute. [`ShardedSimulation`] exploits
//! that to run million-node epochs across all cores while keeping the two
//! properties a reproduction engine cannot give up:
//!
//! 1. **Same seed + same shard count → bit-identical runs**, independent of
//!    thread scheduling.
//! 2. **Node trajectories are independent of the shard count.** The exchange
//!    schedule (initiator order, peer choice, per-exchange loss draws, churn
//!    victims, leader elections) is derived from shard-count-agnostic RNG
//!    streams over a *global* directory of live nodes, and the execution
//!    order is equivalent to applying the schedule sequentially. Running the
//!    same seed with 1 or 8 shards yields bit-identical node estimates;
//!    only cross-shard *telemetry reductions* (mean/variance merges) may
//!    differ, and only in floating-point summation order. (The sole
//!    exception: multi-instance epochs under message loss, where loss draws
//!    are consumed in instance order and led-instance tags differ across
//!    shard counts; the determinism suite pins the invariant for the
//!    loss-free and single-instance settings.)
//!
//! # How a cycle executes
//!
//! A coordinator pass derives the cycle's schedule: every live node
//! initiates once, in a shuffled order realising `GETPAIR_SEQ`, against a
//! uniformly drawn peer. Each exchange is then assigned a **round**: the
//! earliest round in which neither endpoint is used by an earlier exchange
//! (`round = 1 + max(last_round(initiator), last_round(peer))`). Within a
//! round all exchanges are node-disjoint, so they may execute concurrently
//! in any order; across rounds, barriers enforce the dependency order. The
//! result is *exactly* the state the sequential schedule produces, which is
//! what makes node values shard-count invariant.
//!
//! Each round runs as a deterministic two-phase (plus apply) protocol per
//! shard worker:
//!
//! * **phase A** — exchanges whose endpoints are both shard-local run fused
//!   ([`ExchangeCore::exchange`]); for cross-shard pairs the initiator's
//!   pushes are batched into the peer shard's mailbox (`crossbeam`
//!   channels);
//! * **phase B** — each shard drains its mailbox, sorts the batches by
//!   global sequence number (the fixed merge order) and lets the peers
//!   absorb and reply ([`ExchangeCore::respond`]); surviving replies are
//!   batched back to the initiators' shards;
//! * **phase C** — initiator shards apply the replies
//!   ([`ExchangeCore::complete`]).
//!
//! Per-cycle telemetry is accumulated in per-shard [`OnlineStats`] and
//! merged in shard order (Chan's parallel Welford update), so a million-node
//! cycle streams no per-node vectors through a single accumulator.

use crate::arena::{IdLayout, NodeArena, MAX_SHARDS};
use crate::sampling::instantiate_sampler;
use crate::soa::{self, HotStore, WordBuffer};
use crate::{SeedSequence, SimConfigError, SimulationConfig};
use aggregate_core::aggregate::CountInit;
use aggregate_core::effects::{Clock, VirtualClock};
use aggregate_core::node::{HotView, ProtocolNode};
use aggregate_core::redundancy::{redundant_size_estimate_from_epoch, MergePolicy};
use aggregate_core::sampler::{sample_live_peer, PeerSampler, SamplerConfig, SamplerDirectory};
use aggregate_core::size_estimation;
use aggregate_core::{
    AggregateKind, ExchangeCore, ExchangeScratch, ExchangeTally, GossipMessage, InstanceTag,
};
use gossip_analysis::OnlineStats;
use gossip_faults::{Adversary, AdversaryPlan, FaultInjector, FaultPlan, PlanInjector};
use gossip_telemetry::{Event, EventKind, FlightRecorder, TelemetryConfig, TelemetrySink};
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Barrier;

/// Configuration of a [`ShardedSimulation`]: the engine-agnostic simulation
/// parameters plus the shard count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedConfig {
    /// Protocol, failure and leader-election parameters (shared with the
    /// single-threaded reference engine).
    pub base: SimulationConfig,
    /// Number of shards (data partitions). Each shard owns a sub-arena of
    /// nodes and its own [`crate::arena::IdLayout`] identifier space. The
    /// shard count is part of the deterministic contract: same seed + same
    /// shard count → bit-identical runs.
    pub shards: usize,
    /// Worker threads executing the shards; `None` (the default) uses
    /// `min(shards, available cores)`. Workers are an *execution* resource,
    /// not a semantic one: any worker count produces bit-identical results
    /// for a given shard count, so the engine can saturate whatever
    /// hardware it lands on — including the degenerate single-core case,
    /// where one worker applies the schedule sequentially with fused
    /// exchanges and skips the mailbox machinery entirely.
    ///
    /// The multi-worker executor spawns its threads and mailbox channels
    /// per cycle (scoped threads cannot outlive a `run_cycle` call), a
    /// fixed setup cost of a few hundred microseconds. It is noise at the
    /// ≥10⁵-node scales this engine targets but dominates toy runs; for
    /// multicore machines driving small populations, `Some(1)` removes it.
    pub workers: Option<usize>,
}

impl ShardedConfig {
    /// Plain averaging over a reliable network with the given shard count
    /// and automatic worker selection.
    pub fn averaging(protocol: aggregate_core::ProtocolConfig, shards: usize) -> Self {
        ShardedConfig {
            base: SimulationConfig::averaging(protocol),
            shards,
            workers: None,
        }
    }

    /// Validates the configuration together with its initial population.
    ///
    /// # Errors
    ///
    /// [`SimConfigError::ZeroShards`] / [`SimConfigError::TooManyShards`] /
    /// [`SimConfigError::ZeroWorkers`] for an unusable shard or worker
    /// count, plus every check of [`SimulationConfig::validate`].
    pub fn validate(&self, initial_values: &[f64]) -> Result<(), SimConfigError> {
        if self.shards == 0 {
            return Err(SimConfigError::ZeroShards);
        }
        if self.shards > MAX_SHARDS {
            return Err(SimConfigError::TooManyShards {
                shards: self.shards,
                max: MAX_SHARDS,
            });
        }
        if self.workers == Some(0) {
            return Err(SimConfigError::ZeroWorkers);
        }
        let capacity = self.shards * IdLayout::sharded(0).max_slots();
        if initial_values.len() > capacity {
            return Err(SimConfigError::PopulationExceedsCapacity {
                nodes: initial_values.len(),
                capacity,
            });
        }
        self.base.validate(initial_values)
    }
}

/// Summary of one sharded cycle.
///
/// Unlike [`crate::CycleSummary`] this reports epoch results as streaming
/// statistics instead of raw per-node vectors — at 10⁶ nodes a single
/// epoch's estimate vector would be 8 MB per completing cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedCycleSummary {
    /// Cycle index (0-based, global).
    pub cycle: usize,
    /// Number of live nodes at the end of the cycle.
    pub live_nodes: usize,
    /// Number of push–pull exchanges initiated.
    pub exchanges: usize,
    /// Number of messages dropped by the loss model.
    pub messages_lost: usize,
    /// Number of exchange attempts vetoed by the fault lab at schedule
    /// construction (dead link or active partition between the endpoints).
    /// Always zero under the empty [`FaultPlan`].
    pub exchanges_blocked: usize,
    /// Mean of the default-instance estimates over live nodes.
    pub estimate_mean: f64,
    /// Variance of the default-instance estimates over live nodes.
    pub estimate_variance: f64,
    /// The epoch that completed at the end of this cycle, if any.
    pub completed_epoch: Option<u64>,
    /// Statistics over the converged default-instance estimates of nodes
    /// that participated in the full epoch (empty unless an epoch
    /// completed).
    pub epoch_estimates: OnlineStats,
    /// Statistics over the converged network-size estimates (empty unless an
    /// epoch completed and size estimation is enabled).
    pub epoch_size_estimates: OnlineStats,
    /// Exchanges initiated per shard this cycle — the load-balance signal
    /// recorded by the bench CSV artifacts.
    pub shard_exchanges: Vec<usize>,
}

/// One exchange of the cycle schedule.
#[derive(Debug, Clone, Copy)]
struct ScheduledExchange {
    initiator: NodeId,
    peer: NodeId,
    round: u32,
}

/// Reusable buffers of the per-cycle schedule.
#[derive(Debug, Default)]
struct ScheduleBuffers {
    /// Shuffled global positions — the initiator order.
    order: Vec<u32>,
    /// The cycle's exchanges in global sequence order.
    exchanges: Vec<ScheduledExchange>,
    /// Per global position: the next free round for that node.
    next_round: Vec<u32>,
    /// Counting-sort scratch: per (round, shard) bucket starts (length
    /// `rounds * shards + 1`) and the exchange indices grouped by bucket.
    bucket_starts: Vec<u32>,
    bucket_items: Vec<u32>,
}

impl ScheduleBuffers {
    fn bucket(&self, round: usize, shard: usize, shards: usize) -> &[u32] {
        let b = round * shards + shard;
        let start = self.bucket_starts[b] as usize;
        let end = self.bucket_starts[b + 1] as usize;
        &self.bucket_items[start..end]
    }
}

/// A cross-shard push batch: one entry per initiated exchange, carrying the
/// initiator's pushes to the peer's shard.
#[derive(Debug)]
struct CrossPush {
    /// Global sequence number of the exchange (the fixed merge order key).
    seq: u32,
    initiator: NodeId,
    peer_slot: u32,
    /// First push inline (the common single-instance case allocates
    /// nothing); further pushes spill into `rest`.
    first: GossipMessage,
    rest: Vec<GossipMessage>,
}

/// A cross-shard reply batch routed back to the initiator's shard.
#[derive(Debug)]
struct CrossReply {
    seq: u32,
    initiator_slot: u32,
    first: GossipMessage,
    rest: Vec<GossipMessage>,
}

/// Node state owned by one shard.
#[derive(Debug)]
struct Shard {
    arena: NodeArena,
    /// Per slot: position of the occupant in the global live directory.
    global_pos: Vec<u32>,
    /// The struct-of-arrays mirror of this shard's *hot* nodes (see
    /// [`crate::soa`]): while the single-worker SoA executor is resident,
    /// hot records are authoritative and the matching `ProtocolNode`s are
    /// stale until synced back at a flush point.
    hot: HotStore,
    /// This shard's slice of the flight recorder: worker-side exchange
    /// outcomes (`MessageLost` / `ExchangeCompleted`), keyed by global
    /// sequence number only — no node identity — so the seq-sorted merge
    /// of all rings is invariant across shard and worker counts. Capacity
    /// 0 (the default) disables recording entirely.
    recorder: FlightRecorder,
}

/// The sharded engine's [`SamplerDirectory`]: positions are the global live
/// directory's order (shard-count agnostic), liveness resolves through the
/// owning shard's arena — all O(1).
#[derive(Debug, Clone, Copy)]
struct GlobalDirectory<'a> {
    live: &'a [NodeId],
    shards: &'a [Shard],
}

impl SamplerDirectory for GlobalDirectory<'_> {
    fn len(&self) -> usize {
        self.live.len()
    }

    fn id_at(&self, pos: usize) -> NodeId {
        self.live[pos]
    }

    fn is_live(&self, id: NodeId) -> bool {
        let shard = IdLayout::shard_of(id) as usize;
        self.shards
            .get(shard)
            .is_some_and(|s| s.arena.get(id).is_some())
    }
}

/// Global directory position of a (verified live) identifier.
fn global_pos_of(shards: &[Shard], id: NodeId) -> u32 {
    let shard = IdLayout::shard_of(id) as usize;
    let slot = IdLayout::sharded_slot_of(id) as usize;
    shards[shard].global_pos[slot]
}

impl Shard {
    fn set_global_pos(&mut self, slot: u32, pos: u32) {
        let slot = slot as usize;
        if slot >= self.global_pos.len() {
            self.global_pos.resize(slot + 1, u32::MAX);
        }
        self.global_pos[slot] = pos;
    }

    /// Writes a hot record back into its `ProtocolNode`, bringing the node in
    /// sync with the mirror. The record stays hot (it still equals the node);
    /// callers that are about to mutate the node must [`Shard::resync_slot`]
    /// afterwards.
    fn flush_hot_slot(&mut self, slot: u32) {
        let Some(view) = self.hot.view(slot) else {
            return;
        };
        if let Some(node) = self.arena.node_at_slot_mut(slot) {
            node.restore_hot_view(view);
        }
    }

    /// Re-derives `slot`'s mirror record from its `ProtocolNode`: promoted if
    /// the node is currently hot, demoted to cold otherwise.
    fn resync_slot(&mut self, slot: u32, kind: AggregateKind) {
        let Some(node) = self.arena.node_at_slot(slot) else {
            self.hot.mark_cold(slot);
            return;
        };
        match node.hot_view() {
            Some(view) => {
                let restart = kind.init_value(node.local_value());
                self.hot.promote(slot, view, restart);
            }
            None => self.hot.mark_cold(slot),
        }
    }
}

/// Per-shard, per-cycle output, merged by the coordinator in shard order.
#[derive(Debug, Default)]
struct ShardCycleOut {
    tally: ExchangeTally,
    completed_epoch: Option<u64>,
    epoch_stats: OnlineStats,
    size_stats: OnlineStats,
    estimate_stats: OnlineStats,
}

/// The sharded multi-threaded cycle engine. See the module documentation for
/// the execution and determinism model.
#[derive(Debug)]
pub struct ShardedSimulation {
    config: ShardedConfig,
    shards: Vec<Shard>,
    /// Dense directory of all live nodes, in join order with swap-remove
    /// holes. Every scheduling decision (initiator order, peer picks, churn
    /// victims, election draws) is made over this directory, which evolves
    /// identically for every shard count — the root of the shard-count
    /// invariance of node values.
    global_live: Vec<NodeId>,
    cycle: usize,
    seeds: SeedSequence,
    churn_rng: StdRng,
    elections: u64,
    last_size_estimate: Option<f64>,
    shard_exchange_totals: Vec<usize>,
    sched: ScheduleBuffers,
    /// Whether the per-shard [`HotStore`]s currently hold the authoritative
    /// state of the hot nodes (single-worker SoA executor). While `true`,
    /// every read or node-path mutation of a hot node must go through a
    /// flush/resync; `flush_soa` drops back to all-node representation.
    soa_resident: bool,
    /// Reusable shuffle buffer for the SoA executor: one `u64` per live node
    /// carrying `directory_position << 32 | packed_endpoint`, so after the
    /// shuffle both the rejection compare (high half) and the initiator's
    /// shard/slot (low half) come from the entry itself — no random
    /// directory lookup per initiator.
    soa_order: Vec<u64>,
    /// Reusable packed mirror of `global_live` (`shard << 24 | slot` per
    /// directory position) for candidate lookups — half the miss footprint of
    /// the 8-byte `NodeId` directory.
    soa_packed: Vec<u32>,
    /// The peer-sampling layer. Sampling happens exclusively in the
    /// coordinator pass (schedule construction), never on worker threads, so
    /// one sampler serves every shard and both determinism invariants —
    /// across worker counts *and* across shard counts — hold by
    /// construction.
    sampler: Box<dyn PeerSampler>,
    /// The fault lab. Like the sampler it is consulted exclusively on the
    /// coordinator (cycle entry, crash bursts, value injections, link
    /// vetoes during schedule construction); workers only ever see the
    /// already-filtered schedule plus the cycle's scalar loss probability,
    /// so faulted runs stay bit-identical across *worker* counts. Across
    /// *shard* counts, the loss/crash/injection schedules are agnostic
    /// (scalar rates, churn-stream victims, directory-position picks), but
    /// link and partition coins key on node identifiers — which embed the
    /// shard layout — so a link-failure or partition plan draws a
    /// *different (statistically equivalent) fault map* per shard count;
    /// the shard-count bit-invariance of node values holds only for plans
    /// without identity-keyed faults.
    injector: Box<dyn FaultInjector>,
    /// The stateful adversary. Consulted exclusively on the coordinator
    /// (cycle-start lies, captured-leader assertions, injection overrides).
    /// Colluder membership keys on initial global-directory *positions* —
    /// not node identifiers, which embed the shard layout — so the
    /// colluding set is bit-identical across shard and worker counts.
    adversary: Adversary,
    /// The coordinator-side observability sink: schedule-time events
    /// (churn, corruption, vetoes, exchange starts — all keyed by global
    /// directory positions, which are shard-count invariant), the metrics
    /// registry and the convergence watchdog. Disabled by default;
    /// recording consumes no randomness, so enabling it never perturbs the
    /// trajectory.
    telemetry: TelemetrySink,
    /// Virtual time for flight-recorder timestamps; advances one logical
    /// Δt per cycle, never reads a wall clock.
    clock: VirtualClock,
}

/// Lazily seeded per-exchange loss model: free when the loss probability is
/// zero, and a deterministic function of the exchange's sequence number
/// otherwise — identical no matter which thread (or which side of a
/// cross-shard mailbox) consumes the draws. The probability is the cycle's
/// effective loss rate as computed by the fault injector (a plain
/// `NetworkConditions` run feeds its constant rate through the same path).
fn exchange_loss(loss: f64, seed: u64) -> impl FnMut() -> bool {
    let mut rng: Option<StdRng> = None;
    move || {
        if loss <= 0.0 {
            return false;
        }
        let rng = rng.get_or_insert_with(|| StdRng::seed_from_u64(seed));
        rng.gen_bool(loss)
    }
}

impl ShardedSimulation {
    /// Creates a sharded simulation with one node per initial value
    /// (distributed round-robin over the shards), all present from epoch 0.
    ///
    /// # Errors
    ///
    /// See [`ShardedConfig::validate`].
    pub fn new(
        config: ShardedConfig,
        initial_values: &[f64],
        master_seed: u64,
    ) -> Result<Self, SimConfigError> {
        ShardedSimulation::with_faults(config, initial_values, master_seed, FaultPlan::none())
    }

    /// Creates a sharded simulation executing the given [`FaultPlan`] (with
    /// the configuration's `NetworkConditions` absorbed underneath it). With
    /// [`FaultPlan::none`] this is exactly [`ShardedSimulation::new`].
    ///
    /// # Errors
    ///
    /// Everything [`ShardedConfig::validate`] rejects, plus
    /// [`SimConfigError::Faults`] for a malformed schedule.
    pub fn with_faults(
        config: ShardedConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
    ) -> Result<Self, SimConfigError> {
        ShardedSimulation::with_adversary(
            config,
            initial_values,
            master_seed,
            plan,
            AdversaryPlan::none(),
        )
    }

    /// Creates a sharded simulation executing both a [`FaultPlan`] and a
    /// stateful [`AdversaryPlan`]. Colluder membership is keyed on initial
    /// global-directory *positions*, so the colluding set (and hence the
    /// whole trajectory) is invariant across shard and worker counts.
    ///
    /// # Errors
    ///
    /// Everything [`ShardedSimulation::with_faults`] rejects, plus
    /// [`SimConfigError::Adversary`] for a malformed adversary plan.
    pub fn with_adversary(
        config: ShardedConfig,
        initial_values: &[f64],
        master_seed: u64,
        plan: FaultPlan,
        adversary_plan: AdversaryPlan,
    ) -> Result<Self, SimConfigError> {
        config.validate(initial_values)?;
        let plan = plan.absorb_conditions(config.base.conditions);
        plan.validate()?;
        adversary_plan.validate()?;
        let shard_count = config.shards;
        let mut shards: Vec<Shard> = (0..shard_count)
            .map(|s| Shard {
                arena: NodeArena::with_layout(IdLayout::sharded(s as u32)),
                global_pos: Vec::new(),
                hot: HotStore::default(),
                recorder: FlightRecorder::new(0),
            })
            .collect();
        let mut global_live = Vec::with_capacity(initial_values.len());
        let protocol = config.base.protocol;
        for (i, &value) in initial_values.iter().enumerate() {
            let shard = &mut shards[i % shard_count];
            let (id, slot) = shard
                .arena
                .insert_at(|id| ProtocolNode::new(id, protocol, value));
            shard.set_global_pos(slot, global_live.len() as u32);
            global_live.push(id);
        }
        let seeds = SeedSequence::new(master_seed);
        let sampler = instantiate_sampler(config.base.sampler, &global_live, &seeds)?;
        let injector = Box::new(PlanInjector::new(
            plan,
            seeds.seed_for_labeled(0, crate::sampling::FAULTS_STREAM),
        ));
        let adversary = Adversary::new(
            adversary_plan,
            seeds.seed_for_labeled(0, crate::sampling::ADVERSARY_STREAM),
            &global_live,
        );
        let mut sim = ShardedSimulation {
            config,
            shards,
            global_live,
            cycle: 0,
            seeds,
            // stream: random-victim departures under churn
            churn_rng: seeds.rng_for_labeled(0, "sharded-churn"),
            elections: 0,
            last_size_estimate: None,
            shard_exchange_totals: vec![0; shard_count],
            sched: ScheduleBuffers::default(),
            soa_resident: false,
            soa_order: Vec::new(),
            soa_packed: Vec::new(),
            sampler,
            injector,
            adversary,
            telemetry: TelemetrySink::new(TelemetryConfig::disabled()),
            clock: VirtualClock::new(),
        };
        sim.elect_leaders();
        Ok(sim)
    }

    /// Installs (or replaces) the telemetry sink and re-arms the per-shard
    /// flight-recorder rings. With [`TelemetryConfig::disabled`] — the
    /// construction default — every hook is a single branch and the run is
    /// bit-identical to the pre-telemetry engine. Recording consumes no
    /// randomness, and events are keyed by global directory positions plus
    /// executor-agnostic sequence numbers, so the merged trace is invariant
    /// across shard *and* worker counts.
    pub fn set_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = TelemetrySink::new(config);
        self.telemetry
            .begin_cycle(self.cycle as u64, self.clock.now_ms());
        let now = self.clock.now_ms();
        let cycle = self.cycle as u64;
        for shard in &mut self.shards {
            shard.recorder = self.telemetry.shard_recorder();
            shard.recorder.set_context(cycle, now);
        }
    }

    /// Drains the coordinator's ring and every shard's ring into one
    /// canonically ordered trace (see [`gossip_telemetry::merge_events`]).
    pub fn drain_trace(&mut self) -> Vec<Event> {
        let batches: Vec<Vec<Event>> = self
            .shards
            .iter_mut()
            .map(|shard| shard.recorder.drain())
            .collect();
        self.telemetry.drain_events_with(batches) // lint-allow(observer-effect): post-hoc export accessor for runners/tests, not protocol logic
    }

    /// Events evicted from any ring since the sink was installed — a
    /// nonzero value means the trace has holes and the ring capacity should
    /// be raised (or the trace drained more often).
    pub fn dropped_trace_events(&self) -> u64 {
        self.telemetry.dropped_events() // lint-allow(observer-effect): post-hoc export accessor for runners/tests, not protocol logic
            + self
                .shards
                .iter()
                .map(|shard| shard.recorder.dropped())
                .sum::<u64>()
    }

    /// The convergence watchdog's current verdict, if one is configured.
    pub fn watchdog_verdict(&self) -> Option<gossip_telemetry::WatchdogVerdict> {
        self.telemetry.watchdog_verdict() // lint-allow(observer-effect): post-hoc diagnosis accessor for runners/tests, not protocol logic
    }

    /// Every verdict transition the watchdog has diagnosed so far.
    pub fn watchdog_diagnoses(&self) -> &[gossip_telemetry::Diagnosis] {
        self.telemetry.diagnoses() // lint-allow(observer-effect): post-hoc diagnosis accessor for runners/tests, not protocol logic
    }

    /// The accumulated telemetry counters (post-hoc readout).
    pub fn telemetry_metrics(&self) -> &gossip_telemetry::MetricsRegistry {
        self.telemetry.metrics() // lint-allow(observer-effect): post-hoc metrics accessor for runners/tests, not protocol logic
    }

    /// The peer-sampling configuration exchange partners are drawn from.
    pub fn sampler_config(&self) -> SamplerConfig {
        self.sampler.config()
    }

    /// The realised adversary (colluding set and per-epoch captures).
    pub fn adversary(&self) -> &Adversary {
        &self.adversary
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.global_live.len()
    }

    /// The current cycle index.
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Total allocated node slots across all sub-arenas (live +
    /// reclaimable) — the engine's resident-footprint high-water mark.
    pub fn slot_capacity(&self) -> usize {
        self.shards.iter().map(|s| s.arena.slot_capacity()).sum()
    }

    /// Total dead slots currently awaiting reuse across all sub-arenas.
    pub fn free_slot_count(&self) -> usize {
        self.shards.iter().map(|s| s.arena.free_slots()).sum()
    }

    /// Number of live nodes per shard (the load-balance view).
    pub fn shard_live_counts(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.arena.len()).collect()
    }

    /// Total exchanges initiated per shard since construction — the
    /// accumulated load-balance telemetry [`crate::runner::ChurnReport`]
    /// records.
    pub fn shard_exchange_totals(&self) -> &[usize] {
        &self.shard_exchange_totals
    }

    /// The most recent pooled network-size estimate, if any epoch completed.
    pub fn last_size_estimate(&self) -> Option<f64> {
        self.last_size_estimate
    }

    /// Read access to a node. Returns `None` for departed nodes and stale
    /// identifiers.
    ///
    /// Takes `&mut self` because the node may currently be mirrored in the
    /// struct-of-arrays hot store (single-worker executor); the mirror is
    /// flushed into the node first so the returned view is never stale.
    pub fn node(&mut self, id: NodeId) -> Option<&ProtocolNode> {
        let shard = IdLayout::shard_of(id) as usize;
        let shard = self.shards.get_mut(shard)?;
        shard.flush_hot_slot(IdLayout::sharded_slot_of(id));
        shard.arena.get(id)
    }

    /// Current default-instance estimates of all live nodes, in global
    /// directory order — a shard-count invariant ordering, which is what
    /// lets the determinism suite compare runs across shard counts
    /// bit-for-bit. Hot nodes are read straight from the dense mirror
    /// (`estimate_value` over the mirrored state is bit-identical to the
    /// node-side estimate).
    pub fn estimates(&self) -> Vec<f64> {
        let kind = self.config.base.protocol.aggregate();
        self.global_live
            .iter()
            .filter_map(|&id| {
                let shard = self.shards.get(IdLayout::shard_of(id) as usize)?;
                if let Some(record) = shard.hot.hot(IdLayout::sharded_slot_of(id)) {
                    return Some(kind.estimate_value(record.state));
                }
                shard.arena.get(id).and_then(|node| node.estimate())
            })
            .collect()
    }

    /// Current local attribute values of all live nodes, in global directory
    /// order. Local values are never mirrored (the engine exposes no way to
    /// change them), so this reads the nodes directly.
    pub fn local_values(&self) -> Vec<f64> {
        self.global_live
            .iter()
            .filter_map(|&id| {
                let shard = self.shards.get(IdLayout::shard_of(id) as usize)?;
                shard.arena.get(id).map(|node| node.local_value())
            })
            .collect()
    }

    /// Adds a node with the given local value. The node is routed to the
    /// least-loaded shard (lowest index on ties — deterministic) and joins
    /// passively until the next epoch starts, exactly as in the reference
    /// engine.
    pub fn add_node(&mut self, local_value: f64) -> NodeId {
        let cycles_per_epoch = self.config.base.protocol.cycles_per_epoch() as usize;
        let cycle_in_epoch = self.cycle % cycles_per_epoch;
        let cycles_until_start = (cycles_per_epoch - cycle_in_epoch) as u32;
        let next_epoch = (self.cycle / cycles_per_epoch) as u64 + 1;
        let protocol = self.config.base.protocol;
        let shard_idx = (0..self.shards.len())
            .min_by_key(|&s| (self.shards[s].arena.len(), s))
            // lint-allow(unwrap): ShardedConfig::validate rejects zero shards
            .expect("at least one shard");
        let shard = &mut self.shards[shard_idx];
        let (id, slot) = shard.arena.insert_at(|id| {
            ProtocolNode::joining(id, protocol, local_value, next_epoch, cycles_until_start)
        });
        // A joining node waits for its epoch — never hot; the slot may be a
        // reused one carrying a stale hot record.
        shard.hot.mark_cold(slot);
        shard.set_global_pos(slot, self.global_live.len() as u32);
        self.global_live.push(id);
        if self.telemetry.events_enabled() {
            // Positions — not identifiers, which embed the shard layout —
            // keep the trace invariant across shard counts.
            self.telemetry
                .node_joined(self.global_live.len() as u64 - 1);
        }
        let ShardedSimulation {
            sampler,
            global_live,
            shards,
            ..
        } = self;
        sampler.on_join(
            id,
            &GlobalDirectory {
                live: global_live,
                shards,
            },
        );
        id
    }

    /// Removes a specific node. Returns `true` if the node was live; stale
    /// identifiers are rejected.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        let shard = IdLayout::shard_of(id) as usize;
        if shard >= self.shards.len() {
            return false;
        }
        if !self.shards[shard].arena.remove(id) {
            return false;
        }
        let slot = IdLayout::sharded_slot_of(id);
        // The departed node's state vanishes with it: no flush, just hygiene.
        self.shards[shard].hot.mark_cold(slot);
        let pos = self.shards[shard].global_pos[slot as usize];
        if self.telemetry.events_enabled() {
            self.telemetry.node_departed(u64::from(pos));
        }
        self.remove_global_at(pos as usize);
        self.sampler.on_depart(id);
        true
    }

    /// Removes `count` uniformly random live nodes (churn schedules, crash
    /// experiments). The victim sequence is drawn from a dedicated stream
    /// over the global directory, so it is identical for every shard count.
    pub fn remove_random_nodes(&mut self, count: usize) -> usize {
        let mut removed = 0;
        for _ in 0..count {
            if self.global_live.is_empty() {
                break;
            }
            let pos = self.churn_rng.gen_range(0..self.global_live.len());
            let id = self.global_live[pos];
            let shard = IdLayout::shard_of(id) as usize;
            let slot = IdLayout::sharded_slot_of(id);
            self.shards[shard].arena.remove_slot_checked(slot);
            self.shards[shard].hot.mark_cold(slot);
            if self.telemetry.events_enabled() {
                self.telemetry.node_departed(pos as u64);
            }
            self.remove_global_at(pos);
            self.sampler.on_depart(id);
            removed += 1;
        }
        removed
    }

    fn remove_global_at(&mut self, pos: usize) {
        self.global_live.swap_remove(pos);
        if pos < self.global_live.len() {
            let moved = self.global_live[pos];
            let shard = IdLayout::shard_of(moved) as usize;
            let slot = IdLayout::sharded_slot_of(moved) as usize;
            self.shards[shard].global_pos[slot] = pos as u32;
        }
    }

    /// Runs `cycles` consecutive cycles, returning all summaries.
    pub fn run(&mut self, cycles: usize) -> Vec<ShardedCycleSummary> {
        (0..cycles).map(|_| self.run_cycle()).collect()
    }

    /// The worker-thread count the next cycle will execute on.
    pub fn effective_workers(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.config
            .workers
            .unwrap_or(auto)
            .clamp(1, self.config.shards)
    }

    /// Runs one full protocol cycle across the shard workers and returns its
    /// summary.
    pub fn run_cycle(&mut self) -> ShardedCycleSummary {
        let shard_count = self.config.shards;
        // Fault lab first, entirely on the coordinator: enter the cycle,
        // fire scheduled crash bursts through the ordinary churn path
        // (shard-count-agnostic victim stream), apply adversarial value
        // injections over the global directory. A run with the empty plan
        // takes none of these branches and consumes no randomness.
        self.injector.begin_cycle(self.cycle);
        let crash_victims = self.injector.crash_count(self.global_live.len());
        if crash_victims > 0 {
            self.remove_random_nodes(crash_victims);
        }
        // The stateful adversary next (coordinator-only, pure — no RNG, so
        // the empty plan stays bit-identical): colluders re-assert their lie
        // and captured counting-instance leaders re-assert the false state,
        // both hot-aware like the injector path below.
        {
            let ShardedSimulation {
                adversary,
                shards,
                cycle,
                telemetry,
                ..
            } = self;
            let record = telemetry.events_enabled();
            if let Some(value) = adversary.lie_at(*cycle) {
                for &id in adversary.colluders() {
                    let shard = &mut shards[IdLayout::shard_of(id) as usize];
                    if shard.arena.get(id).is_none() {
                        continue; // colluder crashed or departed
                    }
                    let slot = IdLayout::sharded_slot_of(id) as usize;
                    if record {
                        telemetry.value_corrupted(u64::from(shard.global_pos[slot]));
                    }
                    match shard.hot.slots.get_mut(slot).filter(|r| r.is_hot()) {
                        Some(record) => record.state = value,
                        None => {
                            if let Some(node) = shard.arena.get_mut(id) {
                                node.corrupt_estimate(value);
                            }
                        }
                    }
                }
            }
            if let Some(state) = adversary.captured_state_at(*cycle) {
                for &id in adversary.captured() {
                    // A captured leader runs a led instance, so it is cold by
                    // construction — the arena node is authoritative.
                    let shard = &mut shards[IdLayout::shard_of(id) as usize];
                    if let Some(node) = shard.arena.get_mut(id) {
                        node.corrupt_instance(InstanceTag::from_leader(id), state);
                    }
                }
            }
        }
        for (pos, value) in self.injector.corruptions(self.global_live.len()) {
            let id = self.global_live[pos];
            // One corruption per node per cycle: the stateful adversary's
            // lie wins over a one-shot injection on the same node (it would
            // overwrite the injection next cycle anyway).
            if self.adversary.overrides_injection(self.cycle, id) {
                continue;
            }
            if self.telemetry.events_enabled() {
                self.telemetry.value_corrupted(pos as u64);
            }
            let shard = &mut self.shards[IdLayout::shard_of(id) as usize];
            let slot = IdLayout::sharded_slot_of(id) as usize;
            // A hot node's authoritative state lives in the mirror;
            // `corrupt_estimate` only overwrites the running approximation,
            // which is exactly the mirrored word.
            match shard.hot.slots.get_mut(slot).filter(|r| r.is_hot()) {
                Some(record) => record.state = value,
                None => {
                    if let Some(node) = shard.arena.get_mut(id) {
                        node.corrupt_estimate(value);
                    }
                }
            }
        }
        let loss = self.injector.loss_probability();
        // Overlay maintenance in lockstep with the aggregation cycle, on the
        // coordinator (identical for both executors and every worker count);
        // NEWSCAST's randomness comes from its own labelled stream, so the
        // schedule draws below are unaffected.
        {
            let ShardedSimulation {
                sampler,
                global_live,
                shards,
                ..
            } = self;
            sampler.begin_cycle(&GlobalDirectory {
                live: global_live,
                shards,
            });
        }
        let (outs, exchanges_blocked) = if self.effective_workers() == 1 {
            if self.soa_allowed() {
                self.ensure_soa_resident();
                self.run_cycle_sequential_soa(loss)
            } else {
                self.run_cycle_sequential(loss)
            }
        } else {
            self.flush_soa();
            self.run_cycle_threaded(loss)
        };

        // Merge the per-shard outputs in shard order: integer counters sum
        // exactly; statistics merge via the parallel Welford update, whose
        // floating-point result depends on the merge order — fixed here, and
        // the only place where runs with different shard counts may differ.
        let mut tally = ExchangeTally::default();
        let mut estimate_stats = OnlineStats::new();
        let mut epoch_stats = OnlineStats::new();
        let mut size_stats = OnlineStats::new();
        let mut completed_epoch = None;
        let mut shard_exchanges = Vec::with_capacity(shard_count);
        for (shard, out) in outs.iter().enumerate() {
            tally.exchanges += out.tally.exchanges;
            tally.messages_lost += out.tally.messages_lost;
            shard_exchanges.push(out.tally.exchanges);
            self.shard_exchange_totals[shard] += out.tally.exchanges;
            estimate_stats.merge(&out.estimate_stats);
            epoch_stats.merge(&out.epoch_stats);
            size_stats.merge(&out.size_stats);
            completed_epoch = match (completed_epoch, out.completed_epoch) {
                (Some(a), Some(b)) => Some(std::cmp::max::<u64>(a, b)),
                (a, b) => a.or(b),
            };
        }

        if self.telemetry.events_enabled() {
            self.telemetry
                .add_message_losses(tally.messages_lost as u64);
        }
        if size_stats.count() > 0 {
            self.last_size_estimate = Some(size_stats.mean());
        }
        if let Some(epoch) = completed_epoch {
            if self.telemetry.events_enabled() {
                self.telemetry.epoch_restarted(epoch);
            }
            self.elect_leaders();
        }

        let summary = ShardedCycleSummary {
            cycle: self.cycle,
            live_nodes: self.global_live.len(),
            exchanges: tally.exchanges,
            messages_lost: tally.messages_lost,
            exchanges_blocked,
            estimate_mean: estimate_stats.mean(),
            estimate_variance: estimate_stats.sample_variance(),
            completed_epoch,
            epoch_estimates: epoch_stats,
            epoch_size_estimates: size_stats,
            shard_exchanges,
        };
        self.telemetry
            .observe_variance(self.cycle as u64, summary.estimate_variance);
        self.cycle += 1;
        self.clock.advance(crate::engine::VIRTUAL_CYCLE_MS);
        // Open the next cycle's recording context — inter-cycle churn and
        // fault-lab actions land in *that* cycle's start band, mirroring the
        // reference engine.
        self.telemetry
            .begin_cycle(self.cycle as u64, self.clock.now_ms());
        if self.telemetry.events_enabled() {
            let now = self.clock.now_ms();
            let cycle = self.cycle as u64;
            for shard in &mut self.shards {
                shard.recorder.set_context(cycle, now);
            }
        }
        summary
    }

    /// Single-worker executor: applies the cycle's schedule sequentially in
    /// global sequence order with fused exchanges. By the round-equivalence
    /// argument (see the module docs) this is bit-identical to the threaded
    /// executor for the same shard count — `tests/determinism.rs` and the
    /// unit tests pin it — while skipping the round computation, mailboxes
    /// and barriers that only pay off with real parallelism.
    fn run_cycle_sequential(&mut self, loss: f64) -> (Vec<ShardCycleOut>, usize) {
        let shard_count = self.config.shards;
        let redundancy = self.config.base.redundancy.map(|r| r.merge);
        let lossy = loss > 0.0;
        let loss_seeds =
            // stream: per-exchange message-loss coins, re-derived each cycle
            SeedSequence::new(self.seeds.seed_for_labeled(self.cycle as u64, "cycle-loss"));
        let n = self.global_live.len();
        let mut rng = self
            .seeds
            // stream: per-cycle initiator shuffle and peer picks
            .rng_for_labeled(self.cycle as u64, "cycle-schedule");
        let order = &mut self.sched.order;
        order.clear();
        order.extend(0..n as u32);
        order.shuffle(&mut rng);

        let mut tallies = vec![ExchangeTally::default(); shard_count];
        let mut exchanges_blocked = 0usize;
        let mut scratch = ExchangeScratch::new();
        let shards = &mut self.shards;
        let global_live = &self.global_live;
        let sampler = &mut self.sampler;
        let injector = &self.injector;
        let telemetry = &mut self.telemetry;
        let record = telemetry.events_enabled();
        // Exchanges are executed in blocks: peers for the whole block are
        // drawn first (the same draw sequence as one-at-a-time), then every
        // endpoint node is *touched* with plain reads, then the block runs.
        // The touch pass issues up to 2·BLOCK independent loads whose cache
        // misses overlap, where the execute pass alone would serialise one
        // ~L3-latency miss pair per exchange — at 10⁵–10⁶ nodes the node
        // array is far beyond L2 and this roughly halves the cycle time.
        const BLOCK: usize = 64;
        let mut block: Vec<(NodeId, NodeId)> = Vec::with_capacity(BLOCK);
        if n >= 2 {
            // Dense sequence numbers over *successful* picks — the same
            // numbering `build_schedule` gives the threaded executor (a
            // sampler may fail a pick, e.g. an empty NEWSCAST view, so the
            // count is not simply the initiator's order position).
            let mut next_seq = 0usize;
            let mut start = 0usize;
            while start < n {
                let end = (start + BLOCK).min(n);
                block.clear();
                for &ipos in &order[start..end] {
                    let directory = GlobalDirectory {
                        live: global_live,
                        shards,
                    };
                    let Some(peer_id) =
                        sample_live_peer(sampler.as_mut(), &directory, ipos as usize, &mut rng)
                    else {
                        continue;
                    };
                    // Fault-lab veto, applied at the same point as the
                    // threaded executor's schedule construction so both
                    // executors number the surviving exchanges identically.
                    // The failed contact is reported to the sampler so
                    // cached views tail-drop unreachable neighbours.
                    let initiator_id = global_live[ipos as usize];
                    if injector.link_blocked(initiator_id, peer_id) {
                        sampler.peer_failed(initiator_id, peer_id);
                        exchanges_blocked += 1;
                        if record {
                            telemetry.exchange_vetoed(
                                u64::from(ipos),
                                u64::from(global_pos_of(shards, peer_id)),
                            );
                        }
                        continue;
                    }
                    block.push((initiator_id, peer_id));
                }
                let mut warm = 0u64;
                for &(initiator_id, peer_id) in &block {
                    for id in [initiator_id, peer_id] {
                        let shard = IdLayout::shard_of(id) as usize;
                        let slot = IdLayout::sharded_slot_of(id);
                        if let Some(node) = shards[shard].arena.node_at_slot(slot) {
                            // One read per cache line the fused exchange
                            // needs (epoch state, instance state, led-map
                            // root), so the execute pass below hits L1.
                            warm ^= node.current_epoch();
                            warm ^= node.estimate().unwrap_or(0.0).to_bits();
                            warm ^= u64::from(node.has_only_default_instance());
                        }
                    }
                }
                std::hint::black_box(warm);
                for &(initiator_id, peer_id) in block.iter() {
                    let seq = next_seq;
                    next_seq += 1;
                    if record {
                        // Same placement as `build_schedule`: a begun event
                        // for every surviving pick, keyed by directory
                        // positions and the executor-agnostic seq.
                        telemetry.exchange_begun(
                            seq as u64,
                            u64::from(global_pos_of(shards, initiator_id)),
                            u64::from(global_pos_of(shards, peer_id)),
                        );
                    }
                    let initiator_shard = IdLayout::shard_of(initiator_id) as usize;
                    let peer_shard = IdLayout::shard_of(peer_id) as usize;
                    let initiator_slot = IdLayout::sharded_slot_of(initiator_id);
                    let peer_slot = IdLayout::sharded_slot_of(peer_id);
                    let (initiator, peer) = if initiator_shard == peer_shard {
                        shards[initiator_shard]
                            .arena
                            .pair_mut(initiator_slot, peer_slot)
                    } else {
                        let (a, b) = shard_pair_mut(shards, initiator_shard, peer_shard);
                        (
                            a.arena.node_at_slot_mut(initiator_slot),
                            b.arena.node_at_slot_mut(peer_slot),
                        )
                    };
                    let (Some(initiator), Some(peer)) = (initiator, peer) else {
                        continue;
                    };
                    let seed = if lossy {
                        loss_seeds.seed_for_run(seq as u64)
                    } else {
                        0
                    };
                    let mut lost = exchange_loss(loss, seed);
                    let exch_before = tallies[initiator_shard].exchanges;
                    let lost_before = tallies[initiator_shard].messages_lost;
                    ExchangeCore::exchange(
                        initiator,
                        peer,
                        &mut scratch,
                        &mut lost,
                        &mut tallies[initiator_shard],
                    );
                    if record {
                        record_exchange_outcome(
                            &mut shards[initiator_shard].recorder,
                            seq as u64,
                            tallies[initiator_shard].exchanges > exch_before,
                            tallies[initiator_shard].messages_lost - lost_before,
                        );
                    }
                }
                start = end;
            }
        }
        let outs = shards
            .iter_mut()
            .zip(tallies)
            .map(|(shard, tally)| end_of_cycle_pass(shard, tally, redundancy))
            .collect();
        (outs, exchanges_blocked)
    }

    /// Whether the struct-of-arrays executor may run: its inline peer picks
    /// replicate exactly the uniform complete-membership sampler; overlay and
    /// NEWSCAST samplers keep the node-path executors.
    fn soa_allowed(&self) -> bool {
        matches!(self.sampler.config(), SamplerConfig::UniformComplete)
    }

    /// Loads every currently-hot node into the per-shard dense mirrors and
    /// marks the mirrors authoritative. One streaming pass; a no-op while
    /// already resident.
    fn ensure_soa_resident(&mut self) {
        if self.soa_resident {
            return;
        }
        let kind = self.config.base.protocol.aggregate();
        for shard in &mut self.shards {
            for pos in 0..shard.arena.len() {
                let slot = shard.arena.live_slots()[pos];
                shard.resync_slot(slot, kind);
            }
        }
        self.soa_resident = true;
    }

    /// Writes every hot record back into its `ProtocolNode` and drops to the
    /// all-node representation (threaded executor entry, leader elections).
    fn flush_soa(&mut self) {
        if !self.soa_resident {
            return;
        }
        for shard in &mut self.shards {
            for slot in 0..shard.hot.slots.len() as u32 {
                if shard.hot.slots[slot as usize].is_hot() {
                    shard.flush_hot_slot(slot);
                    shard.hot.mark_cold(slot);
                }
            }
        }
        self.soa_resident = false;
    }

    /// Single-worker struct-of-arrays executor: same schedule, same draws,
    /// same arithmetic as [`ShardedSimulation::run_cycle_sequential`] — the
    /// determinism suite pins the bit-identity — but the steady-state work
    /// runs over the dense per-shard [`HotStore`]s:
    ///
    /// * the initiator shuffle and the peer picks consume the
    ///   `cycle-schedule` stream through block-buffered raw words
    ///   ([`soa::shuffle_batched`] / [`WordBuffer`]), with the uniform
    ///   sampler's pick loop inlined — zero virtual calls per pick;
    /// * per-exchange loss coins are pre-drawn per block from the
    ///   `cycle-loss` stream via [`SeedSequence::fill_block`] (each
    ///   exchange's coins still come from its own `seed_for_run(seq)`
    ///   stream, in draw order — bit-identical to the lazy closure);
    /// * an exchange between two hot nodes in the same epoch runs
    ///   [`ExchangeCore::exchange_fused_raw`] over two 24-byte records — one
    ///   cache line per endpoint instead of two-plus; any other exchange
    ///   flushes its endpoints and takes the node path, then resyncs.
    fn run_cycle_sequential_soa(&mut self, loss: f64) -> (Vec<ShardCycleOut>, usize) {
        let shard_count = self.config.shards;
        let redundancy = self.config.base.redundancy.map(|r| r.merge);
        let kind = self.config.base.protocol.aggregate();
        let cycles_per_epoch = self.config.base.protocol.cycles_per_epoch();
        let lossy = loss > 0.0;
        let loss_seeds =
            // stream: per-exchange message-loss coins, re-derived each cycle
            SeedSequence::new(self.seeds.seed_for_labeled(self.cycle as u64, "cycle-loss"));
        let n = self.global_live.len();
        let mut rng = self
            .seeds
            // stream: per-cycle initiator shuffle and peer picks
            .rng_for_labeled(self.cycle as u64, "cycle-schedule");

        // Packed directory mirror (candidate lookups touch 4 bytes per miss
        // instead of 8), then the shuffle entries: position in the high half
        // for the sampler's self-rejection compare, packed endpoint in the
        // low half so the initiator's shard/slot ride along through the
        // shuffle for free. The Fisher–Yates swap sequence is a function of
        // the drawn words and the length only, so shuffling these u64
        // entries applies the exact permutation the reference executor's
        // u32 position shuffle applies.
        let packed_dir = &mut self.soa_packed;
        packed_dir.clear();
        packed_dir.extend(self.global_live.iter().map(|&id| pack_endpoint(id)));
        let order = &mut self.soa_order;
        order.clear();
        order.extend(
            packed_dir
                .iter()
                .enumerate()
                .map(|(pos, &packed)| ((pos as u64) << 32) | u64::from(packed)),
        );
        soa::shuffle_batched(order, &mut rng);

        let mut tallies = vec![ExchangeTally::default(); shard_count];
        let mut exchanges_blocked = 0usize;
        let mut scratch = ExchangeScratch::new();
        let shards = &mut self.shards;
        let global_live = &self.global_live;
        let sampler = &mut self.sampler;
        let injector = &self.injector;
        let telemetry = &mut self.telemetry;
        let record = telemetry.events_enabled();

        // One fused pipeline per block of initiators: draw the block's peer
        // picks and touch the candidate directory lines; resolve the pairs
        // (link vetoes) and touch every endpoint's hot record; pre-draw the
        // block's loss coins; execute from cache. Each stage issues a
        // block's worth of independent loads, so the misses overlap instead
        // of serialising — at 10⁷ nodes every random access is a DRAM miss
        // and this overlap is the whole game.
        //
        // Draw-stream order is untouched: pick words are consumed in
        // initiator order across blocks (the rejection loop — re-draw while
        // the candidate is the initiator — is the uniform sampler's,
        // inlined; directory picks are live by construction, so
        // `sample_live_peer` adds nothing further). The link veto runs only
        // when the fault lab can block links this cycle (`links_can_block`)
        // and moves *between* the block's draws and its executions — legal
        // because `link_blocked` is pure and `peer_failed` is a no-op for
        // the uniform sampler (the only sampler routed here).
        // Four stages per block of initiators, each a tight loop so dozens
        // of iterations fit the out-of-order window and the stage's random
        // loads (every one a DRAM — and TLB — miss at 10⁷ nodes) overlap
        // instead of serialising into a miss chain: draw the block's peer
        // picks; touch their directory lines; resolve the pairs (link
        // vetoes) and touch every endpoint's hot record; pre-draw the loss
        // coins; execute from cache. (A deeper software pipeline that
        // interleaved the stages across blocks in one master loop measured
        // *slower* — the fat loop body starves the reorder buffer — so the
        // simple staged form stands.)
        const BLOCK: usize = 128;
        let check_links = injector.links_can_block();
        let mut words = WordBuffer::new();
        let mut cand = [0u32; BLOCK];
        let mut block_pairs = [(0u32, 0u32); BLOCK];
        let mut coin_seeds = [0u64; BLOCK];
        let mut coins = [(false, false); BLOCK];
        let mut next_seq = 0usize;
        let mut start = 0usize;
        while n >= 2 && start < n {
            let end = (start + BLOCK).min(n);
            let count = end - start;
            // Stage 1: the block's peer picks (the rejection compare uses
            // only the entry's high half — no memory dependence), then the
            // touch loop over the candidate directory lines.
            for k in 0..count {
                let ipos = (order[start + k] >> 32) as usize;
                let mut candidate;
                loop {
                    candidate = soa::index_from_word(words.next(&mut rng), n);
                    if candidate != ipos {
                        break;
                    }
                }
                cand[k] = candidate as u32;
            }
            let mut warm = 0u32;
            for &candidate in &cand[..count] {
                warm ^= packed_dir[candidate as usize];
            }
            std::hint::black_box(warm);
            // Stage 2: resolve pairs (link vetoes — the veto moves between
            // the block's draws and its executions, legal because
            // `link_blocked` is pure and `peer_failed` is a no-op for the
            // uniform sampler), then touch every endpoint's hot record in
            // its own tight loop. The touch loads' values are discarded, so
            // the cold path's flush/resync writes can never be made stale.
            let mut survivors = 0usize;
            for k in 0..count {
                let entry = order[start + k];
                let initiator = entry as u32;
                let peer = packed_dir[cand[k] as usize];
                if check_links {
                    let initiator_id = global_live[(entry >> 32) as usize];
                    let peer_id = global_live[cand[k] as usize];
                    if injector.link_blocked(initiator_id, peer_id) {
                        sampler.peer_failed(initiator_id, peer_id);
                        exchanges_blocked += 1;
                        if record {
                            telemetry.exchange_vetoed(entry >> 32, u64::from(cand[k]));
                        }
                        continue;
                    }
                }
                if record {
                    // Identical to the reference pick loop: a begun event per
                    // surviving pick, numbered densely in pick order. (The
                    // recording interleave differs — vetoes and beguns share
                    // this stage here — but the events' sort keys restore the
                    // same total order after the merge.)
                    telemetry.exchange_begun(
                        (next_seq + survivors) as u64,
                        entry >> 32,
                        u64::from(cand[k]),
                    );
                }
                block_pairs[survivors] = (initiator, peer);
                survivors += 1;
            }
            let mut warm = 0u32;
            for &(a, b) in &block_pairs[..survivors] {
                let (shard_a, slot_a) = unpack_endpoint(a);
                let (shard_b, slot_b) = unpack_endpoint(b);
                if let Some(record) = shards[shard_a].hot.slots.get(slot_a as usize) {
                    warm ^= record.key;
                }
                if let Some(record) = shards[shard_b].hot.slots.get(slot_b as usize) {
                    warm ^= record.key;
                }
            }
            std::hint::black_box(warm);
            // Stage 3: the block's loss coins. Exchange sequence numbers are
            // dense over survivors, exactly as the reference's pick loop
            // hands them out.
            if lossy {
                loss_seeds.fill_block(next_seq as u64, &mut coin_seeds[..survivors]);
                for (k, &seed) in coin_seeds[..survivors].iter().enumerate() {
                    // Eagerly drawing both coins from the exchange's private
                    // stream is invisible when only the first is consumed.
                    let mut coin_rng = StdRng::seed_from_u64(seed);
                    coins[k] = (coin_rng.gen_bool(loss), coin_rng.gen_bool(loss));
                }
            }
            // Stage 4: execute from cache.
            for (k, &(a, b)) in block_pairs[..survivors].iter().enumerate() {
                let seq = next_seq + k;
                let (shard_a, slot_a) = unpack_endpoint(a);
                let (shard_b, slot_b) = unpack_endpoint(b);
                let fused = {
                    let ra = shards[shard_a].hot.hot(slot_a);
                    let rb = shards[shard_b].hot.hot(slot_b);
                    matches!((ra, rb), (Some(x), Some(y)) if x.key == y.key)
                };
                if fused {
                    let (initiator, peer) = if shard_a == shard_b {
                        shards[shard_a].hot.pair_mut(slot_a, slot_b)
                    } else {
                        let (sa, sb) = shard_pair_mut(shards, shard_a, shard_b);
                        (
                            &mut sa.hot.slots[slot_a as usize],
                            &mut sb.hot.slots[slot_b as usize],
                        )
                    };
                    let (c1, c2) = coins[k];
                    let mut draw = 0u8;
                    let mut lost = move || {
                        draw += 1;
                        if draw == 1 {
                            c1
                        } else {
                            c2
                        }
                    };
                    let lost_before = tallies[shard_a].messages_lost;
                    ExchangeCore::exchange_fused_raw(
                        kind,
                        &mut initiator.state,
                        &mut initiator.exchanges,
                        &mut peer.state,
                        &mut peer.exchanges,
                        &mut lost,
                        &mut tallies[shard_a],
                    );
                    if record {
                        // The fused path always begins (both endpoints hot ⇒
                        // active in the same epoch).
                        record_exchange_outcome(
                            &mut shards[shard_a].recorder,
                            seq as u64,
                            true,
                            tallies[shard_a].messages_lost - lost_before,
                        );
                    }
                } else {
                    // Cold or cross-epoch endpoint: sync the nodes, run the
                    // ordinary node-path exchange (which takes its own fused
                    // fast path when the preconditions hold — bit-identical
                    // arithmetic either way), then re-derive both records.
                    shards[shard_a].flush_hot_slot(slot_a);
                    shards[shard_b].flush_hot_slot(slot_b);
                    let (initiator, peer) = if shard_a == shard_b {
                        shards[shard_a].arena.pair_mut(slot_a, slot_b)
                    } else {
                        let (sa, sb) = shard_pair_mut(shards, shard_a, shard_b);
                        (
                            sa.arena.node_at_slot_mut(slot_a),
                            sb.arena.node_at_slot_mut(slot_b),
                        )
                    };
                    let (Some(initiator), Some(peer)) = (initiator, peer) else {
                        continue;
                    };
                    let seed = if lossy {
                        loss_seeds.seed_for_run(seq as u64)
                    } else {
                        0
                    };
                    let mut lost = exchange_loss(loss, seed);
                    let exch_before = tallies[shard_a].exchanges;
                    let lost_before = tallies[shard_a].messages_lost;
                    ExchangeCore::exchange(
                        initiator,
                        peer,
                        &mut scratch,
                        &mut lost,
                        &mut tallies[shard_a],
                    );
                    if record {
                        record_exchange_outcome(
                            &mut shards[shard_a].recorder,
                            seq as u64,
                            tallies[shard_a].exchanges > exch_before,
                            tallies[shard_a].messages_lost - lost_before,
                        );
                    }
                    shards[shard_a].resync_slot(slot_a, kind);
                    shards[shard_b].resync_slot(slot_b, kind);
                }
            }
            next_seq += survivors;
            start = end;
        }

        let outs = shards
            .iter_mut()
            .zip(tallies)
            .map(|(shard, tally)| {
                end_of_cycle_pass_soa(shard, tally, kind, cycles_per_epoch, redundancy)
            })
            .collect();
        (outs, exchanges_blocked)
    }

    /// Multi-worker executor: the deterministic round/mailbox protocol from
    /// the module docs, with the shards partitioned into contiguous chunks
    /// over the worker threads.
    fn run_cycle_threaded(&mut self, loss: f64) -> (Vec<ShardCycleOut>, usize) {
        let (rounds, exchanges_blocked) = self.build_schedule();
        let shard_count = self.config.shards;
        let workers = self.effective_workers();
        let redundancy = self.config.base.redundancy.map(|r| r.merge);
        let loss_seed_base = self.seeds.seed_for_labeled(self.cycle as u64, "cycle-loss");

        let mut outs: Vec<ShardCycleOut> =
            (0..shard_count).map(|_| ShardCycleOut::default()).collect();
        let barrier = Barrier::new(workers);
        let (push_txs, push_rxs): (Vec<_>, Vec<_>) = (0..shard_count)
            .map(|_| crossbeam::channel::unbounded::<Vec<CrossPush>>())
            .unzip();
        let (reply_txs, reply_rxs): (Vec<_>, Vec<_>) = (0..shard_count)
            .map(|_| crossbeam::channel::unbounded::<Vec<CrossReply>>())
            .unzip();

        // Contiguous shard chunks per worker, sized as evenly as possible.
        let base_chunk = shard_count / workers;
        let remainder = shard_count % workers;
        let sched = &self.sched;
        std::thread::scope(|scope| {
            let mut shards_rest = self.shards.as_mut_slice();
            let mut outs_rest = outs.as_mut_slice();
            let mut rx_rest: Vec<_> = push_rxs.into_iter().zip(reply_rxs).collect();
            let mut first_shard = 0usize;
            for worker in 0..workers {
                let chunk_len = base_chunk + usize::from(worker < remainder);
                let (shards_chunk, tail) = shards_rest.split_at_mut(chunk_len);
                shards_rest = tail;
                let (outs_chunk, tail) = outs_rest.split_at_mut(chunk_len);
                outs_rest = tail;
                let receivers: Vec<_> = rx_rest.drain(..chunk_len).collect();
                let push_txs = push_txs.clone();
                let reply_txs = reply_txs.clone();
                let barrier = &barrier;
                let chunk_start = first_shard;
                first_shard += chunk_len;
                scope.spawn(move || {
                    run_shard_worker(ShardWorker {
                        chunk_start,
                        shards_chunk,
                        outs_chunk,
                        receivers,
                        sched,
                        rounds,
                        shard_count,
                        loss,
                        loss_seed_base,
                        redundancy,
                        barrier,
                        push_txs,
                        reply_txs,
                    });
                });
            }
        });
        (outs, exchanges_blocked)
    }

    /// Derives the cycle's exchange schedule and its round structure,
    /// returning `(rounds, exchanges_blocked)`. All RNG draws here run over
    /// global directory positions — shard-count agnostic by construction —
    /// and the fault lab's link vetoes are applied right after each peer
    /// pick, so workers only ever see surviving exchanges.
    fn build_schedule(&mut self) -> (usize, usize) {
        let n = self.global_live.len();
        let shard_count = self.config.shards;
        let cycle = self.cycle;
        let ShardedSimulation {
            seeds,
            sched,
            sampler,
            global_live,
            shards,
            injector,
            telemetry,
            ..
        } = self;
        let record = telemetry.events_enabled();
        let mut rng = seeds.rng_for_labeled(cycle as u64, "cycle-schedule");

        sched.order.clear();
        sched.order.extend(0..n as u32);
        sched.order.shuffle(&mut rng);
        sched.exchanges.clear();
        sched.next_round.clear();
        sched.next_round.resize(n, 0);

        let mut rounds = 0u32;
        let mut exchanges_blocked = 0usize;
        if n >= 2 {
            sched.exchanges.reserve(n);
            for i in 0..n {
                let ipos = sched.order[i];
                let directory = GlobalDirectory {
                    live: global_live,
                    shards,
                };
                let Some(peer_id) =
                    sample_live_peer(sampler.as_mut(), &directory, ipos as usize, &mut rng)
                else {
                    continue;
                };
                if injector.link_blocked(global_live[ipos as usize], peer_id) {
                    sampler.peer_failed(global_live[ipos as usize], peer_id);
                    exchanges_blocked += 1;
                    if record {
                        telemetry.exchange_vetoed(
                            u64::from(ipos),
                            u64::from(global_pos_of(shards, peer_id)),
                        );
                    }
                    continue;
                }
                let ppos = global_pos_of(shards, peer_id);
                let round = sched.next_round[ipos as usize].max(sched.next_round[ppos as usize]);
                sched.next_round[ipos as usize] = round + 1;
                sched.next_round[ppos as usize] = round + 1;
                rounds = rounds.max(round + 1);
                if record {
                    // The schedule index IS the global sequence number the
                    // workers key their loss draws (and loss/completion
                    // events) on.
                    telemetry.exchange_begun(
                        sched.exchanges.len() as u64,
                        u64::from(ipos),
                        u64::from(ppos),
                    );
                }
                sched.exchanges.push(ScheduledExchange {
                    initiator: global_live[ipos as usize],
                    peer: peer_id,
                    round,
                });
            }
        }

        // Counting sort of the exchanges into (round, initiator-shard)
        // buckets, preserving global sequence order within each bucket.
        let buckets = rounds as usize * shard_count;
        sched.bucket_starts.clear();
        sched.bucket_starts.resize(buckets + 1, 0);
        for ex in &sched.exchanges {
            let b = ex.round as usize * shard_count + IdLayout::shard_of(ex.initiator) as usize;
            sched.bucket_starts[b + 1] += 1;
        }
        for b in 0..buckets {
            sched.bucket_starts[b + 1] += sched.bucket_starts[b];
        }
        let mut cursors: Vec<u32> = sched.bucket_starts[..buckets].to_vec();
        sched.bucket_items.clear();
        sched.bucket_items.resize(sched.exchanges.len(), 0);
        for (i, ex) in sched.exchanges.iter().enumerate() {
            let b = ex.round as usize * shard_count + IdLayout::shard_of(ex.initiator) as usize;
            sched.bucket_items[cursors[b] as usize] = i as u32;
            cursors[b] += 1;
        }
        (rounds as usize, exchanges_blocked)
    }

    /// Leader (re-)election for the counting instances, run over the global
    /// directory with an election-ordinal-derived stream — identical draws
    /// for every shard count.
    fn elect_leaders(&mut self) {
        // A new epoch starts: last epoch's captured leaders died with their
        // instances.
        self.adversary.begin_epoch();
        if let Some(redundancy) = self.config.base.redundancy {
            // Elections read and mutate nodes directly; sync the mirror back
            // first.
            self.flush_soa();
            self.elect_redundant_leaders(redundancy.instances);
            return;
        }
        let Some(policy) = self.config.base.leader_policy else {
            return;
        };
        // Elections read and mutate nodes directly; sync the mirror back
        // first. Averaging-only runs (no leader policy) never reach this, so
        // the hot store stays resident across their epoch boundaries.
        self.flush_soa();
        let previous = self.last_size_estimate;
        // stream: epoch-boundary leader elections
        let mut rng = self.seeds.rng_for_labeled(self.elections, "election");
        self.elections += 1;
        let mut any_leader = false;
        for pos in 0..self.global_live.len() {
            let id = self.global_live[pos];
            let shard = IdLayout::shard_of(id) as usize;
            if let Some(node) = self.shards[shard].arena.get_mut(id) {
                if size_estimation::elect_leader(node, policy, previous, &mut rng) {
                    any_leader = true;
                    self.adversary.observe_leader(id);
                    if self.telemetry.events_enabled() {
                        self.telemetry.leader_elected(pos as u64);
                    }
                }
            }
        }
        // Guarantee progress exactly as the reference engine does: promote
        // the first live node (global order — shard-count invariant).
        if !any_leader {
            if let Some(&id) = self.global_live.first() {
                let shard = IdLayout::shard_of(id) as usize;
                if let Some(node) = self.shards[shard].arena.get_mut(id) {
                    node.start_led_instance(InstanceTag::from_leader(node.id()), 1.0);
                    self.adversary.observe_leader(id);
                    if self.telemetry.events_enabled() {
                        self.telemetry.leader_elected(0);
                    }
                }
            }
        }
    }

    /// The redundant-instance election, draw-for-draw identical to the
    /// reference engine's: exactly `min(k, live)` distinct leaders per
    /// epoch, chosen by a partial Fisher–Yates over global directory
    /// positions from the `redundancy-leaders` stream. Positions — not
    /// identifiers — feed the draws, so the elected positions are invariant
    /// across shard and worker counts.
    fn elect_redundant_leaders(&mut self, instances: usize) {
        let live = self.global_live.len();
        if live == 0 {
            return;
        }
        let k = instances.min(live);
        let mut rng = self
            .seeds
            .rng_for_labeled(self.elections, crate::sampling::REDUNDANCY_STREAM);
        self.elections += 1;
        let mut positions: Vec<u32> = (0..live as u32).collect();
        for i in 0..k {
            let j = rng.gen_range(i..live);
            positions.swap(i, j);
        }
        for &pos in &positions[..k] {
            let id = self.global_live[pos as usize];
            let shard = IdLayout::shard_of(id) as usize;
            if let Some(node) = self.shards[shard].arena.get_mut(id) {
                node.start_led_instance(
                    InstanceTag::from_leader(id),
                    CountInit::initial_value(true),
                );
                self.adversary.observe_leader(id);
                if self.telemetry.events_enabled() {
                    self.telemetry.leader_elected(u64::from(pos));
                }
            }
        }
    }
}

/// Renders a run's per-cycle telemetry as a [`gossip_analysis::Table`] —
/// one row per cycle with the peer-sampling layer the run drew partners
/// from, throughput-relevant counters, the merged estimate statistics and
/// the per-shard load split. `Table::to_csv` / `Table::write_csv` turn it
/// into the artifact the bench harness and the million-node example record
/// (the `sampler` column is what keeps complete-graph and NEWSCAST runs
/// distinguishable in archived CSVs).
pub fn cycle_telemetry_table(
    summaries: &[ShardedCycleSummary],
    sampler: SamplerConfig,
) -> gossip_analysis::Table {
    let mut table = gossip_analysis::Table::new(vec![
        "cycle",
        "sampler",
        "live_nodes",
        "exchanges",
        "messages_lost",
        "exchanges_blocked",
        "estimate_mean",
        "estimate_variance",
        "completed_epoch",
        "shard_exchanges",
    ]);
    for summary in summaries {
        table.add_row(vec![
            summary.cycle.to_string(),
            sampler.to_string(),
            summary.live_nodes.to_string(),
            summary.exchanges.to_string(),
            summary.messages_lost.to_string(),
            summary.exchanges_blocked.to_string(),
            format!("{:.9e}", summary.estimate_mean),
            format!("{:.9e}", summary.estimate_variance),
            summary
                .completed_epoch
                .map_or_else(|| "-".to_string(), |e| e.to_string()),
            summary
                .shard_exchanges
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("|"),
        ]);
    }
    table
}

/// Packs a node identifier's `(shard, slot)` into one word for the SoA
/// executor's pair list: shard in the high byte, slot (20 bits) below.
#[inline]
fn pack_endpoint(id: NodeId) -> u32 {
    (IdLayout::shard_of(id) << 24) | IdLayout::sharded_slot_of(id)
}

/// Inverse of [`pack_endpoint`].
#[inline]
fn unpack_endpoint(packed: u32) -> (usize, u32) {
    ((packed >> 24) as usize, packed & 0x00ff_ffff)
}

/// Disjoint mutable borrows of two distinct shards.
fn shard_pair_mut(shards: &mut [Shard], a: usize, b: usize) -> (&mut Shard, &mut Shard) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = shards.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = shards.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// End-of-cycle phase for one shard: epoch book-keeping on every live node,
/// then the telemetry pass — both shard-local, streamed into per-shard
/// stats. Shared verbatim by the sequential and threaded executors so their
/// outputs are bit-identical.
/// Per-node size-estimate extraction shared by the end-of-cycle passes:
/// the defended estimator (median-of-k / trimmed merge over per-instance
/// estimates) when redundancy is configured, the undefended state-pooling
/// estimator otherwise. Runs on shard workers, so the policy is threaded in
/// as a parameter rather than read from engine state.
fn epoch_size_estimate(
    result: &aggregate_core::EpochResult,
    redundancy: Option<MergePolicy>,
) -> Option<f64> {
    match redundancy {
        Some(merge) => redundant_size_estimate_from_epoch(result, merge).ok(),
        None => size_estimation::size_estimate_from_epoch(result),
    }
}

fn end_of_cycle_pass(
    shard: &mut Shard,
    tally: ExchangeTally,
    redundancy: Option<MergePolicy>,
) -> ShardCycleOut {
    let mut completed_epoch = None;
    let mut epoch_stats = OnlineStats::new();
    let mut size_stats = OnlineStats::new();
    let mut estimate_stats = OnlineStats::new();
    // One fused pass: tick the epoch machinery and read the (post-restart)
    // estimate while the node is cache-hot. Per-node independence makes this
    // bit-identical to a tick-all-then-read-all split in live order.
    for pos in 0..shard.arena.len() {
        let slot = shard.arena.live_slots()[pos];
        let Some(node) = shard.arena.node_at_slot_mut(slot) else {
            continue;
        };
        if let Some(result) = node.end_cycle() {
            completed_epoch = Some(match completed_epoch {
                Some(epoch) => std::cmp::max::<u64>(epoch, result.epoch),
                None => result.epoch,
            });
            if result.full_participation {
                if let Some(estimate) = result.default_estimate() {
                    epoch_stats.push(estimate);
                }
                if let Some(size) = epoch_size_estimate(&result, redundancy) {
                    size_stats.push(size);
                }
            }
        }
        if let Some(estimate) = node.estimate() {
            estimate_stats.push(estimate);
        }
    }
    ShardCycleOut {
        tally,
        completed_epoch,
        epoch_stats,
        size_stats,
        estimate_stats,
    }
}

/// End-of-cycle phase of the struct-of-arrays executor: hot nodes tick,
/// restart and report entirely inside the dense mirror; cold nodes take the
/// ordinary [`end_of_cycle_pass`] branch and are re-examined for promotion
/// afterwards (joining nodes whose epoch just started, ex-leaders whose led
/// instances just cleared). Iteration order, stat-push order and epoch
/// book-keeping replicate `ProtocolNode::end_cycle` exactly:
///
/// * a hot node participates from its epoch's start by definition, so a
///   completing epoch always pushes its (pre-restart) default estimate;
/// * a hot node runs only the default instance, so it never contributes a
///   network-size estimate (`size_estimate_from_epoch` ignores the default
///   instance — the size machinery is cold-path by construction);
/// * the post-cycle estimate is pushed after the restart, exactly as
///   `node.estimate()` reads post-`end_cycle` state.
fn end_of_cycle_pass_soa(
    shard: &mut Shard,
    tally: ExchangeTally,
    kind: AggregateKind,
    cycles_per_epoch: u32,
    redundancy: Option<MergePolicy>,
) -> ShardCycleOut {
    let mut completed_epoch = None;
    let mut epoch_stats = OnlineStats::new();
    let mut size_stats = OnlineStats::new();
    let mut estimate_stats = OnlineStats::new();
    for pos in 0..shard.arena.len() {
        let slot = shard.arena.live_slots()[pos];
        let hot = shard.hot.hot(slot).is_some();
        if hot {
            let restart = shard.hot.restart[slot as usize];
            let cycle = &mut shard.hot.cycles[slot as usize];
            *cycle += 1;
            let completing = *cycle >= cycles_per_epoch;
            if completing {
                *cycle = 0;
            }
            let record = &mut shard.hot.slots[slot as usize];
            let mut overflow = false;
            if completing {
                completed_epoch = Some(match completed_epoch {
                    Some(epoch) => std::cmp::max::<u64>(epoch, u64::from(record.key)),
                    None => u64::from(record.key),
                });
                epoch_stats.push(kind.estimate_value(record.state));
                record.state = restart;
                record.exchanges = 0;
                record.key += 1;
                overflow = record.key == soa::COLD;
            }
            estimate_stats.push(kind.estimate_value(record.state));
            if overflow {
                // The new epoch is not representable in the 16-byte record
                // (u32 epochs): hand the node back to the cold path.
                // Unreachable in any real run, but cheap to keep correct.
                let view = HotView {
                    state: restart,
                    epoch: u64::from(soa::COLD),
                    cycle_in_epoch: 0,
                    exchanges: 0,
                };
                shard.hot.mark_cold(slot);
                if let Some(node) = shard.arena.node_at_slot_mut(slot) {
                    node.restore_hot_view(view);
                }
            }
        } else {
            let Some(node) = shard.arena.node_at_slot_mut(slot) else {
                continue;
            };
            if let Some(result) = node.end_cycle() {
                completed_epoch = Some(match completed_epoch {
                    Some(epoch) => std::cmp::max::<u64>(epoch, result.epoch),
                    None => result.epoch,
                });
                if result.full_participation {
                    if let Some(estimate) = result.default_estimate() {
                        epoch_stats.push(estimate);
                    }
                    if let Some(size) = epoch_size_estimate(&result, redundancy) {
                        size_stats.push(size);
                    }
                }
            }
            if let Some(estimate) = node.estimate() {
                estimate_stats.push(estimate);
            }
            shard.resync_slot(slot, kind);
        }
    }
    ShardCycleOut {
        tally,
        completed_epoch,
        epoch_stats,
        size_stats,
        estimate_stats,
    }
}

/// A shard's mailbox receivers: push batches in, reply batches back.
type ShardReceivers = (
    crossbeam::channel::Receiver<Vec<CrossPush>>,
    crossbeam::channel::Receiver<Vec<CrossReply>>,
);

/// Everything one worker thread needs for one cycle: a contiguous chunk of
/// shards (with their output slots and mailbox receivers) plus the shared
/// schedule and channel fabric.
struct ShardWorker<'a> {
    chunk_start: usize,
    shards_chunk: &'a mut [Shard],
    outs_chunk: &'a mut [ShardCycleOut],
    receivers: Vec<ShardReceivers>,
    sched: &'a ScheduleBuffers,
    rounds: usize,
    shard_count: usize,
    /// The cycle's effective message-loss probability (coordinator-computed
    /// by the fault injector; constant within a cycle).
    loss: f64,
    loss_seed_base: u64,
    /// Merge policy of the redundant-instance defense, `None` for the
    /// undefended estimator (coordinator-computed; workers must not read
    /// engine state).
    redundancy: Option<MergePolicy>,
    barrier: &'a Barrier,
    push_txs: Vec<crossbeam::channel::Sender<Vec<CrossPush>>>,
    reply_txs: Vec<crossbeam::channel::Sender<Vec<CrossReply>>>,
}

/// Records exchange `seq`'s outcome — per-message loss events, or a single
/// completion event when every message survived — from the [`ExchangeTally`]
/// deltas around the `ExchangeCore` call. The deltas are a pure function of
/// the exchange's private loss-coin stream, so every executor derives the
/// identical event set regardless of which shard's ring receives it (the
/// events carry no identity; the seq-sorted merge restores one total order).
/// A delta of zero exchanges means the exchange never began (e.g. a joining
/// initiator) and nothing is recorded.
fn record_exchange_outcome(recorder: &mut FlightRecorder, seq: u64, began: bool, lost: usize) {
    if !recorder.is_enabled() || !began {
        return;
    }
    if lost == 0 {
        recorder.record(seq, EventKind::ExchangeCompleted);
    } else {
        for _ in 0..lost {
            recorder.record(seq, EventKind::MessageLost);
        }
    }
}

fn run_shard_worker(ctx: ShardWorker<'_>) {
    let ShardWorker {
        chunk_start,
        shards_chunk,
        outs_chunk,
        receivers,
        sched,
        rounds,
        shard_count,
        loss,
        loss_seed_base,
        redundancy,
        barrier,
        push_txs,
        reply_txs,
    } = ctx;
    let lossy = loss > 0.0;
    let loss_seeds = SeedSequence::new(loss_seed_base);
    let seed_of = |seq: u32| {
        if lossy {
            loss_seeds.seed_for_run(seq as u64)
        } else {
            0
        }
    };

    let mut scratch = ExchangeScratch::new();
    let mut tallies = vec![ExchangeTally::default(); shards_chunk.len()];
    let mut begin_buf: Vec<GossipMessage> = Vec::new();
    let mut msg_buf: Vec<GossipMessage> = Vec::new();
    let mut reply_buf: Vec<GossipMessage> = Vec::new();
    let mut push_out: Vec<Vec<CrossPush>> = (0..shard_count).map(|_| Vec::new()).collect();
    let mut reply_out: Vec<Vec<CrossReply>> = (0..shard_count).map(|_| Vec::new()).collect();
    let mut in_pushes: Vec<CrossPush> = Vec::new();
    let mut in_replies: Vec<CrossReply> = Vec::new();

    for round in 0..rounds {
        // Phase A: local exchanges run fused; cross-shard exchanges begin
        // and batch their pushes into the peer shard's mailbox. A pair whose
        // endpoints live in two shards of *this* worker's chunk still goes
        // through the mailbox, keeping the protocol uniform.
        for (local, shard) in shards_chunk.iter_mut().enumerate() {
            let me = chunk_start + local;
            let tally = &mut tallies[local];
            for &ei in sched.bucket(round, me, shard_count) {
                let ex = sched.exchanges[ei as usize];
                let initiator_slot = IdLayout::sharded_slot_of(ex.initiator);
                let peer_shard = IdLayout::shard_of(ex.peer) as usize;
                if peer_shard == me {
                    let peer_slot = IdLayout::sharded_slot_of(ex.peer);
                    let (Some(initiator), Some(peer)) =
                        shard.arena.pair_mut(initiator_slot, peer_slot)
                    else {
                        continue;
                    };
                    let mut lost = exchange_loss(loss, seed_of(ei));
                    let exch_before = tally.exchanges;
                    let lost_before = tally.messages_lost;
                    ExchangeCore::exchange(initiator, peer, &mut scratch, &mut lost, tally);
                    record_exchange_outcome(
                        &mut shard.recorder,
                        u64::from(ei),
                        tally.exchanges > exch_before,
                        tally.messages_lost - lost_before,
                    );
                } else {
                    let Some(initiator) = shard.arena.node_at_slot_mut(initiator_slot) else {
                        continue;
                    };
                    if ExchangeCore::begin(initiator, ex.peer, &mut begin_buf) {
                        tally.exchanges += 1;
                        push_out[peer_shard].push(CrossPush {
                            seq: ei,
                            initiator: ex.initiator,
                            peer_slot: IdLayout::sharded_slot_of(ex.peer),
                            first: begin_buf[0],
                            rest: begin_buf[1..].to_vec(),
                        });
                    }
                }
            }
        }
        for (dst, buf) in push_out.iter_mut().enumerate() {
            if !buf.is_empty() {
                push_txs[dst]
                    .send(std::mem::take(buf))
                    // lint-allow(unwrap): receivers outlive the cycle's thread scope by construction
                    .expect("peer shard receiver lives for the whole cycle");
            }
        }
        barrier.wait();

        // Phase B: drain each owned shard's mailbox (complete after the
        // barrier), flatten the batches and restore the fixed merge order —
        // a total order by global sequence number — then absorb pushes and
        // batch replies back. (Within a round node-disjointness already
        // makes the node state order-independent; the total order keeps the
        // execution auditable and future-proofs any per-shard state
        // consulted during the merge.)
        for (local, shard) in shards_chunk.iter_mut().enumerate() {
            let tally = &mut tallies[local];
            in_pushes.clear();
            while let Ok(batch) = receivers[local].0.try_recv() {
                in_pushes.extend(batch);
            }
            in_pushes.sort_unstable_by_key(|cross| cross.seq);
            for cross in &in_pushes {
                let Some(peer) = shard.arena.node_at_slot_mut(cross.peer_slot) else {
                    continue;
                };
                msg_buf.clear();
                msg_buf.push(cross.first);
                msg_buf.extend_from_slice(&cross.rest);
                reply_buf.clear();
                let mut lost = exchange_loss(loss, seed_of(cross.seq));
                let lost_before = tally.messages_lost;
                ExchangeCore::respond(peer, &msg_buf, &mut reply_buf, &mut lost, tally);
                // Every loss draw of a cross-shard exchange happens inside
                // `respond` (push coins, then reply coins); the initiator's
                // `complete` draws none. `began` is unconditionally true —
                // the push batch only exists because `begin` succeeded.
                record_exchange_outcome(
                    &mut shard.recorder,
                    u64::from(cross.seq),
                    true,
                    tally.messages_lost - lost_before,
                );
                if !reply_buf.is_empty() {
                    let initiator_shard = IdLayout::shard_of(cross.initiator) as usize;
                    reply_out[initiator_shard].push(CrossReply {
                        seq: cross.seq,
                        initiator_slot: IdLayout::sharded_slot_of(cross.initiator),
                        first: reply_buf[0],
                        rest: reply_buf[1..].to_vec(),
                    });
                }
            }
        }
        for (dst, buf) in reply_out.iter_mut().enumerate() {
            if !buf.is_empty() {
                reply_txs[dst]
                    .send(std::mem::take(buf))
                    // lint-allow(unwrap): receivers outlive the cycle's thread scope by construction
                    .expect("initiator shard receiver lives for the whole cycle");
            }
        }
        barrier.wait();

        // Phase C: initiators absorb the surviving replies, in merge order.
        for (local, shard) in shards_chunk.iter_mut().enumerate() {
            in_replies.clear();
            while let Ok(batch) = receivers[local].1.try_recv() {
                in_replies.extend(batch);
            }
            in_replies.sort_unstable_by_key(|cross| cross.seq);
            for cross in &in_replies {
                let Some(initiator) = shard.arena.node_at_slot_mut(cross.initiator_slot) else {
                    continue;
                };
                msg_buf.clear();
                msg_buf.push(cross.first);
                msg_buf.extend_from_slice(&cross.rest);
                ExchangeCore::complete(initiator, &msg_buf);
            }
        }
        barrier.wait();
    }

    for ((shard, out), tally) in shards_chunk
        .iter_mut()
        .zip(outs_chunk.iter_mut())
        .zip(tallies)
    {
        *out = end_of_cycle_pass(shard, tally, redundancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetworkConditions;
    use aggregate_core::config::LateJoinPolicy;
    use aggregate_core::size_estimation::LeaderPolicy;
    use aggregate_core::ProtocolConfig;

    fn averaging(shards: usize, cycles_per_epoch: u32) -> ShardedConfig {
        ShardedConfig::averaging(
            ProtocolConfig::builder()
                .cycles_per_epoch(cycles_per_epoch)
                .build()
                .unwrap(),
            shards,
        )
    }

    #[test]
    fn validation_rejects_bad_shard_counts_and_inputs() {
        let values = [1.0, 2.0];
        assert_eq!(
            ShardedSimulation::new(averaging(0, 10), &values, 1).err(),
            Some(SimConfigError::ZeroShards)
        );
        assert_eq!(
            ShardedSimulation::new(averaging(17, 10), &values, 1).err(),
            Some(SimConfigError::TooManyShards {
                shards: 17,
                max: MAX_SHARDS,
            })
        );
        assert_eq!(
            ShardedSimulation::new(averaging(2, 10), &[], 1).err(),
            Some(SimConfigError::ZeroNodes)
        );
        assert!(matches!(
            ShardedSimulation::new(averaging(2, 10), &[1.0, f64::NAN], 1).err(),
            Some(SimConfigError::NonFiniteInitialValue { index: 1, .. })
        ));
    }

    #[test]
    fn estimates_converge_to_the_true_average_across_shards() {
        let values: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = ShardedSimulation::new(averaging(4, 40), &values, 1).unwrap();
        let summaries = sim.run(20);
        let last = summaries.last().unwrap();
        assert!(
            last.estimate_variance < 1e-4,
            "variance {}",
            last.estimate_variance
        );
        assert!((last.estimate_mean - true_mean).abs() < 1e-6);
        assert_eq!(sim.live_count(), 500);
        assert_eq!(sim.cycle(), 20);
        assert_eq!(last.exchanges, 500);
        // Round-robin placement keeps the shards balanced.
        assert_eq!(sim.shard_live_counts(), vec![125; 4]);
        assert_eq!(last.shard_exchanges.iter().sum::<usize>(), 500);
    }

    #[test]
    fn variance_reduction_matches_the_sequential_rate() {
        // The sharded engine realises the same GETPAIR_SEQ schedule as the
        // reference engine, so the per-cycle variance reduction must hover
        // around 1/(2√e) ≈ 0.303 on the complete overlay.
        let values: Vec<f64> = (0..5_000).map(|i| (i % 100) as f64).collect();
        let mut sim = ShardedSimulation::new(averaging(4, 100), &values, 7).unwrap();
        let summaries = sim.run(8);
        let mut factors = Vec::new();
        for pair in summaries.windows(2) {
            if pair[0].estimate_variance > 1e-12 {
                factors.push(pair[1].estimate_variance / pair[0].estimate_variance);
            }
        }
        let mean_factor = factors.iter().sum::<f64>() / factors.len() as f64;
        assert!(
            (mean_factor - aggregate_core::theory::seq_rate()).abs() < 0.06,
            "mean per-cycle reduction {mean_factor}"
        );
    }

    #[test]
    fn mean_is_preserved_without_failures() {
        let values: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = ShardedSimulation::new(averaging(3, 50), &values, 3).unwrap();
        for summary in sim.run(10) {
            assert!(
                (summary.estimate_mean - true_mean).abs() < 1e-9,
                "cycle {}: mean drifted to {}",
                summary.cycle,
                summary.estimate_mean
            );
            assert_eq!(summary.exchanges, 200);
            assert_eq!(summary.messages_lost, 0);
        }
    }

    #[test]
    fn message_loss_is_deterministic_and_does_not_prevent_convergence() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let config = ShardedConfig {
            base: SimulationConfig {
                conditions: NetworkConditions::with_message_loss(0.2),
                ..SimulationConfig::averaging(
                    ProtocolConfig::builder()
                        .cycles_per_epoch(100)
                        .build()
                        .unwrap(),
                )
            },
            shards: 2,
            workers: None,
        };
        let mut sim = ShardedSimulation::new(config, &values, 11).unwrap();
        let summaries = sim.run(15);
        assert!(summaries.iter().any(|s| s.messages_lost > 0));
        let last = summaries.last().unwrap();
        assert!(
            last.estimate_variance < 1.0,
            "got {}",
            last.estimate_variance
        );
    }

    #[test]
    fn epochs_complete_and_report_converged_estimates() {
        let values = vec![0.0, 10.0, 20.0, 30.0];
        let mut sim = ShardedSimulation::new(averaging(2, 10), &values, 5).unwrap();
        let mut epoch_seen = false;
        for summary in sim.run(10) {
            if let Some(epoch) = summary.completed_epoch {
                assert_eq!(epoch, 0);
                assert_eq!(summary.epoch_estimates.count(), 4);
                assert!((summary.epoch_estimates.mean() - 15.0).abs() < 0.5);
                epoch_seen = true;
            }
        }
        assert!(epoch_seen, "an epoch must complete after 10 cycles");
    }

    #[test]
    fn size_estimation_tracks_the_population() {
        let n = 400;
        let config = ShardedConfig {
            base: SimulationConfig {
                protocol: ProtocolConfig::builder()
                    .cycles_per_epoch(25)
                    .late_join(LateJoinPolicy::FixedState(0.0))
                    .build()
                    .unwrap(),
                conditions: NetworkConditions::reliable(),
                leader_policy: Some(LeaderPolicy::Fixed { probability: 0.01 }),
                sampler: SamplerConfig::UniformComplete,
                redundancy: None,
            },
            shards: 4,
            workers: None,
        };
        let mut sim = ShardedSimulation::new(config, &vec![0.0; n], 19).unwrap();
        let summaries = sim.run(25);
        let last = summaries.last().unwrap();
        assert_eq!(last.completed_epoch, Some(0));
        assert!(last.epoch_size_estimates.count() > 0);
        let mean = last.epoch_size_estimates.mean();
        assert!(
            (mean - n as f64).abs() < n as f64 * 0.05,
            "size estimate {mean} should be ≈ {n}"
        );
        assert!(sim.last_size_estimate().is_some());
    }

    #[test]
    fn churn_routes_to_shards_and_keeps_arenas_bounded() {
        let values = vec![0.0; 200];
        let mut sim = ShardedSimulation::new(averaging(4, 10), &values, 43).unwrap();
        for _ in 0..50 {
            for _ in 0..5 {
                sim.add_node(0.0);
            }
            assert_eq!(sim.remove_random_nodes(5), 5);
            sim.run_cycle();
        }
        assert_eq!(sim.live_count(), 200);
        assert!(
            sim.slot_capacity() <= 205,
            "slot capacity {} must stay bounded",
            sim.slot_capacity()
        );
        // The load balancer keeps shard sizes within the churn amplitude.
        let counts = sim.shard_live_counts();
        assert!(counts.iter().all(|&c| (40..=60).contains(&c)), "{counts:?}");
    }

    #[test]
    fn joining_nodes_wait_for_the_next_epoch() {
        let values = vec![5.0; 20];
        let mut sim = ShardedSimulation::new(averaging(2, 6), &values, 13).unwrap();
        sim.run(2);
        let newcomer = sim.add_node(500.0);
        assert_eq!(sim.live_count(), 21);
        for summary in sim.run(4) {
            if summary.completed_epoch.is_some() {
                assert!((summary.epoch_estimates.mean() - 5.0).abs() < 1e-9);
            }
        }
        let summaries = sim.run(6);
        let completed: Vec<_> = summaries
            .iter()
            .filter(|s| s.completed_epoch.is_some())
            .collect();
        assert!(!completed.is_empty());
        let expected = (5.0 * 20.0 + 500.0) / 21.0;
        let mean = completed.last().unwrap().epoch_estimates.mean();
        assert!(
            (mean - expected).abs() < 1e-6,
            "epoch mean {mean} must equal the new true average {expected}"
        );
        assert!(sim.node(newcomer).is_some());
    }

    #[test]
    fn remove_node_rejects_stale_ids_after_slot_reuse() {
        let values = vec![1.0; 10];
        let mut sim = ShardedSimulation::new(averaging(2, 5), &values, 41).unwrap();
        let victim = *sim.global_live.first().unwrap();
        assert!(sim.remove_node(victim));
        assert!(!sim.remove_node(victim));
        assert_eq!(sim.free_slot_count(), 1);
        let newcomer = sim.add_node(2.0);
        // The join reclaimed the freed slot instead of growing the arenas…
        assert_eq!(sim.slot_capacity(), 10);
        // …and the stale identifier does not alias the new occupant.
        assert_ne!(victim, newcomer);
        assert!(sim.node(victim).is_none());
        assert!(sim.node(newcomer).is_some());
        assert_eq!(sim.live_count(), 10);
    }

    #[test]
    fn empty_fault_plan_is_identical_to_the_plain_constructor() {
        let values: Vec<f64> = (0..200).map(|i| (i % 13) as f64).collect();
        let config = averaging(3, 10);
        let mut plain = ShardedSimulation::new(config, &values, 7).unwrap();
        let mut faulted =
            ShardedSimulation::with_faults(config, &values, 7, FaultPlan::none()).unwrap();
        assert_eq!(plain.run(12), faulted.run(12));
    }

    #[test]
    fn fault_plans_are_worker_count_invariant() {
        // Link vetoes happen at schedule construction (coordinator), loss is
        // a per-cycle scalar: the sequential and threaded executors must
        // produce bit-identical summaries under a non-trivial plan.
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let plan = FaultPlan {
            link_failure: 0.2,
            base_loss: 0.05,
            ..FaultPlan::with_partition(3, 8, 0.3)
        };
        let run = |workers: Option<usize>| {
            let config = ShardedConfig {
                workers,
                ..averaging(4, 50)
            };
            let mut sim =
                ShardedSimulation::with_faults(config, &values, 41, plan.clone()).unwrap();
            let summaries = sim.run(12);
            let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
            (summaries, bits)
        };
        let (reference, reference_bits) = run(Some(1));
        assert!(reference.iter().any(|s| s.exchanges_blocked > 0));
        for workers in [2, 4] {
            let (summaries, bits) = run(Some(workers));
            assert_eq!(summaries, reference, "{workers}-worker faulted run differs");
            assert_eq!(bits, reference_bits);
        }
    }

    #[test]
    fn dead_links_block_exchanges_and_the_sharded_engine_still_converges() {
        let values: Vec<f64> = (0..400).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let plan = FaultPlan::with_link_failure(0.2);
        let mut sim = ShardedSimulation::with_faults(averaging(4, 100), &values, 11, plan).unwrap();
        let summaries = sim.run(25);
        let blocked: usize = summaries.iter().map(|s| s.exchanges_blocked).sum();
        let attempted: usize = summaries.iter().map(|s| s.exchanges).sum::<usize>() + blocked;
        let blocked_rate = blocked as f64 / attempted as f64;
        assert!(
            (blocked_rate - 0.2).abs() < 0.03,
            "blocked rate {blocked_rate} should track the dead-link probability"
        );
        let last = summaries.last().unwrap();
        assert!(last.estimate_variance < 1e-3, "{}", last.estimate_variance);
        assert!((last.estimate_mean - true_mean).abs() < 1e-6);
    }

    #[test]
    fn crash_bursts_fire_inside_the_cycle_and_shrink_the_population() {
        let values = vec![0.0; 300];
        let plan = FaultPlan::with_crash_burst(4, 0.3);
        let mut sim = ShardedSimulation::with_faults(averaging(2, 10), &values, 19, plan).unwrap();
        let summaries = sim.run(6);
        assert_eq!(summaries[3].live_nodes, 300, "burst must not fire early");
        assert_eq!(summaries[4].live_nodes, 300 - 90, "30% burst at cycle 4");
        assert_eq!(summaries[5].live_nodes, 210);
        assert_eq!(sim.live_count(), 210);
    }

    #[test]
    fn tiny_networks_do_not_panic() {
        let mut sim = ShardedSimulation::new(averaging(2, 3), &[1.0], 29).unwrap();
        let summary = sim.run_cycle();
        assert_eq!(summary.exchanges, 0);
        assert_eq!(summary.live_nodes, 1);
        assert_eq!(sim.estimates(), vec![1.0]);
    }
}
