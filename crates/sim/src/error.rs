//! Typed configuration and run errors for the simulation engines.

use aggregate_core::AggregationError;
use std::fmt;

/// A rejected simulation configuration.
///
/// Mirrors the [`crate::AsyncConfigError`] pattern of the event-driven
/// engine: every constructor that can be handed nonsense validates at
/// construction and reports *which* parameter was rejected, instead of
/// producing NaN telemetry or a wedged run thousands of cycles later.
#[derive(Debug, Clone, PartialEq)]
pub enum SimConfigError {
    /// The initial population is empty.
    ZeroNodes,
    /// A run of zero cycles was requested.
    ZeroCycles,
    /// An initial value is NaN or infinite — it would poison every estimate
    /// it is ever averaged into.
    NonFiniteInitialValue {
        /// Position of the rejected value in the initial-value slice.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// The failure conditions are not valid probabilities.
    InvalidConditions {
        /// The rejected message-loss probability.
        message_loss: f64,
        /// The rejected crash fraction.
        crash_fraction: f64,
    },
    /// A sharded engine with zero shards was requested.
    ZeroShards,
    /// An explicit worker-thread count of zero was requested.
    ZeroWorkers,
    /// More shards than the [`crate::arena::IdLayout`] shard bits can
    /// address.
    TooManyShards {
        /// The rejected shard count.
        shards: usize,
        /// The maximum supported shard count.
        max: usize,
    },
    /// The initial population does not fit in the configured shards' slot
    /// space.
    PopulationExceedsCapacity {
        /// The rejected population size.
        nodes: usize,
        /// Total slots addressable by the configured shard count.
        capacity: usize,
    },
    /// The peer-sampling configuration cannot be realised (invalid overlay
    /// generator parameters, zero NEWSCAST cache, unknown variant).
    Sampler {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The fault schedule is malformed (a probability out of range, an empty
    /// partition window, a reversed loss ramp, …).
    Faults {
        /// Human-readable rejection reason (from
        /// [`gossip_faults::FaultPlanError`]).
        reason: String,
    },
    /// The adversary plan is malformed (collusion fraction out of range, a
    /// non-finite attack value, an empty attack window, …).
    Adversary {
        /// Human-readable rejection reason (from
        /// [`gossip_faults::AdversaryPlanError`]).
        reason: String,
    },
    /// The redundancy configuration is degenerate (zero instances, or a
    /// trimmed merge that discards every report).
    Redundancy {
        /// Human-readable rejection reason (from
        /// [`aggregate_core::ReportError`]).
        reason: String,
    },
}

impl From<gossip_faults::FaultPlanError> for SimConfigError {
    fn from(e: gossip_faults::FaultPlanError) -> Self {
        SimConfigError::Faults {
            reason: e.to_string(),
        }
    }
}

impl From<gossip_faults::AdversaryPlanError> for SimConfigError {
    fn from(e: gossip_faults::AdversaryPlanError) -> Self {
        SimConfigError::Adversary {
            reason: e.to_string(),
        }
    }
}

impl From<aggregate_core::ReportError> for SimConfigError {
    fn from(e: aggregate_core::ReportError) -> Self {
        SimConfigError::Redundancy {
            reason: e.to_string(),
        }
    }
}

impl fmt::Display for SimConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimConfigError::ZeroNodes => write!(f, "initial population must not be empty"),
            SimConfigError::ZeroCycles => write!(f, "a run must simulate at least one cycle"),
            SimConfigError::NonFiniteInitialValue { index, value } => {
                write!(f, "initial value #{index} is {value}, which is not finite")
            }
            SimConfigError::InvalidConditions {
                message_loss,
                crash_fraction,
            } => write!(
                f,
                "network conditions invalid: message loss {message_loss} and crash fraction \
                 {crash_fraction} must be probabilities in [0, 1]"
            ),
            SimConfigError::ZeroShards => write!(f, "sharded engine needs at least one shard"),
            SimConfigError::ZeroWorkers => {
                write!(f, "sharded engine needs at least one worker thread")
            }
            SimConfigError::TooManyShards { shards, max } => {
                write!(
                    f,
                    "{shards} shards exceed the {max} the NodeId layout can address"
                )
            }
            SimConfigError::PopulationExceedsCapacity { nodes, capacity } => {
                write!(
                    f,
                    "{nodes} initial nodes exceed the {capacity} slots the configured shards \
                     can address"
                )
            }
            SimConfigError::Sampler { ref reason } => {
                write!(f, "peer-sampling configuration rejected: {reason}")
            }
            SimConfigError::Faults { ref reason } => {
                write!(f, "fault schedule rejected: {reason}")
            }
            SimConfigError::Adversary { ref reason } => {
                write!(f, "adversary plan rejected: {reason}")
            }
            SimConfigError::Redundancy { ref reason } => {
                write!(f, "redundancy configuration rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for SimConfigError {}

/// Validates an initial-value population: non-empty and finite throughout.
///
/// # Errors
///
/// [`SimConfigError::ZeroNodes`] or
/// [`SimConfigError::NonFiniteInitialValue`].
pub(crate) fn validate_initial_values(values: &[f64]) -> Result<(), SimConfigError> {
    if values.is_empty() {
        return Err(SimConfigError::ZeroNodes);
    }
    for (index, &value) in values.iter().enumerate() {
        if !value.is_finite() {
            return Err(SimConfigError::NonFiniteInitialValue { index, value });
        }
    }
    Ok(())
}

/// Any error a simulation run can produce: a rejected configuration or a
/// protocol-level error bubbled up from `aggregate-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The simulation configuration was rejected.
    Config(SimConfigError),
    /// The protocol configuration or execution failed.
    Protocol(AggregationError),
    /// A run finished without producing the measurement it was asked for
    /// (e.g. no size-estimation epoch completed inside the cycle budget).
    Incomplete(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "simulation configuration rejected: {e}"),
            SimError::Protocol(e) => write!(f, "protocol error: {e}"),
            SimError::Incomplete(reason) => write!(f, "measurement incomplete: {reason}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Protocol(e) => Some(e),
            SimError::Incomplete(_) => None,
        }
    }
}

impl From<SimConfigError> for SimError {
    fn from(e: SimConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<AggregationError> for SimError {
    fn from(e: AggregationError) -> Self {
        SimError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_validation_reports_the_offender() {
        assert_eq!(validate_initial_values(&[]), Err(SimConfigError::ZeroNodes));
        assert!(validate_initial_values(&[1.0, -2.5, 0.0]).is_ok());
        match validate_initial_values(&[0.0, f64::NAN]) {
            Err(SimConfigError::NonFiniteInitialValue { index: 1, value }) => {
                assert!(value.is_nan());
            }
            other => panic!("expected NonFiniteInitialValue, got {other:?}"),
        }
        assert_eq!(
            validate_initial_values(&[f64::INFINITY]),
            Err(SimConfigError::NonFiniteInitialValue {
                index: 0,
                value: f64::INFINITY,
            })
        );
    }

    #[test]
    fn errors_render_useful_messages() {
        for error in [
            SimConfigError::ZeroNodes,
            SimConfigError::ZeroCycles,
            SimConfigError::NonFiniteInitialValue {
                index: 3,
                value: f64::INFINITY,
            },
            SimConfigError::InvalidConditions {
                message_loss: 1.5,
                crash_fraction: 0.0,
            },
            SimConfigError::ZeroShards,
            SimConfigError::ZeroWorkers,
            SimConfigError::TooManyShards {
                shards: 99,
                max: 16,
            },
            SimConfigError::PopulationExceedsCapacity {
                nodes: 2_000_000,
                capacity: 1_048_576,
            },
            SimConfigError::Sampler {
                reason: "degree 50 too large".to_string(),
            },
            SimConfigError::Faults {
                reason: "link_failure 2 must be a probability in [0, 1]".to_string(),
            },
            SimConfigError::Adversary {
                reason: "collusion fraction 1.5 must be a probability in [0, 1]".to_string(),
            },
            SimConfigError::Redundancy {
                reason: "no instance reports to merge".to_string(),
            },
        ] {
            assert!(!error.to_string().is_empty());
            let wrapped = SimError::from(error);
            assert!(wrapped.to_string().contains("configuration rejected"));
            assert!(std::error::Error::source(&wrapped).is_some());
        }
        let protocol = SimError::from(AggregationError::invalid_config("boom"));
        assert!(protocol.to_string().contains("boom"));
    }
}
