//! Experiment runners: the parameterised procedures behind every figure and
//! table of the paper, shared by the benchmark harness, the examples and the
//! integration tests.

use crate::{
    ChurnSchedule, GossipSimulation, NetworkConditions, SeedSequence, ShardedConfig,
    ShardedSimulation, SimConfigError, SimError, SimulationConfig, ValueDistribution,
};
use aggregate_core::avg::{self, CycleReport};
use aggregate_core::config::LateJoinPolicy;
use aggregate_core::sampler::SamplerConfig;
use aggregate_core::size_estimation::LeaderPolicy;
use aggregate_core::{AggregationError, ProtocolConfig, SelectorKind};
use gossip_analysis::{Summary, Table};
use overlay_topology::{TopologyBuilder, TopologyKind};
use serde::{Deserialize, Serialize};

/// Parameters of a variance-reduction experiment (the setting of Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VarianceExperiment {
    /// Network size.
    pub nodes: usize,
    /// Overlay topology.
    pub topology: TopologyKind,
    /// Pair-selection strategy.
    pub selector: SelectorKind,
    /// Number of cycles of `AVG` to iterate.
    pub cycles: usize,
    /// Number of independent runs to average over (the paper uses 50).
    pub runs: usize,
    /// Initial value distribution.
    pub values: ValueDistribution,
    /// Master seed.
    pub seed: u64,
}

impl VarianceExperiment {
    /// The configuration used throughout Figure 3: uniform initial values and
    /// 50 runs.
    pub fn figure3(
        nodes: usize,
        topology: TopologyKind,
        selector: SelectorKind,
        cycles: usize,
        runs: usize,
        seed: u64,
    ) -> Self {
        VarianceExperiment {
            nodes,
            topology,
            selector,
            cycles,
            runs,
            values: ValueDistribution::Uniform { lo: 0.0, hi: 1.0 },
            seed,
        }
    }

    /// Runs the experiment and returns, for every cycle, the [`Summary`] over
    /// runs of the per-cycle variance-reduction factor `σ²_i / σ²_{i-1}`.
    ///
    /// # Errors
    ///
    /// Propagates topology-construction and protocol errors.
    pub fn run(&self) -> Result<Vec<Summary>, AggregationError> {
        let seeds = SeedSequence::new(self.seed);
        let mut per_cycle_factors: Vec<Vec<f64>> = vec![Vec::new(); self.cycles];
        for run in 0..self.runs {
            // stream: overlay graph construction
            let mut topo_rng = seeds.rng_for_labeled(run as u64, "topology");
            let topology = TopologyBuilder::new(self.topology)
                .nodes(self.nodes)
                .build(&mut topo_rng)
                .map_err(|e| AggregationError::invalid_config(e.to_string()))?;
            let mut rng = seeds.rng_for_labeled(run as u64, "protocol");
            let mut values = self.values.generate(self.nodes, &mut rng);
            let mut selector = self.selector.instantiate();
            let reports = avg::run_avg(
                &mut values,
                &topology,
                selector.as_mut(),
                &mut rng,
                self.cycles,
            )?;
            for (cycle, report) in reports.iter().enumerate() {
                if let Some(factor) = report.reduction_factor() {
                    per_cycle_factors[cycle].push(factor);
                }
            }
        }
        Ok(per_cycle_factors
            .iter()
            .map(|factors| Summary::from_slice(factors))
            .collect())
    }

    /// Runs the experiment and returns only the first-cycle reduction factor
    /// summary — the quantity plotted in Figure 3(a).
    pub fn run_first_cycle(&self) -> Result<Summary, AggregationError> {
        let mut single_cycle = *self;
        single_cycle.cycles = 1;
        Ok(single_cycle.run()?.remove(0))
    }
}

/// Runs `cycles` cycles of AVG once (single run) and returns the raw cycle
/// reports — convenience used by examples and tests that want the full detail
/// rather than cross-run summaries.
///
/// # Errors
///
/// Propagates topology-construction and protocol errors.
pub fn single_run_reports(
    nodes: usize,
    topology: TopologyKind,
    selector: SelectorKind,
    cycles: usize,
    values: ValueDistribution,
    seed: u64,
) -> Result<Vec<CycleReport>, AggregationError> {
    let seeds = SeedSequence::new(seed);
    let mut topo_rng = seeds.rng_for_labeled(0, "topology");
    let topology = TopologyBuilder::new(topology)
        .nodes(nodes)
        .build(&mut topo_rng)
        .map_err(|e| AggregationError::invalid_config(e.to_string()))?;
    let mut rng = seeds.rng_for_labeled(0, "protocol");
    let mut data = values.generate(nodes, &mut rng);
    let mut selector = selector.instantiate();
    avg::run_avg(&mut data, &topology, selector.as_mut(), &mut rng, cycles)
}

/// One reported point of the Figure 4 reproduction: the true network size at
/// the end of an epoch and the distribution of converged estimates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeEstimationPoint {
    /// Cycle at which the epoch completed.
    pub cycle: usize,
    /// Epoch number.
    pub epoch: u64,
    /// Actual number of live nodes at that moment.
    pub actual_size: usize,
    /// Mean of the converged size estimates over fully participating nodes.
    pub estimate_mean: f64,
    /// Smallest reported estimate (lower error bar in Figure 4).
    pub estimate_min: f64,
    /// Largest reported estimate (upper error bar in Figure 4).
    pub estimate_max: f64,
    /// Number of nodes that reported an estimate.
    pub reporting_nodes: usize,
}

/// Parameters of the Figure 4 network-size-estimation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeEstimationScenario {
    /// Churn schedule (oscillation + fluctuation).
    pub churn: ChurnSchedule,
    /// Epoch length in cycles (the paper uses 30).
    pub cycles_per_epoch: u32,
    /// Total number of cycles to simulate (the paper shows 1 000).
    pub total_cycles: usize,
    /// Leader-election policy.
    pub leader_policy: LeaderPolicy,
    /// Message-loss probability (0 for the paper's setting).
    pub message_loss: f64,
    /// Peer-sampling layer partners are drawn from (the paper's Figure 4
    /// runs on the complete graph; NEWSCAST variants probe the overlay
    /// dependence of size estimation under churn).
    pub sampler: SamplerConfig,
    /// Master seed.
    pub seed: u64,
}

impl SizeEstimationScenario {
    /// The exact scenario of Figure 4 at full scale (≈100 000 nodes,
    /// 1 000 cycles, epochs of 30 cycles).
    pub fn figure4(seed: u64) -> Self {
        SizeEstimationScenario {
            churn: ChurnSchedule::figure4(),
            cycles_per_epoch: 30,
            total_cycles: 1_000,
            leader_policy: LeaderPolicy::default(),
            message_loss: 0.0,
            sampler: SamplerConfig::UniformComplete,
            seed,
        }
    }

    /// The Figure 4 scenario scaled down to `base_size` nodes and
    /// `total_cycles` cycles, for quick runs and tests.
    pub fn figure4_scaled(base_size: usize, total_cycles: usize, seed: u64) -> Self {
        SizeEstimationScenario {
            churn: ChurnSchedule::figure4_scaled(base_size),
            cycles_per_epoch: 30,
            total_cycles,
            leader_policy: LeaderPolicy::default(),
            message_loss: 0.0,
            sampler: SamplerConfig::UniformComplete,
            seed,
        }
    }

    /// Runs the scenario and returns one point per completed epoch.
    ///
    /// Convenience wrapper over [`ChurnRunner`] that keeps only the
    /// per-epoch estimation points.
    ///
    /// # Errors
    ///
    /// Returns an error when the scenario or protocol configuration is
    /// invalid.
    pub fn run(&self) -> Result<Vec<SizeEstimationPoint>, SimError> {
        Ok(ChurnRunner::new(*self).run()?.points)
    }

    /// Builds the [`SimulationConfig`] this scenario runs under.
    ///
    /// # Errors
    ///
    /// Returns an error when the protocol configuration is invalid.
    fn simulation_config(&self) -> Result<SimulationConfig, AggregationError> {
        let protocol = ProtocolConfig::builder()
            .cycles_per_epoch(self.cycles_per_epoch)
            .late_join(LateJoinPolicy::FixedState(0.0))
            .build()?;
        Ok(SimulationConfig {
            protocol,
            conditions: NetworkConditions::with_message_loss(self.message_loss),
            leader_policy: Some(self.leader_policy),
            sampler: self.sampler,
            redundancy: None,
        })
    }
}

/// Aggregate result of one end-to-end churn run: the Figure 4 estimation
/// points plus the engine-health telemetry (throughput and arena footprint)
/// that the full-scale runs and the CI smoke job report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// One point per completed epoch that produced size estimates.
    pub points: Vec<SizeEstimationPoint>,
    /// The peer-sampling layer the run drew partners from — surfaced in the
    /// telemetry CSV so complete-graph and NEWSCAST runs stay
    /// distinguishable in recorded artifacts.
    pub sampler: SamplerConfig,
    /// Number of shards the run executed on; `0` for the single-threaded
    /// reference engine.
    pub shards: usize,
    /// Total exchanges initiated per shard over the whole run — the
    /// load-balance column of the CSV artifacts. Empty for the reference
    /// engine.
    pub shard_load: Vec<usize>,
    /// Number of cycles simulated.
    pub cycles: usize,
    /// Total joins applied by the schedule.
    pub total_joins: usize,
    /// Total departures applied by the schedule.
    pub total_departures: usize,
    /// Largest number of simultaneously live nodes observed.
    pub peak_live_nodes: usize,
    /// Live node count at the end of the run.
    pub final_live_nodes: usize,
    /// Node-arena slot capacity at the end of the run. Capacity never
    /// shrinks, so this *is* the run's high-water mark: with the free-list
    /// arena it stays ≤ peak live + one cycle's joins, where the pre-arena
    /// engine grew it by every join ever made (~200 slots leaked per
    /// Figure 4 cycle).
    pub peak_slot_capacity: usize,
    /// Wall-clock duration of the simulation loop, in seconds.
    pub elapsed_seconds: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_second: f64,
}

impl ChurnReport {
    /// Renders the run's engine-health telemetry as a one-row [`Table`]
    /// (engine, cycles/sec, peak resident slots, per-shard load) —
    /// `Table::to_csv` / `Table::write_csv` turn it into the artifact the
    /// bench harness records.
    pub fn telemetry_table(&self) -> Table {
        let mut table = Table::new(vec![
            "engine",
            "sampler",
            "shards",
            "cycles",
            "cycles_per_sec",
            "peak_live_nodes",
            "peak_resident_slots",
            "total_joins",
            "total_departures",
            "mean_tracking_error",
            "shard_load",
        ]);
        table.add_row(self.telemetry_row());
        table
    }

    /// The row behind [`ChurnReport::telemetry_table`], so sweeps can stack
    /// several runs into one table.
    pub fn telemetry_row(&self) -> Vec<String> {
        vec![
            if self.shards == 0 {
                "reference".to_string()
            } else {
                "sharded".to_string()
            },
            self.sampler.to_string(),
            self.shards.to_string(),
            self.cycles.to_string(),
            format!("{:.3}", self.cycles_per_second),
            self.peak_live_nodes.to_string(),
            self.peak_slot_capacity.to_string(),
            self.total_joins.to_string(),
            self.total_departures.to_string(),
            self.mean_tracking_error()
                .map_or_else(|| "-".to_string(), |e| format!("{e:.4}")),
            self.shard_load
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("|"),
        ]
    }

    /// Mean absolute relative error of the size estimate against the true
    /// live size, skipping the bootstrap epoch (the paper's Figure 4 shows
    /// the same one-epoch warm-up). `None` when fewer than two points exist.
    pub fn mean_tracking_error(&self) -> Option<f64> {
        let tracked: Vec<f64> = self
            .points
            .iter()
            .skip(1)
            .map(|p| (p.estimate_mean - p.actual_size as f64).abs() / p.actual_size as f64)
            .collect();
        if tracked.is_empty() {
            None
        } else {
            Some(tracked.iter().sum::<f64>() / tracked.len() as f64)
        }
    }
}

/// Drives a [`ChurnSchedule`] end-to-end through a cycle engine: per-cycle
/// joins (through the arena free lists), uniform random departures, epoch
/// restarts and size-estimate collection — the procedure behind Figure 4 at
/// both scaled and full (90 000–110 000 node) scale.
///
/// [`ChurnRunner::new`] drives the single-threaded reference engine;
/// [`ChurnRunner::sharded`] drives the multi-threaded sharded engine, with
/// joins routed to the least-loaded shard and departures to the victim's
/// owning shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnRunner {
    /// The scenario to execute.
    pub scenario: SizeEstimationScenario,
    /// Shard count; `0` selects the single-threaded reference engine.
    pub shards: usize,
}

impl ChurnRunner {
    /// Creates a runner driving the single-threaded reference engine.
    pub fn new(scenario: SizeEstimationScenario) -> Self {
        ChurnRunner {
            scenario,
            shards: 0,
        }
    }

    /// Creates a runner driving the sharded engine with `shards` shards.
    pub fn sharded(scenario: SizeEstimationScenario, shards: usize) -> Self {
        ChurnRunner { scenario, shards }
    }

    /// Runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] when the scenario is empty (zero cycles or an
    /// initial population of zero) or the shard count is unusable;
    /// [`SimError::Protocol`] when the protocol configuration is invalid.
    pub fn run(&self) -> Result<ChurnReport, SimError> {
        let scenario = &self.scenario;
        if scenario.total_cycles == 0 {
            return Err(SimConfigError::ZeroCycles.into());
        }
        let config = scenario.simulation_config()?;
        let initial_size = scenario.churn.target_size(0);
        let values = vec![0.0; initial_size];
        if self.shards == 0 {
            let sim = GossipSimulation::try_new(config, &values, scenario.seed)?;
            self.drive(
                sim,
                EngineHooks {
                    add: GossipSimulation::add_node,
                    remove_random: GossipSimulation::remove_random_nodes,
                    live: GossipSimulation::live_count,
                    capacity: GossipSimulation::slot_capacity,
                    step: |sim: &mut GossipSimulation, cycle| {
                        let summary = sim.run_cycle();
                        summary.completed_epoch.and_then(|epoch| {
                            if summary.epoch_size_estimates.is_empty() {
                                return None;
                            }
                            let stats = Summary::from_slice(&summary.epoch_size_estimates);
                            Some(SizeEstimationPoint {
                                cycle,
                                epoch,
                                actual_size: summary.live_nodes,
                                estimate_mean: stats.mean,
                                estimate_min: stats.min,
                                estimate_max: stats.max,
                                reporting_nodes: stats.count,
                            })
                        })
                    },
                    shard_load: |_| Vec::new(),
                },
            )
        } else {
            let sharded = ShardedConfig {
                base: config,
                shards: self.shards,
                workers: None,
            };
            let sim = ShardedSimulation::new(sharded, &values, scenario.seed)?;
            self.drive(
                sim,
                EngineHooks {
                    add: ShardedSimulation::add_node,
                    remove_random: ShardedSimulation::remove_random_nodes,
                    live: ShardedSimulation::live_count,
                    capacity: ShardedSimulation::slot_capacity,
                    step: |sim: &mut ShardedSimulation, cycle| {
                        let summary = sim.run_cycle();
                        summary.completed_epoch.and_then(|epoch| {
                            let stats = summary.epoch_size_estimates;
                            let (Some(min), Some(max)) = (stats.min(), stats.max()) else {
                                return None;
                            };
                            Some(SizeEstimationPoint {
                                cycle,
                                epoch,
                                actual_size: summary.live_nodes,
                                estimate_mean: stats.mean(),
                                estimate_min: min,
                                estimate_max: max,
                                reporting_nodes: stats.count() as usize,
                            })
                        })
                    },
                    shard_load: |sim| sim.shard_exchange_totals().to_vec(),
                },
            )
        }
    }

    /// The engine-agnostic churn loop.
    fn drive<S>(&self, mut sim: S, hooks: EngineHooks<S>) -> Result<ChurnReport, SimError> {
        let scenario = &self.scenario;
        let mut points = Vec::new();
        let mut total_joins = 0usize;
        let mut total_departures = 0usize;
        let mut peak_live_nodes = (hooks.live)(&sim);
        let started = std::time::Instant::now(); // lint-allow(nondeterminism): wall-clock cycles/sec telemetry only; no protocol decision reads it
        for cycle in 0..scenario.total_cycles {
            // Apply churn before the cycle runs (joins wait for the next
            // epoch, departures are immediate).
            let (joins, departures) = scenario.churn.changes_at(cycle);
            for _ in 0..joins {
                (hooks.add)(&mut sim, 0.0);
            }
            total_joins += joins;
            // Joins land before departures, so this is the cycle's
            // high-water mark for the live set. (Arena capacity is monotone;
            // reading it once after the loop captures its peak.)
            peak_live_nodes = peak_live_nodes.max((hooks.live)(&sim));
            total_departures += (hooks.remove_random)(&mut sim, departures);

            if let Some(point) = (hooks.step)(&mut sim, cycle) {
                points.push(point);
            }
        }
        let elapsed_seconds = started.elapsed().as_secs_f64();
        let cycles_per_second = if elapsed_seconds > 0.0 {
            scenario.total_cycles as f64 / elapsed_seconds
        } else {
            f64::INFINITY
        };

        Ok(ChurnReport {
            points,
            sampler: scenario.sampler,
            shards: self.shards,
            shard_load: (hooks.shard_load)(&sim),
            cycles: scenario.total_cycles,
            total_joins,
            total_departures,
            peak_live_nodes,
            final_live_nodes: (hooks.live)(&sim),
            peak_slot_capacity: (hooks.capacity)(&sim),
            elapsed_seconds,
            cycles_per_second,
        })
    }
}

/// The engine operations [`ChurnRunner::drive`] needs, bound per engine.
struct EngineHooks<S> {
    add: fn(&mut S, f64) -> overlay_topology::NodeId,
    remove_random: fn(&mut S, usize) -> usize,
    live: fn(&S) -> usize,
    capacity: fn(&S) -> usize,
    step: fn(&mut S, usize) -> Option<SizeEstimationPoint>,
    shard_load: fn(&S) -> Vec<usize>,
}

/// Result of a robustness run (benchmark A2): final accuracy under failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessResult {
    /// Mean absolute relative error of the final estimates w.r.t. the true
    /// average of the surviving nodes' values.
    pub mean_relative_error: f64,
    /// Variance of the final estimates.
    pub final_variance: f64,
    /// Number of live nodes at the end.
    pub surviving_nodes: usize,
}

/// Runs the averaging protocol for `cycles` cycles over `nodes` nodes holding
/// uniform `[0, 1)` values under the given failure conditions, and reports the
/// final accuracy. Used by the failure-injection ablation.
///
/// # Errors
///
/// Returns an error when the protocol configuration is invalid.
pub fn robustness_run(
    nodes: usize,
    cycles: usize,
    conditions: NetworkConditions,
    seed: u64,
) -> Result<RobustnessResult, AggregationError> {
    // The epoch must outlast the run: an epoch restart would reset every
    // estimate back to the local value right before we measure accuracy.
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(u32::try_from(cycles + 1).unwrap_or(u32::MAX))
        .build()?;
    let config = SimulationConfig {
        protocol,
        conditions,
        leader_policy: None,
        sampler: SamplerConfig::UniformComplete,
        redundancy: None,
    };
    let seeds = SeedSequence::new(seed);
    // stream: node value draws for churn scenarios
    let mut rng = seeds.rng_for_labeled(0, "values");
    let values = ValueDistribution::Uniform { lo: 0.0, hi: 1.0 }.generate(nodes, &mut rng);
    // The engine's fault injector absorbs the conditions (constant loss plus
    // the one-shot crash burst), so the crash fires inside `run_cycle` at
    // the scheduled cycle — same victims, same RNG order as the historical
    // runner-driven crash.
    let mut sim = GossipSimulation::new(config, &values, seed);
    for _ in 0..cycles {
        sim.run_cycle();
    }
    // The reference value is the average of the *surviving* nodes' inputs.
    let survivors_true_mean = avg::mean(&sim.local_values());
    let estimates = sim.estimates();
    let mean_relative_error = if survivors_true_mean.abs() > 1e-12 {
        estimates
            .iter()
            .map(|e| (e - survivors_true_mean).abs() / survivors_true_mean.abs())
            .sum::<f64>()
            / estimates.len().max(1) as f64
    } else {
        0.0
    };
    Ok(RobustnessResult {
        mean_relative_error,
        final_variance: avg::variance(&estimates),
        surviving_nodes: sim.live_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::theory;

    #[test]
    fn figure3_point_matches_theory_for_random_selector() {
        let experiment = VarianceExperiment::figure3(
            5_000,
            TopologyKind::Complete,
            SelectorKind::RandomEdge,
            1,
            10,
            42,
        );
        let summary = experiment.run_first_cycle().unwrap();
        assert_eq!(summary.count, 10);
        assert!(
            (summary.mean - theory::rand_rate()).abs() < 0.03,
            "measured {} vs theoretical {}",
            summary.mean,
            theory::rand_rate()
        );
    }

    #[test]
    fn figure3_point_matches_theory_for_sequential_selector_on_regular_graph() {
        let experiment = VarianceExperiment::figure3(
            2_000,
            TopologyKind::RandomRegular { degree: 20 },
            SelectorKind::Sequential,
            1,
            10,
            43,
        );
        let summary = experiment.run_first_cycle().unwrap();
        assert!(
            (summary.mean - theory::seq_rate()).abs() < 0.04,
            "measured {} vs theoretical {}",
            summary.mean,
            theory::seq_rate()
        );
    }

    #[test]
    fn multi_cycle_experiment_reports_one_summary_per_cycle() {
        let experiment = VarianceExperiment::figure3(
            500,
            TopologyKind::Complete,
            SelectorKind::Sequential,
            5,
            4,
            1,
        );
        let summaries = experiment.run().unwrap();
        assert_eq!(summaries.len(), 5);
        for summary in &summaries {
            assert!(summary.mean > 0.1 && summary.mean < 0.6);
        }
    }

    #[test]
    fn invalid_topology_parameters_surface_as_errors() {
        let experiment = VarianceExperiment::figure3(
            10,
            TopologyKind::RandomRegular { degree: 50 },
            SelectorKind::Sequential,
            1,
            1,
            1,
        );
        assert!(experiment.run().is_err());
    }

    #[test]
    fn single_run_reports_exposes_cycle_details() {
        let reports = single_run_reports(
            200,
            TopologyKind::Complete,
            SelectorKind::PerfectMatching,
            3,
            ValueDistribution::Uniform { lo: 0.0, hi: 1.0 },
            7,
        )
        .unwrap();
        assert_eq!(reports.len(), 3);
        assert!(reports[0].contacts.iter().all(|&c| c == 2));
    }

    #[test]
    fn scaled_figure4_scenario_tracks_the_oscillating_size() {
        // 1 000-node version of the Figure 4 scenario, 8 epochs.
        let scenario = SizeEstimationScenario::figure4_scaled(1_000, 240, 4242);
        let points = scenario.run().unwrap();
        assert!(
            points.len() >= 7,
            "expected one point per epoch, got {}",
            points.len()
        );
        // Skip the first epoch (bootstrap); afterwards the estimate tracks the
        // actual size within ~15 % (the paper reports a one-epoch lag, so some
        // systematic offset is expected).
        for point in points.iter().skip(1) {
            let relative_error =
                (point.estimate_mean - point.actual_size as f64).abs() / point.actual_size as f64;
            assert!(
                relative_error < 0.15,
                "epoch {}: estimate {} vs actual {} (error {:.3})",
                point.epoch,
                point.estimate_mean,
                point.actual_size,
                relative_error
            );
            assert!(point.estimate_min <= point.estimate_mean);
            assert!(point.estimate_max >= point.estimate_mean);
            assert!(point.reporting_nodes > 0);
        }
    }

    #[test]
    fn churn_runner_keeps_the_arena_bounded_and_matches_the_scenario() {
        let scenario = SizeEstimationScenario::figure4_scaled(1_000, 240, 4242);
        let report = ChurnRunner::new(scenario).run().unwrap();
        assert_eq!(report.cycles, 240);
        // Sustained churn must not leak slots: the arena stays within the
        // oscillation peak plus one cycle's worth of simultaneous churn.
        let bound = scenario.churn.max_size + 2 * scenario.churn.fluctuation_per_cycle;
        assert!(
            report.peak_slot_capacity <= bound,
            "peak slot capacity {} exceeds bound {bound}",
            report.peak_slot_capacity
        );
        assert!(report.peak_live_nodes <= bound);
        assert!(report.peak_live_nodes <= report.peak_slot_capacity);
        // 240 cycles of ±10 % oscillation plus 1-node fluctuation churn
        // roughly 100 nodes each way; the exact split follows the schedule.
        assert!(report.total_joins >= 240);
        assert!(report.total_departures >= 240);
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.cycles_per_second > 0.0);
        assert!(report.mean_tracking_error().unwrap() < 0.15);
        // The scenario wrapper reproduces the exact same points (same seed).
        assert_eq!(report.points, scenario.run().unwrap());
    }

    #[test]
    fn zero_cycle_scenarios_are_rejected_with_a_typed_error() {
        let mut scenario = SizeEstimationScenario::figure4_scaled(500, 0, 1);
        assert_eq!(
            ChurnRunner::new(scenario).run().err(),
            Some(crate::SimError::Config(crate::SimConfigError::ZeroCycles))
        );
        scenario.total_cycles = 30;
        assert!(ChurnRunner::sharded(scenario, 99).run().is_err());
        assert!(ChurnRunner::new(scenario).run().is_ok());
    }

    #[test]
    fn sharded_churn_runner_tracks_the_oscillating_size() {
        let scenario = SizeEstimationScenario::figure4_scaled(1_000, 240, 4242);
        let report = ChurnRunner::sharded(scenario, 4).run().unwrap();
        assert_eq!(report.cycles, 240);
        assert_eq!(report.shards, 4);
        assert_eq!(report.shard_load.len(), 4);
        // Load balancing keeps the per-shard exchange split within ~10 % of
        // uniform.
        let total: usize = report.shard_load.iter().sum();
        for &load in &report.shard_load {
            let uniform = total as f64 / 4.0;
            assert!(
                (load as f64 - uniform).abs() < uniform * 0.1,
                "shard load {load} vs uniform {uniform}"
            );
        }
        let bound = scenario.churn.max_size + 2 * scenario.churn.fluctuation_per_cycle;
        assert!(report.peak_slot_capacity <= bound);
        assert!(report.mean_tracking_error().unwrap() < 0.15);
        assert!(report.points.len() >= 7);
        // The telemetry table renders one row with the engine label.
        let table = report.telemetry_table();
        let csv = table.to_csv();
        assert!(csv.starts_with("engine,sampler,shards,cycles,cycles_per_sec"));
        assert!(csv.contains("sharded,uniform-complete,4,240"));
    }

    #[test]
    fn robustness_run_without_failures_is_accurate() {
        let result = robustness_run(500, 20, NetworkConditions::reliable(), 77).unwrap();
        assert_eq!(result.surviving_nodes, 500);
        assert!(result.mean_relative_error < 0.01);
        assert!(result.final_variance < 1e-4);
    }

    #[test]
    fn robustness_run_with_crash_keeps_reasonable_accuracy() {
        let result = robustness_run(500, 20, NetworkConditions::with_crash(0.3, 5), 78).unwrap();
        assert_eq!(result.surviving_nodes, 350);
        // A 30 % crash at cycle 5 perturbs the average of the survivors, but
        // the error stays bounded (values are uniform in [0,1], so the
        // relative error against a mean of ≈0.5 stays modest).
        assert!(
            result.mean_relative_error < 0.2,
            "error {} too large",
            result.mean_relative_error
        );
    }
}
