//! Churn models: how the set of live nodes changes over time.

use serde::{Deserialize, Serialize};

/// A deterministic schedule of the *target* network size plus per-cycle
/// fluctuation, matching the scenario of the paper's Figure 4:
///
/// > "the size oscillates between 90.000 and 110.000. In addition to nodes
/// > added and removed because of the oscillation, 100 nodes are removed from
/// > the network and 100 nodes are added to simulate fluctuation."
///
/// The oscillation follows a triangle wave (linear growth then linear decline)
/// whose period is expressed in cycles; the fluctuation adds a constant number
/// of simultaneous joins and departures per cycle that cancel out in size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    /// Smallest network size reached by the oscillation.
    pub min_size: usize,
    /// Largest network size reached by the oscillation.
    pub max_size: usize,
    /// Full oscillation period in cycles (grow to max and shrink back to min).
    pub period_cycles: usize,
    /// Additional simultaneous joins *and* departures per cycle.
    pub fluctuation_per_cycle: usize,
}

impl ChurnSchedule {
    /// The scenario of Figure 4: 90 000–110 000 nodes, full oscillation over
    /// 500 cycles, 100 extra joins and departures per cycle.
    pub fn figure4() -> Self {
        ChurnSchedule {
            min_size: 90_000,
            max_size: 110_000,
            period_cycles: 500,
            fluctuation_per_cycle: 100,
        }
    }

    /// A static network of `size` nodes (no oscillation, no fluctuation).
    pub fn steady(size: usize) -> Self {
        ChurnSchedule {
            min_size: size,
            max_size: size,
            period_cycles: 1,
            fluctuation_per_cycle: 0,
        }
    }

    /// Scales the Figure 4 scenario down to a different base size, keeping the
    /// ±10 % oscillation and 0.1 % per-cycle fluctuation proportions. Useful
    /// for quick runs and unit tests.
    pub fn figure4_scaled(base_size: usize) -> Self {
        ChurnSchedule {
            min_size: base_size - base_size / 10,
            max_size: base_size + base_size / 10,
            period_cycles: 500,
            fluctuation_per_cycle: (base_size / 1_000).max(1),
        }
    }

    /// Target network size at the given cycle (triangle wave between
    /// `min_size` and `max_size`).
    pub fn target_size(&self, cycle: usize) -> usize {
        if self.max_size <= self.min_size || self.period_cycles < 2 {
            return self.min_size;
        }
        let half = self.period_cycles / 2;
        let phase = cycle % self.period_cycles;
        let amplitude = self.max_size - self.min_size;
        // Start in the middle, rise to max, fall to min, return to middle —
        // i.e. a triangle wave centred on the mid size, as in Figure 4 where
        // the run starts at 100 000.
        let mid = self.min_size + amplitude / 2;
        let quarter = half / 2;
        if phase < quarter {
            mid + amplitude * phase / half
        } else if phase < quarter + half {
            // descending from max to min
            self.max_size - amplitude * (phase - quarter) / half
        } else {
            // ascending back to mid
            self.min_size + amplitude * (phase - quarter - half) / half
        }
    }

    /// The planned membership change at `cycle`: `(joins, departures)`,
    /// combining the oscillation delta with the symmetric fluctuation.
    pub fn changes_at(&self, cycle: usize) -> (usize, usize) {
        let current = self.target_size(cycle);
        let next = self.target_size(cycle + 1);
        let (grow, shrink) = if next >= current {
            (next - current, 0)
        } else {
            (0, current - next)
        };
        (
            grow + self.fluctuation_per_cycle,
            shrink + self.fluctuation_per_cycle,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_schedule_is_constant() {
        let s = ChurnSchedule::steady(1_000);
        for cycle in [0, 1, 10, 499, 1_000] {
            assert_eq!(s.target_size(cycle), 1_000);
            assert_eq!(s.changes_at(cycle), (0, 0));
        }
    }

    #[test]
    fn figure4_schedule_oscillates_in_the_documented_band() {
        let s = ChurnSchedule::figure4();
        let mut min_seen = usize::MAX;
        let mut max_seen = 0usize;
        for cycle in 0..1_000 {
            let size = s.target_size(cycle);
            assert!(
                (90_000..=110_000).contains(&size),
                "cycle {cycle}: size {size} outside band"
            );
            min_seen = min_seen.min(size);
            max_seen = max_seen.max(size);
        }
        assert!(min_seen <= 90_100, "oscillation must reach the lower band");
        assert!(max_seen >= 109_900, "oscillation must reach the upper band");
        // The run starts at the middle of the band, like the paper's plot.
        assert_eq!(s.target_size(0), 100_000);
    }

    #[test]
    fn figure4_fluctuation_adds_constant_turnover() {
        let s = ChurnSchedule::figure4();
        let (joins, departures) = s.changes_at(0);
        // Oscillation rising at the start: joins exceed departures by the
        // oscillation slope; both include the 100-node fluctuation.
        assert!(joins >= 100);
        assert!(departures >= 100);
        assert!(joins > departures);
    }

    #[test]
    fn changes_follow_the_size_derivative() {
        let s = ChurnSchedule {
            min_size: 100,
            max_size: 200,
            period_cycles: 100,
            fluctuation_per_cycle: 0,
        };
        let mut size = s.target_size(0);
        for cycle in 0..300 {
            let (joins, departures) = s.changes_at(cycle);
            size = size + joins - departures;
            assert_eq!(size, s.target_size(cycle + 1), "cycle {cycle}");
        }
    }

    #[test]
    fn scaled_figure4_keeps_the_proportions() {
        let s = ChurnSchedule::figure4_scaled(1_000);
        assert_eq!(s.min_size, 900);
        assert_eq!(s.max_size, 1_100);
        assert_eq!(s.fluctuation_per_cycle, 1);
        for cycle in 0..1_000 {
            let size = s.target_size(cycle);
            assert!((900..=1_100).contains(&size));
        }
    }

    #[test]
    fn degenerate_schedules_do_not_panic() {
        let s = ChurnSchedule {
            min_size: 10,
            max_size: 10,
            period_cycles: 0,
            fluctuation_per_cycle: 0,
        };
        assert_eq!(s.target_size(5), 10);
        let s = ChurnSchedule {
            min_size: 20,
            max_size: 10,
            period_cycles: 10,
            fluctuation_per_cycle: 0,
        };
        assert_eq!(s.target_size(3), 20);
    }
}
