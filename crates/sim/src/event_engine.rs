//! Event-driven (asynchronous) simulation engine.
//!
//! The paper's theoretical model assumes synchronised cycles, but the protocol
//! itself is asynchronous: "each node is autonomous" and only needs a local
//! clock. This engine drops the cycle synchronisation entirely — every node
//! wakes up at its own jittered interval (or after an exponentially
//! distributed waiting time, the natural realisation of `GETPAIR_RAND`) and
//! messages take a configurable transmission delay. It is used to validate
//! that convergence per *unit time* matches the cycle-based prediction even
//! without synchronised starts, supporting the paper's claim that the
//! synchronisation assumption can be relaxed.

use aggregate_core::node::ProtocolNode;
use aggregate_core::{ExchangeCore, GossipMessage, ProtocolConfig};
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A parameter of [`AsyncConfig`] or [`WakeupDistribution`] that would break
/// the event queue: negative, zero (where forbidden), NaN or infinite values
/// schedule events backwards in time or at times that defeat the queue's
/// ordering (NaN compares as `Equal` in the internal event queue).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AsyncConfigError {
    /// `message_latency` is negative, NaN or infinite.
    InvalidLatency {
        /// The rejected latency value.
        value: f64,
    },
    /// A wakeup-distribution parameter is non-positive, NaN or infinite.
    InvalidWakeup {
        /// Which parameter was rejected (`"period"` or `"mean"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for AsyncConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AsyncConfigError::InvalidLatency { value } => {
                write!(f, "message latency {value} must be finite and ≥ 0")
            }
            AsyncConfigError::InvalidWakeup { parameter, value } => {
                write!(f, "wakeup {parameter} {value} must be finite and > 0")
            }
        }
    }
}

impl std::error::Error for AsyncConfigError {}

/// How a node chooses the waiting time between its own exchange initiations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WakeupDistribution {
    /// Fixed period with a uniformly random initial phase — the paper's
    /// `GETWAITINGTIME` returning the constant `Δt`, desynchronised across
    /// nodes because there is no common start signal.
    FixedPeriod {
        /// The cycle length `Δt` in simulated time units.
        period: f64,
    },
    /// Exponentially distributed waiting times with the given mean — the
    /// randomised `GETWAITINGTIME` the paper mentions for `GETPAIR_RAND`.
    Exponential {
        /// Mean waiting time in simulated time units.
        mean: f64,
    },
}

impl WakeupDistribution {
    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncConfigError::InvalidWakeup`] when the period or mean is
    /// non-positive, NaN or infinite — any of which would schedule wakeups
    /// backwards in time or break the event queue's ordering.
    pub fn validate(&self) -> Result<(), AsyncConfigError> {
        let (parameter, value) = match *self {
            WakeupDistribution::FixedPeriod { period } => ("period", period),
            WakeupDistribution::Exponential { mean } => ("mean", mean),
        };
        if !value.is_finite() || value <= 0.0 {
            return Err(AsyncConfigError::InvalidWakeup { parameter, value });
        }
        Ok(())
    }

    fn first_wakeup<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => rng.gen_range(0.0..period),
            WakeupDistribution::Exponential { mean } => sample_exponential(mean, rng),
        }
    }

    fn next_wakeup<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => period,
            WakeupDistribution::Exponential { mean } => sample_exponential(mean, rng),
        }
    }
}

fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Smallest `k ≥ 1` whose grid point `k * interval` lies strictly after
/// `now` — *as computed in floating point*, which is how the sampling loop
/// will compare it. The division only seeds the search; the `while` guards
/// correct for rounding in either direction so a resumed run neither
/// re-emits the previous call's last grid point nor skips one.
fn first_sample_index_after(now: f64, interval: f64) -> u64 {
    let mut k = ((now / interval).floor().max(0.0) as u64).saturating_add(1);
    while k > 1 && (k - 1) as f64 * interval > now {
        k -= 1;
    }
    while k as f64 * interval <= now {
        k += 1;
    }
    k
}

/// Configuration of the asynchronous engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Per-node protocol configuration (epoch machinery is driven by wakeup
    /// counts, one wakeup playing the role of one local cycle).
    pub protocol: ProtocolConfig,
    /// Distribution of the waiting time between a node's initiations.
    pub wakeup: WakeupDistribution,
    /// One-way message latency in simulated time units (applied to pushes and
    /// replies independently).
    pub message_latency: f64,
}

impl AsyncConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncConfigError`] when the message latency is negative, NaN
    /// or infinite, or the wakeup distribution's parameters are invalid.
    pub fn validate(&self) -> Result<(), AsyncConfigError> {
        if !self.message_latency.is_finite() || self.message_latency < 0.0 {
            return Err(AsyncConfigError::InvalidLatency {
                value: self.message_latency,
            });
        }
        self.wakeup.validate()
    }
}

/// A snapshot of the network state taken by [`AsyncSimulation::run_until`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSample {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Variance of the estimates across nodes.
    pub variance: f64,
    /// Mean of the estimates across nodes.
    pub mean: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Wakeup(NodeId),
    Deliver(GossipMessage),
}

/// Entry of the event queue, ordered by time (earliest first via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEvent {
    time: f64,
    sequence: u64,
    event: Event,
}

impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.sequence.cmp(&other.sequence))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven simulation of the asynchronous protocol.
#[derive(Debug)]
pub struct AsyncSimulation {
    config: AsyncConfig,
    nodes: Vec<ProtocolNode>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: f64,
    sequence: u64,
    rng: StdRng,
    scratch: Vec<GossipMessage>,
}

impl AsyncSimulation {
    /// Creates the simulation with one node per initial value; every node gets
    /// a randomly phased first wakeup so there is no global synchronisation.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncConfigError`] when the configuration's latency or
    /// wakeup parameters are invalid (negative, zero where forbidden, NaN or
    /// infinite) — accepted, they would corrupt the event-queue ordering.
    pub fn new(
        config: AsyncConfig,
        initial_values: &[f64],
        seed: u64,
    ) -> Result<Self, AsyncConfigError> {
        config.validate()?;
        let nodes: Vec<ProtocolNode> = initial_values
            .iter()
            .enumerate()
            .map(|(i, &v)| ProtocolNode::new(NodeId::new(i), config.protocol, v))
            .collect();
        let mut sim = AsyncSimulation {
            config,
            nodes,
            queue: BinaryHeap::new(),
            now: 0.0,
            sequence: 0,
            rng: StdRng::seed_from_u64(seed),
            scratch: Vec::new(),
        };
        for i in 0..sim.nodes.len() {
            let t = sim.config.wakeup.first_wakeup(&mut sim.rng);
            sim.schedule(t, Event::Wakeup(NodeId::new(i)));
        }
        Ok(sim)
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Current estimates of all nodes.
    pub fn estimates(&self) -> Vec<f64> {
        self.nodes.iter().filter_map(|n| n.estimate()).collect()
    }

    /// Runs the simulation until `end_time`, taking a [`TimeSample`] every
    /// `sample_interval` time units.
    ///
    /// The call is resumable: a second invocation continues from the current
    /// [`AsyncSimulation::now`], and sampling restarts at the first grid
    /// point `k * sample_interval` *after* `now` rather than flooding the
    /// caller with stale samples for already-elapsed times. Sample times are
    /// always computed as `k * sample_interval` (never by accumulation), so
    /// a run split across calls lands on bit-identical grid points to an
    /// uninterrupted one even for intervals that are not exactly
    /// representable in floating point.
    ///
    /// # Panics
    ///
    /// Panics when `sample_interval` is not finite and positive (it would
    /// loop forever otherwise).
    pub fn run_until(&mut self, end_time: f64, sample_interval: f64) -> Vec<TimeSample> {
        assert!(
            sample_interval.is_finite() && sample_interval > 0.0,
            "sample interval {sample_interval} must be finite and > 0"
        );
        let mut samples = Vec::new();
        let mut sample_index = first_sample_index_after(self.now, sample_interval);
        let mut next_sample = sample_index as f64 * sample_interval;
        while let Some(Reverse(entry)) = self.queue.peek().copied() {
            if entry.time > end_time {
                break;
            }
            self.queue.pop();
            while entry.time >= next_sample && next_sample <= end_time {
                samples.push(self.sample(next_sample));
                sample_index += 1;
                next_sample = sample_index as f64 * sample_interval;
            }
            self.now = entry.time;
            self.dispatch(entry.event);
        }
        while next_sample <= end_time {
            samples.push(self.sample(next_sample));
            sample_index += 1;
            next_sample = sample_index as f64 * sample_interval;
        }
        self.now = end_time;
        samples
    }

    fn sample(&self, time: f64) -> TimeSample {
        let estimates = self.estimates();
        TimeSample {
            time,
            variance: aggregate_core::avg::variance(&estimates),
            mean: aggregate_core::avg::mean(&estimates),
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Wakeup(node_id) => {
                let n = self.nodes.len();
                if n >= 2 {
                    // Uniform random peer over the complete overlay.
                    let peer = loop {
                        let candidate = NodeId::new(self.rng.gen_range(0..n));
                        if candidate != node_id {
                            break candidate;
                        }
                    };
                    let mut pushes = std::mem::take(&mut self.scratch);
                    ExchangeCore::begin(&mut self.nodes[node_id.index()], peer, &mut pushes);
                    for push in pushes.drain(..) {
                        let delay = self.config.message_latency;
                        self.schedule(self.now + delay, Event::Deliver(push));
                    }
                    self.scratch = pushes;
                    // One wakeup is one local cycle for the epoch machinery.
                    self.nodes[node_id.index()].end_cycle();
                }
                let wait = self.config.wakeup.next_wakeup(&mut self.rng);
                self.schedule(self.now + wait, Event::Wakeup(node_id));
            }
            Event::Deliver(message) => {
                let recipient = message.recipient();
                if recipient.index() >= self.nodes.len() {
                    return;
                }
                if let Some(reply) =
                    ExchangeCore::deliver(&mut self.nodes[recipient.index()], message)
                {
                    self.schedule(
                        self.now + self.config.message_latency,
                        Event::Deliver(reply),
                    );
                }
            }
        }
    }

    fn schedule(&mut self, time: f64, event: Event) {
        self.sequence += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            sequence: self.sequence,
            event,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(wakeup: WakeupDistribution) -> AsyncConfig {
        AsyncConfig {
            protocol: ProtocolConfig::builder()
                .cycles_per_epoch(1_000) // effectively no restarts during the test
                .build()
                .unwrap(),
            wakeup,
            message_latency: 0.01,
        }
    }

    #[test]
    fn asynchronous_averaging_converges_without_global_synchronisation() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            3,
        )
        .unwrap();
        let samples = sim.run_until(20.0, 1.0);
        assert_eq!(samples.len(), 20);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-3, "variance {} too large", last.variance);
        assert!((last.mean - true_mean).abs() < 0.5);
        assert!(sim.now() >= 20.0 - 1e-9);
    }

    #[test]
    fn variance_decreases_roughly_exponentially_in_time() {
        let values: Vec<f64> = (0..500).map(|i| (i % 50) as f64).collect();
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            5,
        )
        .unwrap();
        let samples = sim.run_until(10.0, 1.0);
        // Each unit of time is one "cycle worth" of wakeups, so consecutive
        // samples should show a clear geometric decrease.
        let mut decreasing = 0;
        for pair in samples.windows(2) {
            if pair[1].variance < pair[0].variance {
                decreasing += 1;
            }
        }
        assert!(
            decreasing >= samples.len() - 2,
            "variance must decrease in almost every interval"
        );
        let first = samples.first().unwrap().variance;
        let last = samples.last().unwrap().variance;
        assert!(last < first * 1e-3);
    }

    #[test]
    fn exponential_wakeups_also_converge() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::Exponential { mean: 1.0 }),
            &values,
            7,
        )
        .unwrap();
        let samples = sim.run_until(25.0, 5.0);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-2);
        assert!((last.mean - true_mean).abs() < 1.0);
    }

    #[test]
    fn mean_is_conserved_despite_in_flight_messages() {
        // With a non-zero latency some mass is "in flight" at any instant, but
        // the long-run mean of the node estimates stays at the true average.
        let values: Vec<f64> = (0..100).map(|i| (i * 3 % 40) as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            11,
        )
        .unwrap();
        let samples = sim.run_until(15.0, 15.0);
        assert!((samples.last().unwrap().mean - true_mean).abs() < 0.75);
    }

    #[test]
    fn degenerate_networks_are_handled() {
        let mut single = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &[42.0],
            13,
        )
        .unwrap();
        let samples = single.run_until(5.0, 1.0);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples.last().unwrap().mean, 42.0);
        assert_eq!(samples.last().unwrap().variance, 0.0);

        let mut empty = AsyncSimulation::new(
            config(WakeupDistribution::Exponential { mean: 1.0 }),
            &[],
            17,
        )
        .unwrap();
        let samples = empty.run_until(2.0, 1.0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples.last().unwrap().mean, 0.0);
    }

    #[test]
    fn run_until_resumes_without_replaying_stale_samples() {
        // Regression: a second run_until used to restart next_sample at
        // sample_interval, flooding the caller with samples for times that
        // had already elapsed.
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cfg = config(WakeupDistribution::FixedPeriod { period: 1.0 });
        let mut split = AsyncSimulation::new(cfg, &values, 19).unwrap();
        let mut first = split.run_until(10.0, 1.0);
        assert_eq!(first.len(), 10);
        let second = split.run_until(20.0, 1.0);
        assert_eq!(second.len(), 10, "resume must not replay samples 1..=10");
        assert!(second.iter().all(|s| s.time > 10.0));
        assert!((second[0].time - 11.0).abs() < 1e-9);

        // The split run is observably identical to one uninterrupted run:
        // same event processing, same sample times, same values.
        let mut whole = AsyncSimulation::new(cfg, &values, 19).unwrap();
        let reference = whole.run_until(20.0, 1.0);
        first.extend(second);
        assert_eq!(first, reference);

        // Resuming off the sample grid starts at the next grid point.
        let mut offgrid = AsyncSimulation::new(cfg, &values, 23).unwrap();
        offgrid.run_until(2.5, 1.0);
        let resumed = offgrid.run_until(4.0, 1.0);
        let times: Vec<f64> = resumed.iter().map(|s| s.time).collect();
        assert_eq!(times, vec![3.0, 4.0]);

        // Intervals with no exact binary representation (0.7, 0.1) must not
        // duplicate or drop grid samples across the split: sample times are
        // k*interval in both paths, never an accumulated sum.
        for (interval, split_at, end) in [(0.7, 3.5, 7.0), (0.1, 2.0, 4.0)] {
            let mut split = AsyncSimulation::new(cfg, &values, 29).unwrap();
            let mut joined = split.run_until(split_at, interval);
            joined.extend(split.run_until(end, interval));
            let mut whole = AsyncSimulation::new(cfg, &values, 29).unwrap();
            assert_eq!(
                joined,
                whole.run_until(end, interval),
                "split at {split_at} with interval {interval} diverged"
            );
        }
    }

    #[test]
    fn first_sample_index_is_exact_on_awkward_grids() {
        // The grid point at the returned index is strictly after `now`, and
        // the one before it is not — evaluated in f64, like the sampler.
        for (now, interval) in [
            (0.0, 1.0),
            (3.5, 0.7),
            (2.0, 0.1),
            (20.0, 1.0),
            (0.3, 0.1),
            (1e9, 0.1),
        ] {
            let k = first_sample_index_after(now, interval);
            assert!(k as f64 * interval > now, "k*i must exceed now={now}");
            if k > 1 {
                assert!(
                    (k - 1) as f64 * interval <= now,
                    "(k-1)*i must not exceed now={now} (interval {interval})"
                );
            }
        }
    }

    #[test]
    fn invalid_configurations_are_rejected_with_typed_errors() {
        let values = [1.0, 2.0];
        for (wakeup, latency) in [
            (WakeupDistribution::FixedPeriod { period: 1.0 }, -0.5),
            (WakeupDistribution::FixedPeriod { period: 1.0 }, f64::NAN),
            (
                WakeupDistribution::FixedPeriod { period: 1.0 },
                f64::INFINITY,
            ),
        ] {
            let bad = AsyncConfig {
                message_latency: latency,
                ..config(wakeup)
            };
            assert!(matches!(
                AsyncSimulation::new(bad, &values, 1),
                Err(AsyncConfigError::InvalidLatency { .. })
            ));
        }
        for wakeup in [
            WakeupDistribution::FixedPeriod { period: 0.0 },
            WakeupDistribution::FixedPeriod { period: -1.0 },
            WakeupDistribution::FixedPeriod { period: f64::NAN },
            WakeupDistribution::Exponential { mean: 0.0 },
            WakeupDistribution::Exponential { mean: f64::NAN },
            WakeupDistribution::Exponential {
                mean: f64::INFINITY,
            },
        ] {
            let err = AsyncSimulation::new(config(wakeup), &values, 1).unwrap_err();
            assert!(matches!(err, AsyncConfigError::InvalidWakeup { .. }));
            assert!(!err.to_string().is_empty());
        }
        // A zero latency is fine (instant delivery), as is a valid config.
        let zero_latency = AsyncConfig {
            message_latency: 0.0,
            ..config(WakeupDistribution::FixedPeriod { period: 1.0 })
        };
        assert!(zero_latency.validate().is_ok());
        assert!(AsyncSimulation::new(zero_latency, &values, 1).is_ok());
    }

    #[test]
    fn event_ordering_is_stable_for_equal_times() {
        let a = QueuedEvent {
            time: 1.0,
            sequence: 1,
            event: Event::Wakeup(NodeId::new(0)),
        };
        let b = QueuedEvent {
            time: 1.0,
            sequence: 2,
            event: Event::Wakeup(NodeId::new(1)),
        };
        assert!(a < b);
        let c = QueuedEvent {
            time: 0.5,
            sequence: 9,
            event: Event::Wakeup(NodeId::new(2)),
        };
        assert!(c < a);
    }
}
