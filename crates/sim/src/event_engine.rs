//! Event-driven (asynchronous) simulation engine.
//!
//! The paper's theoretical model assumes synchronised cycles, but the protocol
//! itself is asynchronous: "each node is autonomous" and only needs a local
//! clock. This engine drops the cycle synchronisation entirely — every node
//! wakes up at its own jittered interval (or after an exponentially
//! distributed waiting time, the natural realisation of `GETPAIR_RAND`) and
//! messages take a configurable transmission delay. It is used to validate
//! that convergence per *unit time* matches the cycle-based prediction even
//! without synchronised starts, supporting the paper's claim that the
//! synchronisation assumption can be relaxed.

use aggregate_core::node::ProtocolNode;
use aggregate_core::{GossipMessage, ProtocolConfig};
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a node chooses the waiting time between its own exchange initiations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WakeupDistribution {
    /// Fixed period with a uniformly random initial phase — the paper's
    /// `GETWAITINGTIME` returning the constant `Δt`, desynchronised across
    /// nodes because there is no common start signal.
    FixedPeriod {
        /// The cycle length `Δt` in simulated time units.
        period: f64,
    },
    /// Exponentially distributed waiting times with the given mean — the
    /// randomised `GETWAITINGTIME` the paper mentions for `GETPAIR_RAND`.
    Exponential {
        /// Mean waiting time in simulated time units.
        mean: f64,
    },
}

impl WakeupDistribution {
    fn first_wakeup<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => rng.gen_range(0.0..period),
            WakeupDistribution::Exponential { mean } => sample_exponential(mean, rng),
        }
    }

    fn next_wakeup<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => period,
            WakeupDistribution::Exponential { mean } => sample_exponential(mean, rng),
        }
    }
}

fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Configuration of the asynchronous engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Per-node protocol configuration (epoch machinery is driven by wakeup
    /// counts, one wakeup playing the role of one local cycle).
    pub protocol: ProtocolConfig,
    /// Distribution of the waiting time between a node's initiations.
    pub wakeup: WakeupDistribution,
    /// One-way message latency in simulated time units (applied to pushes and
    /// replies independently).
    pub message_latency: f64,
}

/// A snapshot of the network state taken by [`AsyncSimulation::run_until`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSample {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Variance of the estimates across nodes.
    pub variance: f64,
    /// Mean of the estimates across nodes.
    pub mean: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Wakeup(NodeId),
    Deliver(GossipMessage),
}

/// Entry of the event queue, ordered by time (earliest first via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEvent {
    time: f64,
    sequence: u64,
    event: Event,
}

impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.sequence.cmp(&other.sequence))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven simulation of the asynchronous protocol.
#[derive(Debug)]
pub struct AsyncSimulation {
    config: AsyncConfig,
    nodes: Vec<ProtocolNode>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: f64,
    sequence: u64,
    rng: StdRng,
}

impl AsyncSimulation {
    /// Creates the simulation with one node per initial value; every node gets
    /// a randomly phased first wakeup so there is no global synchronisation.
    pub fn new(config: AsyncConfig, initial_values: &[f64], seed: u64) -> Self {
        let nodes: Vec<ProtocolNode> = initial_values
            .iter()
            .enumerate()
            .map(|(i, &v)| ProtocolNode::new(NodeId::new(i), config.protocol, v))
            .collect();
        let mut sim = AsyncSimulation {
            config,
            nodes,
            queue: BinaryHeap::new(),
            now: 0.0,
            sequence: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        for i in 0..sim.nodes.len() {
            let t = sim.config.wakeup.first_wakeup(&mut sim.rng);
            sim.schedule(t, Event::Wakeup(NodeId::new(i)));
        }
        sim
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Current estimates of all nodes.
    pub fn estimates(&self) -> Vec<f64> {
        self.nodes.iter().filter_map(|n| n.estimate()).collect()
    }

    /// Runs the simulation until `end_time`, taking a [`TimeSample`] every
    /// `sample_interval` time units.
    pub fn run_until(&mut self, end_time: f64, sample_interval: f64) -> Vec<TimeSample> {
        let mut samples = Vec::new();
        let mut next_sample = sample_interval;
        while let Some(Reverse(entry)) = self.queue.peek().copied() {
            if entry.time > end_time {
                break;
            }
            self.queue.pop();
            while entry.time >= next_sample && next_sample <= end_time {
                samples.push(self.sample(next_sample));
                next_sample += sample_interval;
            }
            self.now = entry.time;
            self.dispatch(entry.event);
        }
        while next_sample <= end_time {
            samples.push(self.sample(next_sample));
            next_sample += sample_interval;
        }
        self.now = end_time;
        samples
    }

    fn sample(&self, time: f64) -> TimeSample {
        let estimates = self.estimates();
        TimeSample {
            time,
            variance: aggregate_core::avg::variance(&estimates),
            mean: aggregate_core::avg::mean(&estimates),
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Wakeup(node_id) => {
                let n = self.nodes.len();
                if n >= 2 {
                    // Uniform random peer over the complete overlay.
                    let peer = loop {
                        let candidate = NodeId::new(self.rng.gen_range(0..n));
                        if candidate != node_id {
                            break candidate;
                        }
                    };
                    let pushes = self.nodes[node_id.index()].begin_exchange(peer);
                    for push in pushes {
                        let delay = self.config.message_latency;
                        self.schedule(self.now + delay, Event::Deliver(push));
                    }
                    // One wakeup is one local cycle for the epoch machinery.
                    self.nodes[node_id.index()].end_cycle();
                }
                let wait = self.config.wakeup.next_wakeup(&mut self.rng);
                self.schedule(self.now + wait, Event::Wakeup(node_id));
            }
            Event::Deliver(message) => {
                let recipient = message.recipient();
                if recipient.index() >= self.nodes.len() {
                    return;
                }
                if let Some(reply) = self.nodes[recipient.index()].handle_message(message) {
                    self.schedule(
                        self.now + self.config.message_latency,
                        Event::Deliver(reply),
                    );
                }
            }
        }
    }

    fn schedule(&mut self, time: f64, event: Event) {
        self.sequence += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            sequence: self.sequence,
            event,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(wakeup: WakeupDistribution) -> AsyncConfig {
        AsyncConfig {
            protocol: ProtocolConfig::builder()
                .cycles_per_epoch(1_000) // effectively no restarts during the test
                .build()
                .unwrap(),
            wakeup,
            message_latency: 0.01,
        }
    }

    #[test]
    fn asynchronous_averaging_converges_without_global_synchronisation() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            3,
        );
        let samples = sim.run_until(20.0, 1.0);
        assert_eq!(samples.len(), 20);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-3, "variance {} too large", last.variance);
        assert!((last.mean - true_mean).abs() < 0.5);
        assert!(sim.now() >= 20.0 - 1e-9);
    }

    #[test]
    fn variance_decreases_roughly_exponentially_in_time() {
        let values: Vec<f64> = (0..500).map(|i| (i % 50) as f64).collect();
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            5,
        );
        let samples = sim.run_until(10.0, 1.0);
        // Each unit of time is one "cycle worth" of wakeups, so consecutive
        // samples should show a clear geometric decrease.
        let mut decreasing = 0;
        for pair in samples.windows(2) {
            if pair[1].variance < pair[0].variance {
                decreasing += 1;
            }
        }
        assert!(
            decreasing >= samples.len() - 2,
            "variance must decrease in almost every interval"
        );
        let first = samples.first().unwrap().variance;
        let last = samples.last().unwrap().variance;
        assert!(last < first * 1e-3);
    }

    #[test]
    fn exponential_wakeups_also_converge() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::Exponential { mean: 1.0 }),
            &values,
            7,
        );
        let samples = sim.run_until(25.0, 5.0);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-2);
        assert!((last.mean - true_mean).abs() < 1.0);
    }

    #[test]
    fn mean_is_conserved_despite_in_flight_messages() {
        // With a non-zero latency some mass is "in flight" at any instant, but
        // the long-run mean of the node estimates stays at the true average.
        let values: Vec<f64> = (0..100).map(|i| (i * 3 % 40) as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            11,
        );
        let samples = sim.run_until(15.0, 15.0);
        assert!((samples.last().unwrap().mean - true_mean).abs() < 0.75);
    }

    #[test]
    fn degenerate_networks_are_handled() {
        let mut single = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &[42.0],
            13,
        );
        let samples = single.run_until(5.0, 1.0);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples.last().unwrap().mean, 42.0);
        assert_eq!(samples.last().unwrap().variance, 0.0);

        let mut empty = AsyncSimulation::new(
            config(WakeupDistribution::Exponential { mean: 1.0 }),
            &[],
            17,
        );
        let samples = empty.run_until(2.0, 1.0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples.last().unwrap().mean, 0.0);
    }

    #[test]
    fn event_ordering_is_stable_for_equal_times() {
        let a = QueuedEvent {
            time: 1.0,
            sequence: 1,
            event: Event::Wakeup(NodeId::new(0)),
        };
        let b = QueuedEvent {
            time: 1.0,
            sequence: 2,
            event: Event::Wakeup(NodeId::new(1)),
        };
        assert!(a < b);
        let c = QueuedEvent {
            time: 0.5,
            sequence: 9,
            event: Event::Wakeup(NodeId::new(2)),
        };
        assert!(c < a);
    }
}
