//! Event-driven (asynchronous) simulation engine.
//!
//! The paper's theoretical model assumes synchronised cycles, but the protocol
//! itself is asynchronous: "each node is autonomous" and only needs a local
//! clock. This engine drops the cycle synchronisation entirely — every node
//! wakes up at its own jittered interval (or after an exponentially
//! distributed waiting time, the natural realisation of `GETPAIR_RAND`) and
//! messages take a configurable transmission delay. It is used to validate
//! that convergence per *unit time* matches the cycle-based prediction even
//! without synchronised starts, supporting the paper's claim that the
//! synchronisation assumption can be relaxed.

use crate::sampling::{instantiate_sampler, FAULTS_STREAM};
use crate::SeedSequence;
use aggregate_core::node::ProtocolNode;
use aggregate_core::sampler::{sample_live_peer, PeerSampler, SamplerConfig, SamplerDirectory};
use aggregate_core::{ExchangeCore, GossipMessage, ProtocolConfig};
use gossip_faults::{FaultInjector, FaultPlan, PlanInjector};
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A parameter of [`AsyncConfig`] or [`WakeupDistribution`] that would break
/// the event queue: negative, zero (where forbidden), NaN or infinite values
/// schedule events backwards in time or at times that defeat the queue's
/// ordering (NaN compares as `Equal` in the internal event queue).
#[derive(Debug, Clone, PartialEq)]
pub enum AsyncConfigError {
    /// `message_latency` is negative, NaN or infinite.
    InvalidLatency {
        /// The rejected latency value.
        value: f64,
    },
    /// A wakeup-distribution parameter is non-positive, NaN or infinite.
    InvalidWakeup {
        /// Which parameter was rejected (`"period"` or `"mean"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The peer-sampling configuration cannot be realised (invalid overlay
    /// generator parameters, zero NEWSCAST cache, unknown variant).
    Sampler {
        /// Human-readable rejection reason.
        reason: String,
    },
    /// The fault schedule is malformed (a probability out of range, an
    /// empty partition window, a reversed loss ramp, …).
    Faults {
        /// Human-readable rejection reason.
        reason: String,
    },
}

impl fmt::Display for AsyncConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncConfigError::InvalidLatency { value } => {
                write!(f, "message latency {value} must be finite and ≥ 0")
            }
            AsyncConfigError::InvalidWakeup { parameter, value } => {
                write!(f, "wakeup {parameter} {value} must be finite and > 0")
            }
            AsyncConfigError::Sampler { reason } => {
                write!(f, "peer-sampling configuration rejected: {reason}")
            }
            AsyncConfigError::Faults { reason } => {
                write!(f, "fault schedule rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for AsyncConfigError {}

/// How a node chooses the waiting time between its own exchange initiations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WakeupDistribution {
    /// Fixed period with a uniformly random initial phase — the paper's
    /// `GETWAITINGTIME` returning the constant `Δt`, desynchronised across
    /// nodes because there is no common start signal.
    FixedPeriod {
        /// The cycle length `Δt` in simulated time units.
        period: f64,
    },
    /// Exponentially distributed waiting times with the given mean — the
    /// randomised `GETWAITINGTIME` the paper mentions for `GETPAIR_RAND`.
    Exponential {
        /// Mean waiting time in simulated time units.
        mean: f64,
    },
}

impl WakeupDistribution {
    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncConfigError::InvalidWakeup`] when the period or mean is
    /// non-positive, NaN or infinite — any of which would schedule wakeups
    /// backwards in time or break the event queue's ordering.
    pub fn validate(&self) -> Result<(), AsyncConfigError> {
        let (parameter, value) = match *self {
            WakeupDistribution::FixedPeriod { period } => ("period", period),
            WakeupDistribution::Exponential { mean } => ("mean", mean),
        };
        if !value.is_finite() || value <= 0.0 {
            return Err(AsyncConfigError::InvalidWakeup { parameter, value });
        }
        Ok(())
    }

    fn first_wakeup<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => rng.gen_range(0.0..period),
            WakeupDistribution::Exponential { mean } => sample_exponential(mean, rng),
        }
    }

    fn next_wakeup<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => period,
            WakeupDistribution::Exponential { mean } => sample_exponential(mean, rng),
        }
    }

    /// The span of simulated time that plays the role of one protocol cycle
    /// (each node wakes once per such span in expectation). The fault lab
    /// and the overlay-maintenance clock both advance on this grid, mapping
    /// the cycle-indexed [`FaultPlan`] onto continuous time.
    pub fn cycle_duration(&self) -> f64 {
        match *self {
            WakeupDistribution::FixedPeriod { period } => period,
            WakeupDistribution::Exponential { mean } => mean,
        }
    }
}

fn sample_exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Smallest `k ≥ 1` whose grid point `k * interval` lies strictly after
/// `now` — *as computed in floating point*, which is how the sampling loop
/// will compare it. The division only seeds the search; the `while` guards
/// correct for rounding in either direction so a resumed run neither
/// re-emits the previous call's last grid point nor skips one.
fn first_sample_index_after(now: f64, interval: f64) -> u64 {
    let mut k = ((now / interval).floor().max(0.0) as u64).saturating_add(1);
    while k > 1 && (k - 1) as f64 * interval > now {
        k -= 1;
    }
    while k as f64 * interval <= now {
        k += 1;
    }
    k
}

/// Configuration of the asynchronous engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// Per-node protocol configuration (epoch machinery is driven by wakeup
    /// counts, one wakeup playing the role of one local cycle).
    pub protocol: ProtocolConfig,
    /// Distribution of the waiting time between a node's initiations.
    pub wakeup: WakeupDistribution,
    /// One-way message latency in simulated time units (applied to pushes and
    /// replies independently).
    pub message_latency: f64,
    /// The peer-sampling layer exchange partners are drawn from, exactly as
    /// in the cycle engines: uniform-complete (the default, bit-identical to
    /// the engine's historical uniform pick loop), a static overlay, or a
    /// live NEWSCAST membership whose view exchanges run once per
    /// cycle-equivalent of simulated time (the wakeup period, or the mean
    /// waiting time for exponential wakeups).
    pub sampler: SamplerConfig,
}

impl AsyncConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncConfigError`] when the message latency is negative, NaN
    /// or infinite, or the wakeup distribution's parameters are invalid.
    pub fn validate(&self) -> Result<(), AsyncConfigError> {
        if !self.message_latency.is_finite() || self.message_latency < 0.0 {
            return Err(AsyncConfigError::InvalidLatency {
                value: self.message_latency,
            });
        }
        self.wakeup.validate()
    }
}

/// A snapshot of the network state taken by [`AsyncSimulation::run_until`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSample {
    /// Simulated time of the snapshot.
    pub time: f64,
    /// Variance of the estimates across nodes.
    pub variance: f64,
    /// Mean of the estimates across nodes.
    pub mean: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    Wakeup(NodeId),
    Deliver(GossipMessage),
}

/// Entry of the event queue, ordered by time (earliest first via `Reverse`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct QueuedEvent {
    time: f64,
    sequence: u64,
    event: Event,
}

impl Eq for QueuedEvent {}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.sequence.cmp(&other.sequence))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The async engine's [`SamplerDirectory`]: positions enumerate the dense
/// live list (node-index order until the first crash perturbs it), liveness
/// is one array lookup.
#[derive(Debug, Clone, Copy)]
struct AsyncDirectory<'a> {
    live: &'a [u32],
    pos_of: &'a [u32],
}

impl SamplerDirectory for AsyncDirectory<'_> {
    fn len(&self) -> usize {
        self.live.len()
    }

    fn id_at(&self, pos: usize) -> NodeId {
        NodeId::new(self.live[pos] as usize)
    }

    fn is_live(&self, id: NodeId) -> bool {
        self.pos_of
            .get(id.index())
            .is_some_and(|&pos| pos != u32::MAX)
    }
}

/// Event-driven simulation of the asynchronous protocol.
#[derive(Debug)]
pub struct AsyncSimulation {
    config: AsyncConfig,
    nodes: Vec<ProtocolNode>,
    /// Dense list of live node indices (swap-remove on crash).
    live: Vec<u32>,
    /// Per node index: its position in `live`, or `u32::MAX` once crashed.
    pos_of: Vec<u32>,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: f64,
    sequence: u64,
    rng: StdRng,
    sampler: Box<dyn PeerSampler>,
    /// The fault lab, advanced on the wakeup-period grid: simulated time
    /// `[c·Δt, (c+1)·Δt)` maps to plan cycle `c`.
    injector: Box<dyn FaultInjector>,
    fault_cycle: usize,
    cycle_duration: f64,
    scratch: Vec<GossipMessage>,
}

impl AsyncSimulation {
    /// Creates the simulation with one node per initial value; every node gets
    /// a randomly phased first wakeup so there is no global synchronisation.
    ///
    /// # Errors
    ///
    /// Returns [`AsyncConfigError`] when the configuration's latency or
    /// wakeup parameters are invalid (negative, zero where forbidden, NaN or
    /// infinite) — accepted, they would corrupt the event-queue ordering —
    /// or when the peer-sampling configuration cannot be realised.
    pub fn new(
        config: AsyncConfig,
        initial_values: &[f64],
        seed: u64,
    ) -> Result<Self, AsyncConfigError> {
        AsyncSimulation::with_faults(config, initial_values, seed, FaultPlan::none())
    }

    /// Creates the simulation executing the given [`FaultPlan`]: losses hit
    /// in-flight messages, link failures and partitions veto contact
    /// attempts at wakeup time, crash bursts silence nodes for good and
    /// value injections corrupt running estimates. The plan's cycle index
    /// maps onto simulated time through
    /// [`WakeupDistribution::cycle_duration`]. With [`FaultPlan::none`] this
    /// is exactly [`AsyncSimulation::new`], bit for bit.
    ///
    /// # Errors
    ///
    /// Everything [`AsyncSimulation::new`] rejects, plus
    /// [`AsyncConfigError::Faults`] for a malformed schedule.
    pub fn with_faults(
        config: AsyncConfig,
        initial_values: &[f64],
        seed: u64,
        plan: FaultPlan,
    ) -> Result<Self, AsyncConfigError> {
        config.validate()?;
        plan.validate().map_err(|e| AsyncConfigError::Faults {
            reason: e.to_string(),
        })?;
        let nodes: Vec<ProtocolNode> = initial_values
            .iter()
            .enumerate()
            .map(|(i, &v)| ProtocolNode::new(NodeId::new(i), config.protocol, v))
            .collect();
        let initial_ids: Vec<NodeId> = (0..nodes.len()).map(NodeId::new).collect();
        // Sampler and fault randomness come from labelled streams of the
        // master seed; the engine's own schedule RNG keeps its historical
        // direct seeding, so default-configuration runs reproduce the
        // pre-sampler trajectories bit for bit.
        let seeds = SeedSequence::new(seed);
        let sampler = instantiate_sampler(config.sampler, &initial_ids, &seeds).map_err(|e| {
            AsyncConfigError::Sampler {
                reason: e.to_string(),
            }
        })?;
        let injector = Box::new(PlanInjector::new(
            plan,
            seeds.seed_for_labeled(0, FAULTS_STREAM),
        ));
        let n = nodes.len();
        let mut sim = AsyncSimulation {
            cycle_duration: config.wakeup.cycle_duration(),
            config,
            nodes,
            live: (0..n as u32).collect(),
            pos_of: (0..n as u32).collect(),
            queue: BinaryHeap::new(),
            now: 0.0,
            sequence: 0,
            rng: StdRng::seed_from_u64(seed),
            sampler,
            injector,
            fault_cycle: 0,
            scratch: Vec::new(),
        };
        sim.enter_fault_cycle(0);
        for i in 0..sim.nodes.len() {
            let t = sim.config.wakeup.first_wakeup(&mut sim.rng);
            sim.schedule(t, Event::Wakeup(NodeId::new(i)));
        }
        Ok(sim)
    }

    /// Current simulated time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of nodes that have not crashed.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Whether `id` is live (present and not crashed).
    pub fn is_live(&self, id: NodeId) -> bool {
        self.pos_of
            .get(id.index())
            .is_some_and(|&pos| pos != u32::MAX)
    }

    /// Current estimates of all live nodes (crashed nodes are excluded; the
    /// order is the dense live order, which equals node order until the
    /// first crash).
    pub fn estimates(&self) -> Vec<f64> {
        self.live
            .iter()
            .filter_map(|&i| self.nodes[i as usize].estimate())
            .collect()
    }

    /// Crashes the node at `pos` of the live list: it stops waking up,
    /// in-flight messages to it are dropped on delivery, and the sampler is
    /// notified exactly as under churn.
    fn crash_at_position(&mut self, pos: usize) {
        let idx = self.live.swap_remove(pos);
        self.pos_of[idx as usize] = u32::MAX;
        if pos < self.live.len() {
            let moved = self.live[pos];
            self.pos_of[moved as usize] = pos as u32;
        }
        self.sampler.on_depart(NodeId::new(idx as usize));
    }

    /// Enters plan cycle `cycle`: fires crash bursts (victims from the
    /// engine RNG, as in the cycle engines), applies value injections, and
    /// runs one round of overlay maintenance. Free under the empty plan
    /// with uniform sampling.
    fn enter_fault_cycle(&mut self, cycle: usize) {
        self.fault_cycle = cycle;
        self.injector.begin_cycle(cycle);
        let crash_victims = self.injector.crash_count(self.live.len());
        for _ in 0..crash_victims {
            if self.live.is_empty() {
                break;
            }
            let pos = self.rng.gen_range(0..self.live.len());
            self.crash_at_position(pos);
        }
        for (pos, value) in self.injector.corruptions(self.live.len()) {
            let idx = self.live[pos] as usize;
            self.nodes[idx].corrupt_estimate(value);
        }
        let AsyncSimulation {
            sampler,
            live,
            pos_of,
            ..
        } = self;
        sampler.begin_cycle(&AsyncDirectory { live, pos_of });
    }

    /// Advances the fault-lab clock to cover `time`: every wakeup-period
    /// boundary crossed enters the next plan cycle.
    fn advance_fault_cycles(&mut self, time: f64) {
        while (self.fault_cycle + 1) as f64 * self.cycle_duration <= time {
            let next = self.fault_cycle + 1;
            self.enter_fault_cycle(next);
        }
    }

    /// Runs the simulation until `end_time`, taking a [`TimeSample`] every
    /// `sample_interval` time units.
    ///
    /// The call is resumable: a second invocation continues from the current
    /// [`AsyncSimulation::now`], and sampling restarts at the first grid
    /// point `k * sample_interval` *after* `now` rather than flooding the
    /// caller with stale samples for already-elapsed times. Sample times are
    /// always computed as `k * sample_interval` (never by accumulation), so
    /// a run split across calls lands on bit-identical grid points to an
    /// uninterrupted one even for intervals that are not exactly
    /// representable in floating point.
    ///
    /// # Panics
    ///
    /// Panics when `sample_interval` is not finite and positive (it would
    /// loop forever otherwise).
    pub fn run_until(&mut self, end_time: f64, sample_interval: f64) -> Vec<TimeSample> {
        assert!(
            sample_interval.is_finite() && sample_interval > 0.0,
            "sample interval {sample_interval} must be finite and > 0"
        );
        let mut samples = Vec::new();
        let mut sample_index = first_sample_index_after(self.now, sample_interval);
        let mut next_sample = sample_index as f64 * sample_interval;
        while let Some(Reverse(entry)) = self.queue.peek().copied() {
            if entry.time > end_time {
                break;
            }
            self.queue.pop();
            while entry.time >= next_sample && next_sample <= end_time {
                samples.push(self.sample(next_sample));
                sample_index += 1;
                next_sample = sample_index as f64 * sample_interval;
            }
            self.now = entry.time;
            self.advance_fault_cycles(entry.time);
            self.dispatch(entry.event);
        }
        while next_sample <= end_time {
            samples.push(self.sample(next_sample));
            sample_index += 1;
            next_sample = sample_index as f64 * sample_interval;
        }
        self.now = end_time;
        samples
    }

    fn sample(&self, time: f64) -> TimeSample {
        let estimates = self.estimates();
        TimeSample {
            time,
            variance: aggregate_core::avg::variance(&estimates),
            mean: aggregate_core::avg::mean(&estimates),
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Wakeup(node_id) => {
                // A crashed node stays silent for good: its wakeup chain
                // ends here (no reschedule).
                if !self.is_live(node_id) {
                    return;
                }
                if self.live.len() >= 2 {
                    // Partner from the peer-sampling layer. The default
                    // uniform sampler consumes the engine RNG exactly like
                    // the historical inline pick loop, so default runs stay
                    // bit-identical.
                    let peer = {
                        let AsyncSimulation {
                            sampler,
                            live,
                            pos_of,
                            rng,
                            ..
                        } = self;
                        let initiator_pos = pos_of[node_id.index()] as usize;
                        sample_live_peer(
                            sampler.as_mut(),
                            &AsyncDirectory { live, pos_of },
                            initiator_pos,
                            rng,
                        )
                    };
                    // The fault lab vetoes the contact when the link is dead
                    // or a partition separates the endpoints; the node's
                    // local clock still ticks, and the failed contact is
                    // reported to the sampler (tail-drop healing).
                    if let Some(peer) = peer {
                        if self.injector.link_blocked(node_id, peer) {
                            self.sampler.peer_failed(node_id, peer);
                        } else {
                            let mut pushes = std::mem::take(&mut self.scratch);
                            ExchangeCore::begin(
                                &mut self.nodes[node_id.index()],
                                peer,
                                &mut pushes,
                            );
                            for push in pushes.drain(..) {
                                let delay = self.config.message_latency;
                                self.schedule(self.now + delay, Event::Deliver(push));
                            }
                            self.scratch = pushes;
                        }
                    }
                    // One wakeup is one local cycle for the epoch machinery.
                    self.nodes[node_id.index()].end_cycle();
                }
                let wait = self.config.wakeup.next_wakeup(&mut self.rng);
                self.schedule(self.now + wait, Event::Wakeup(node_id));
            }
            Event::Deliver(message) => {
                let recipient = message.recipient();
                if recipient.index() >= self.nodes.len() || !self.is_live(recipient) {
                    return;
                }
                // Message omission: each in-flight message (push or reply)
                // is lost independently at the cycle's effective loss rate.
                let loss = self.injector.loss_probability();
                if loss > 0.0 && self.rng.gen_bool(loss) {
                    return;
                }
                if let Some(reply) =
                    ExchangeCore::deliver(&mut self.nodes[recipient.index()], message)
                {
                    self.schedule(
                        self.now + self.config.message_latency,
                        Event::Deliver(reply),
                    );
                }
            }
        }
    }

    fn schedule(&mut self, time: f64, event: Event) {
        self.sequence += 1;
        self.queue.push(Reverse(QueuedEvent {
            time,
            sequence: self.sequence,
            event,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(wakeup: WakeupDistribution) -> AsyncConfig {
        AsyncConfig {
            protocol: ProtocolConfig::builder()
                .cycles_per_epoch(1_000) // effectively no restarts during the test
                .build()
                .unwrap(),
            wakeup,
            message_latency: 0.01,
            sampler: SamplerConfig::UniformComplete,
        }
    }

    #[test]
    fn asynchronous_averaging_converges_without_global_synchronisation() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            3,
        )
        .unwrap();
        let samples = sim.run_until(20.0, 1.0);
        assert_eq!(samples.len(), 20);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-3, "variance {} too large", last.variance);
        assert!((last.mean - true_mean).abs() < 0.5);
        assert!(sim.now() >= 20.0 - 1e-9);
    }

    #[test]
    fn variance_decreases_roughly_exponentially_in_time() {
        let values: Vec<f64> = (0..500).map(|i| (i % 50) as f64).collect();
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            5,
        )
        .unwrap();
        let samples = sim.run_until(10.0, 1.0);
        // Each unit of time is one "cycle worth" of wakeups, so consecutive
        // samples should show a clear geometric decrease.
        let mut decreasing = 0;
        for pair in samples.windows(2) {
            if pair[1].variance < pair[0].variance {
                decreasing += 1;
            }
        }
        assert!(
            decreasing >= samples.len() - 2,
            "variance must decrease in almost every interval"
        );
        let first = samples.first().unwrap().variance;
        let last = samples.last().unwrap().variance;
        assert!(last < first * 1e-3);
    }

    #[test]
    fn exponential_wakeups_also_converge() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::Exponential { mean: 1.0 }),
            &values,
            7,
        )
        .unwrap();
        let samples = sim.run_until(25.0, 5.0);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-2);
        assert!((last.mean - true_mean).abs() < 1.0);
    }

    #[test]
    fn mean_is_conserved_despite_in_flight_messages() {
        // With a non-zero latency some mass is "in flight" at any instant, but
        // the long-run mean of the node estimates stays at the true average.
        let values: Vec<f64> = (0..100).map(|i| (i * 3 % 40) as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let mut sim = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &values,
            11,
        )
        .unwrap();
        let samples = sim.run_until(15.0, 15.0);
        assert!((samples.last().unwrap().mean - true_mean).abs() < 0.75);
    }

    #[test]
    fn degenerate_networks_are_handled() {
        let mut single = AsyncSimulation::new(
            config(WakeupDistribution::FixedPeriod { period: 1.0 }),
            &[42.0],
            13,
        )
        .unwrap();
        let samples = single.run_until(5.0, 1.0);
        assert_eq!(samples.len(), 5);
        assert_eq!(samples.last().unwrap().mean, 42.0);
        assert_eq!(samples.last().unwrap().variance, 0.0);

        let mut empty = AsyncSimulation::new(
            config(WakeupDistribution::Exponential { mean: 1.0 }),
            &[],
            17,
        )
        .unwrap();
        let samples = empty.run_until(2.0, 1.0);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples.last().unwrap().mean, 0.0);
    }

    #[test]
    fn run_until_resumes_without_replaying_stale_samples() {
        // Regression: a second run_until used to restart next_sample at
        // sample_interval, flooding the caller with samples for times that
        // had already elapsed.
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let cfg = config(WakeupDistribution::FixedPeriod { period: 1.0 });
        let mut split = AsyncSimulation::new(cfg, &values, 19).unwrap();
        let mut first = split.run_until(10.0, 1.0);
        assert_eq!(first.len(), 10);
        let second = split.run_until(20.0, 1.0);
        assert_eq!(second.len(), 10, "resume must not replay samples 1..=10");
        assert!(second.iter().all(|s| s.time > 10.0));
        assert!((second[0].time - 11.0).abs() < 1e-9);

        // The split run is observably identical to one uninterrupted run:
        // same event processing, same sample times, same values.
        let mut whole = AsyncSimulation::new(cfg, &values, 19).unwrap();
        let reference = whole.run_until(20.0, 1.0);
        first.extend(second);
        assert_eq!(first, reference);

        // Resuming off the sample grid starts at the next grid point.
        let mut offgrid = AsyncSimulation::new(cfg, &values, 23).unwrap();
        offgrid.run_until(2.5, 1.0);
        let resumed = offgrid.run_until(4.0, 1.0);
        let times: Vec<f64> = resumed.iter().map(|s| s.time).collect();
        assert_eq!(times, vec![3.0, 4.0]);

        // Intervals with no exact binary representation (0.7, 0.1) must not
        // duplicate or drop grid samples across the split: sample times are
        // k*interval in both paths, never an accumulated sum.
        for (interval, split_at, end) in [(0.7, 3.5, 7.0), (0.1, 2.0, 4.0)] {
            let mut split = AsyncSimulation::new(cfg, &values, 29).unwrap();
            let mut joined = split.run_until(split_at, interval);
            joined.extend(split.run_until(end, interval));
            let mut whole = AsyncSimulation::new(cfg, &values, 29).unwrap();
            assert_eq!(
                joined,
                whole.run_until(end, interval),
                "split at {split_at} with interval {interval} diverged"
            );
        }
    }

    #[test]
    fn first_sample_index_is_exact_on_awkward_grids() {
        // The grid point at the returned index is strictly after `now`, and
        // the one before it is not — evaluated in f64, like the sampler.
        for (now, interval) in [
            (0.0, 1.0),
            (3.5, 0.7),
            (2.0, 0.1),
            (20.0, 1.0),
            (0.3, 0.1),
            (1e9, 0.1),
        ] {
            let k = first_sample_index_after(now, interval);
            assert!(k as f64 * interval > now, "k*i must exceed now={now}");
            if k > 1 {
                assert!(
                    (k - 1) as f64 * interval <= now,
                    "(k-1)*i must not exceed now={now} (interval {interval})"
                );
            }
        }
    }

    #[test]
    fn invalid_configurations_are_rejected_with_typed_errors() {
        let values = [1.0, 2.0];
        for (wakeup, latency) in [
            (WakeupDistribution::FixedPeriod { period: 1.0 }, -0.5),
            (WakeupDistribution::FixedPeriod { period: 1.0 }, f64::NAN),
            (
                WakeupDistribution::FixedPeriod { period: 1.0 },
                f64::INFINITY,
            ),
        ] {
            let bad = AsyncConfig {
                message_latency: latency,
                ..config(wakeup)
            };
            assert!(matches!(
                AsyncSimulation::new(bad, &values, 1),
                Err(AsyncConfigError::InvalidLatency { .. })
            ));
        }
        for wakeup in [
            WakeupDistribution::FixedPeriod { period: 0.0 },
            WakeupDistribution::FixedPeriod { period: -1.0 },
            WakeupDistribution::FixedPeriod { period: f64::NAN },
            WakeupDistribution::Exponential { mean: 0.0 },
            WakeupDistribution::Exponential { mean: f64::NAN },
            WakeupDistribution::Exponential {
                mean: f64::INFINITY,
            },
        ] {
            let err = AsyncSimulation::new(config(wakeup), &values, 1).unwrap_err();
            assert!(matches!(err, AsyncConfigError::InvalidWakeup { .. }));
            assert!(!err.to_string().is_empty());
        }
        // A zero latency is fine (instant delivery), as is a valid config.
        let zero_latency = AsyncConfig {
            message_latency: 0.0,
            ..config(WakeupDistribution::FixedPeriod { period: 1.0 })
        };
        assert!(zero_latency.validate().is_ok());
        assert!(AsyncSimulation::new(zero_latency, &values, 1).is_ok());
    }

    #[test]
    fn empty_fault_plan_is_bit_identical_to_the_plain_constructor() {
        let values: Vec<f64> = (0..200).map(|i| (i % 31) as f64).collect();
        let cfg = config(WakeupDistribution::FixedPeriod { period: 1.0 });
        let mut plain = AsyncSimulation::new(cfg, &values, 37).unwrap();
        let mut faulted =
            AsyncSimulation::with_faults(cfg, &values, 37, FaultPlan::none()).unwrap();
        let a = plain.run_until(12.0, 1.0);
        let b = faulted.run_until(12.0, 1.0);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.time.to_bits(), y.time.to_bits());
            assert_eq!(x.mean.to_bits(), y.mean.to_bits(), "t={}", x.time);
            assert_eq!(x.variance.to_bits(), y.variance.to_bits(), "t={}", x.time);
        }
    }

    #[test]
    fn newscast_sampling_converges_on_the_async_engine() {
        let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let cfg = AsyncConfig {
            sampler: SamplerConfig::newscast(),
            ..config(WakeupDistribution::FixedPeriod { period: 1.0 })
        };
        let mut sim = AsyncSimulation::new(cfg, &values, 3).unwrap();
        let samples = sim.run_until(20.0, 1.0);
        let last = samples.last().unwrap();
        assert!(last.variance < 1e-2, "variance {} too large", last.variance);
        assert!((last.mean - true_mean).abs() < 1.0);
    }

    #[test]
    fn invalid_sampler_configurations_are_rejected() {
        let cfg = AsyncConfig {
            sampler: SamplerConfig::Newscast { cache_size: 0 },
            ..config(WakeupDistribution::FixedPeriod { period: 1.0 })
        };
        assert!(matches!(
            AsyncSimulation::new(cfg, &[1.0, 2.0], 1),
            Err(AsyncConfigError::Sampler { .. })
        ));
    }

    #[test]
    fn crash_bursts_silence_nodes_and_survivors_keep_converging() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let cfg = config(WakeupDistribution::FixedPeriod { period: 1.0 });
        let plan = FaultPlan::with_crash_burst(5, 0.3);
        let mut sim = AsyncSimulation::with_faults(cfg, &values, 7, plan).unwrap();
        let samples = sim.run_until(25.0, 1.0);
        assert_eq!(sim.live_count(), 140);
        assert_eq!(sim.estimates().len(), 140);
        let last = samples.last().unwrap();
        assert!(
            last.variance < 1e-2,
            "survivors must converge, variance {}",
            last.variance
        );
        // The crash biases the surviving average away from the global one,
        // but it stays a finite consensus value inside the initial range.
        assert!(last.mean.is_finite());
        assert!((0.0..200.0).contains(&last.mean));
    }

    #[test]
    fn message_loss_slows_but_does_not_prevent_async_convergence() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let cfg = config(WakeupDistribution::FixedPeriod { period: 1.0 });
        let mut reliable = AsyncSimulation::new(cfg, &values, 11).unwrap();
        let mut lossy =
            AsyncSimulation::with_faults(cfg, &values, 11, FaultPlan::with_message_loss(0.2))
                .unwrap();
        let r = reliable.run_until(15.0, 15.0);
        let l = lossy.run_until(15.0, 15.0);
        let (rv, lv) = (r.last().unwrap().variance, l.last().unwrap().variance);
        assert!(lv < 1.0, "lossy async run still converges, got {lv}");
        assert!(rv <= lv, "loss can only slow convergence ({rv} vs {lv})");
    }

    #[test]
    fn a_healed_async_partition_converges_to_the_global_average() {
        let values: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let true_mean = aggregate_core::avg::mean(&values);
        let cfg = config(WakeupDistribution::FixedPeriod { period: 1.0 });
        // Split over t ∈ [2, 10): while split, the two sides converge to
        // different means; after healing everything meets the global one.
        let plan = FaultPlan::with_partition(2, 10, 0.5);
        let mut sim = AsyncSimulation::with_faults(cfg, &values, 13, plan).unwrap();
        let during = sim.run_until(9.0, 1.0);
        let while_split = during.last().unwrap();
        let healed = sim.run_until(40.0, 1.0);
        let after = healed.last().unwrap();
        assert!(
            after.variance < while_split.variance.max(1e-6),
            "healing must resume convergence ({} -> {})",
            while_split.variance,
            after.variance
        );
        assert!(after.variance < 1e-2, "variance {}", after.variance);
        assert!((after.mean - true_mean).abs() < 1.0);
    }

    #[test]
    fn event_ordering_is_stable_for_equal_times() {
        let a = QueuedEvent {
            time: 1.0,
            sequence: 1,
            event: Event::Wakeup(NodeId::new(0)),
        };
        let b = QueuedEvent {
            time: 1.0,
            sequence: 2,
            event: Event::Wakeup(NodeId::new(1)),
        };
        assert!(a < b);
        let c = QueuedEvent {
            time: 0.5,
            sequence: 9,
            event: Event::Wakeup(NodeId::new(2)),
        };
        assert!(c < a);
    }
}
