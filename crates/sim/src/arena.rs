//! Slot-reclaiming node arena with generation-tagged identifiers.
//!
//! The Figure 4 scenario churns ~200 nodes per cycle forever: a naive
//! `Vec<Option<Node>>` arena that always appends on join and leaves a `None`
//! hole on departure leaks one slot per departure (≈100 000 dead slots per
//! 500-cycle oscillation period) and its node indices grow without bound.
//! [`NodeArena`] fixes both: departed slots go on a free list and are reused
//! by the next join, so capacity stays bounded by the peak number of
//! simultaneously live nodes (plus the joins that land before the same
//! cycle's departures).
//!
//! Reusing a slot raises an aliasing question: a stale [`NodeId`] held from a
//! previous occupant must not resolve to the new occupant. The arena
//! therefore packs a per-slot *generation* into the identifier itself —
//! the low [`SLOT_BITS`] bits of the raw `u32` are the slot index, the high
//! bits count how many times the slot has been recycled. Identifiers of the
//! initial population are generation 0, i.e. plain indices, so existing
//! `NodeId::new(i)` call sites keep working.

use aggregate_core::node::ProtocolNode;
use overlay_topology::NodeId;

/// Number of low bits of a raw [`NodeId`] that address the slot; the
/// remaining high bits hold the slot's generation.
///
/// 21 bits ≈ 2 M simultaneously live nodes — an order of magnitude above the
/// paper's 110 000-node peak — leaving 11 generation bits (2 048 reuses per
/// slot before the counter wraps; with departures spread uniformly over the
/// arena this covers hundreds of millions of churn events per run).
pub const SLOT_BITS: u32 = 21;

/// Maximum number of simultaneously allocated slots.
pub const MAX_SLOTS: usize = 1 << SLOT_BITS;

const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;
const GENERATION_LIMIT: u32 = 1 << (32 - SLOT_BITS);

/// Sentinel for "slot is not live" in the slot → live-position map.
const NOT_LIVE: u32 = u32::MAX;

/// Packs a slot index and generation into a [`NodeId`].
#[inline]
fn pack(slot: u32, generation: u32) -> NodeId {
    NodeId::from_u32((generation << SLOT_BITS) | slot)
}

/// Splits a [`NodeId`] into `(slot, generation)`.
#[inline]
fn unpack(id: NodeId) -> (u32, u32) {
    let raw = id.as_u32();
    (raw & SLOT_MASK, raw >> SLOT_BITS)
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    node: Option<ProtocolNode>,
}

/// A generational arena of [`ProtocolNode`]s with O(1) insert, remove and
/// uniform sampling over the live set.
///
/// * `slots` owns the node state; a departed slot keeps its generation and
///   goes on `free` for reuse.
/// * `live` is a dense array of the currently live slot indices — the
///   iteration and sampling surface for the per-cycle active phase.
/// * `live_pos` maps a slot index back to its position in `live` so removal
///   by identifier is O(1) swap-remove rather than a linear scan.
#[derive(Debug, Default)]
pub struct NodeArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: Vec<u32>,
    live_pos: Vec<u32>,
}

impl NodeArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        NodeArena::default()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no node is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of allocated slots (live + reusable). This is the resident
    /// footprint of the arena; the churn tests assert it stays bounded by the
    /// peak live size plus the per-cycle churn.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of dead slots currently awaiting reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// The dense array of live slot indices, in arena order.
    pub fn live_slots(&self) -> &[u32] {
        &self.live
    }

    /// The identifier of the current occupant of `slot` (which must be live).
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of bounds; returns a stale-generation id
    /// only if the caller raced an arena mutation, which the engine never
    /// does within a cycle.
    pub fn id_at_slot(&self, slot: u32) -> NodeId {
        pack(slot, self.slots[slot as usize].generation)
    }

    /// Read access to the live occupant of `slot`, if any.
    pub fn node_at_slot(&self, slot: u32) -> Option<&ProtocolNode> {
        self.slots.get(slot as usize)?.node.as_ref()
    }

    /// Mutable access to the live occupant of `slot`, if any.
    pub fn node_at_slot_mut(&mut self, slot: u32) -> Option<&mut ProtocolNode> {
        self.slots.get_mut(slot as usize)?.node.as_mut()
    }

    /// Resolves an identifier to its node — `None` when the slot is dead *or*
    /// the identifier's generation is stale (a previous occupant).
    pub fn get(&self, id: NodeId) -> Option<&ProtocolNode> {
        let (slot, generation) = unpack(id);
        let entry = self.slots.get(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        entry.node.as_ref()
    }

    /// Mutable variant of [`NodeArena::get`].
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut ProtocolNode> {
        let (slot, generation) = unpack(id);
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        entry.node.as_mut()
    }

    /// Inserts a node, reusing a free slot when one exists. The constructor
    /// closure receives the identifier the node will live under (slot +
    /// fresh generation).
    ///
    /// # Panics
    ///
    /// Panics when all [`MAX_SLOTS`] slots are simultaneously live.
    pub fn insert(&mut self, make_node: impl FnOnce(NodeId) -> ProtocolNode) -> NodeId {
        let slot = match self.free.pop() {
            Some(slot) => {
                // Recycled slot: bump the generation so identifiers of the
                // previous occupant no longer resolve. Wrap-around after
                // GENERATION_LIMIT reuses is documented and accepted.
                let entry = &mut self.slots[slot as usize];
                entry.generation = (entry.generation + 1) % GENERATION_LIMIT;
                slot
            }
            None => {
                assert!(
                    self.slots.len() < MAX_SLOTS,
                    "node arena exhausted: {MAX_SLOTS} simultaneously live slots"
                );
                self.slots.push(Slot {
                    generation: 0,
                    node: None,
                });
                self.live_pos.push(NOT_LIVE);
                (self.slots.len() - 1) as u32
            }
        };
        let id = pack(slot, self.slots[slot as usize].generation);
        self.slots[slot as usize].node = Some(make_node(id));
        self.live_pos[slot as usize] = self.live.len() as u32;
        self.live.push(slot);
        id
    }

    /// Removes the node with the given identifier. Returns `false` when the
    /// identifier is stale or the slot is already dead.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (slot, generation) = unpack(id);
        match self.slots.get(slot as usize) {
            Some(entry) if entry.generation == generation && entry.node.is_some() => {
                self.remove_slot(slot);
                true
            }
            _ => false,
        }
    }

    /// Removes the live node at position `pos` of the dense live array
    /// (O(1) swap-remove) — the primitive behind uniform random departures.
    ///
    /// # Panics
    ///
    /// Panics when `pos` is out of bounds.
    pub fn remove_live_at(&mut self, pos: usize) {
        let slot = self.live[pos];
        self.remove_slot(slot);
    }

    fn remove_slot(&mut self, slot: u32) {
        let pos = self.live_pos[slot as usize];
        debug_assert_ne!(pos, NOT_LIVE, "removing a slot that is not live");
        let last = *self.live.last().expect("live set contains the slot");
        self.live.swap_remove(pos as usize);
        if last != slot {
            self.live_pos[last as usize] = pos;
        }
        self.live_pos[slot as usize] = NOT_LIVE;
        self.slots[slot as usize].node = None;
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::ProtocolConfig;

    fn make(id: NodeId, value: f64) -> ProtocolNode {
        ProtocolNode::new(id, ProtocolConfig::default(), value)
    }

    fn arena_with(n: usize) -> (NodeArena, Vec<NodeId>) {
        let mut arena = NodeArena::new();
        let ids = (0..n)
            .map(|i| arena.insert(|id| make(id, i as f64)))
            .collect();
        (arena, ids)
    }

    #[test]
    fn initial_population_gets_dense_generation_zero_ids() {
        let (arena, ids) = arena_with(4);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.slot_capacity(), 4);
        assert_eq!(arena.free_slots(), 0);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i, "generation 0 ids are plain indices");
            assert_eq!(arena.get(*id).unwrap().local_value(), i as f64);
        }
    }

    #[test]
    fn removal_feeds_the_free_list_and_insert_reuses_it() {
        let (mut arena, ids) = arena_with(3);
        assert!(arena.remove(ids[1]));
        assert!(!arena.remove(ids[1]), "double removal is rejected");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.free_slots(), 1);

        let newcomer = arena.insert(|id| make(id, 42.0));
        assert_eq!(arena.slot_capacity(), 3, "slot was reused, not appended");
        assert_eq!(arena.free_slots(), 0);
        let (slot, generation) = unpack(newcomer);
        assert_eq!(slot, 1);
        assert_eq!(generation, 1);
        assert_eq!(arena.get(newcomer).unwrap().local_value(), 42.0);
    }

    #[test]
    fn stale_ids_do_not_alias_the_new_occupant() {
        let (mut arena, ids) = arena_with(2);
        let stale = ids[0];
        arena.remove(stale);
        let fresh = arena.insert(|id| make(id, 7.0));
        assert_ne!(stale, fresh);
        assert!(arena.get(stale).is_none(), "stale id must not resolve");
        assert!(
            !arena.remove(stale),
            "stale id must not remove the newcomer"
        );
        assert!(arena.get(fresh).is_some());
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn live_positions_stay_consistent_under_swap_remove() {
        let (mut arena, ids) = arena_with(6);
        arena.remove(ids[0]);
        arena.remove(ids[3]);
        arena.remove_live_at(0);
        assert_eq!(arena.len(), 3);
        // Every live slot maps back to its own position.
        for (pos, &slot) in arena.live_slots().iter().enumerate() {
            assert_eq!(arena.live_pos[slot as usize] as usize, pos);
            assert!(arena.node_at_slot(slot).is_some());
            assert!(arena.get(arena.id_at_slot(slot)).is_some());
        }
        // The removed-by-position node is gone as well.
        let live_values: Vec<f64> = arena
            .live_slots()
            .iter()
            .map(|&slot| arena.node_at_slot(slot).unwrap().local_value())
            .collect();
        assert_eq!(live_values.len(), 3);
    }

    #[test]
    fn sustained_churn_keeps_capacity_bounded() {
        let (mut arena, _) = arena_with(100);
        // 1 000 cycles of 10 joins + 10 departures: the leaky arena would
        // grow to 10 100 slots; the free-list arena stays at ~110.
        for round in 0..1_000 {
            for i in 0..10 {
                arena.insert(|id| make(id, (round * 10 + i) as f64));
            }
            for _ in 0..10 {
                arena.remove_live_at(round % arena.len());
            }
        }
        assert_eq!(arena.len(), 100);
        assert!(
            arena.slot_capacity() <= 110,
            "capacity {} must stay bounded by peak live + per-round joins",
            arena.slot_capacity()
        );
    }

    #[test]
    fn generation_wraps_instead_of_overflowing() {
        let mut arena = NodeArena::new();
        let mut id = arena.insert(|id| make(id, 0.0));
        for _ in 0..GENERATION_LIMIT {
            arena.remove(id);
            id = arena.insert(|id| make(id, 0.0));
        }
        // After GENERATION_LIMIT reuses the generation is back to its start
        // value + 1; the arena still has exactly one slot and one live node.
        assert_eq!(arena.slot_capacity(), 1);
        assert_eq!(arena.len(), 1);
        assert!(arena.get(id).is_some());
    }

    #[test]
    fn pack_unpack_round_trip() {
        for (slot, generation) in [(0, 0), (1, 1), (SLOT_MASK, 5), (123_456, 2_047)] {
            let id = pack(slot, generation);
            assert_eq!(unpack(id), (slot, generation));
        }
    }
}
