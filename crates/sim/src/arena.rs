//! Slot-reclaiming node arena with generation-tagged identifiers.
//!
//! The Figure 4 scenario churns ~200 nodes per cycle forever: a naive
//! `Vec<Option<Node>>` arena that always appends on join and leaves a `None`
//! hole on departure leaks one slot per departure (≈100 000 dead slots per
//! 500-cycle oscillation period) and its node indices grow without bound.
//! [`NodeArena`] fixes both: departed slots go on a free list and are reused
//! by the next join, so capacity stays bounded by the peak number of
//! simultaneously live nodes (plus the joins that land before the same
//! cycle's departures).
//!
//! Reusing a slot raises an aliasing question: a stale [`NodeId`] held from a
//! previous occupant must not resolve to the new occupant. The arena
//! therefore packs a per-slot *generation* into the identifier itself — the
//! low bits of the raw `u32` are the slot index, the high bits count how many
//! times the slot has been recycled.
//!
//! The exact bit split is an [`IdLayout`]. The single-threaded engine uses
//! [`IdLayout::single`] — [`SLOT_BITS`] slot bits, the rest generation, so
//! identifiers of the initial population are plain indices and existing
//! `NodeId::new(i)` call sites keep working. The sharded engine gives each
//! shard its own sub-arena with [`IdLayout::sharded`], which additionally
//! packs the owning shard's index between the slot and generation bits:
//!
//! ```text
//! single :  [ generation : 11 ][            slot : 21             ]
//! sharded:  [ generation : 8 ][ shard : 4 ][      slot : 20       ]
//! ```
//!
//! An identifier minted by one shard's arena never resolves in another
//! shard's arena (the tag check fails), and the sharded engine routes
//! messages by extracting the shard bits — no map lookup required.

use aggregate_core::node::ProtocolNode;
use overlay_topology::NodeId;

/// Number of low bits of a raw [`NodeId`] that address the slot in the
/// single-engine layout; the remaining high bits hold the slot's generation.
///
/// 21 bits ≈ 2 M simultaneously live nodes — an order of magnitude above the
/// paper's 110 000-node peak — leaving 11 generation bits (2 048 reuses per
/// slot before the counter wraps; with departures spread uniformly over the
/// arena this covers hundreds of millions of churn events per run).
pub const SLOT_BITS: u32 = 21;

/// Maximum number of simultaneously allocated slots in the single-engine
/// layout.
pub const MAX_SLOTS: usize = 1 << SLOT_BITS;

/// Number of shard-index bits in the sharded layout ([`IdLayout::sharded`]).
pub const SHARD_BITS: u32 = 4;

/// Maximum number of shards the sharded layout can address.
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

/// Number of slot bits per shard in the sharded layout: 2^20 ≈ 1.05 M
/// simultaneously live nodes *per shard*, so even a single-shard arena holds
/// the million-node workload, and 8 generation bits remain (256 reuses per
/// slot — at the Figure 4 churn rate of 200 events/cycle spread over ≥ 90 000
/// slots this covers > 100 000 cycles per run).
pub const SHARDED_SLOT_BITS: u32 = 20;

/// Sentinel for "slot is not live" in the slot → live-position map.
const NOT_LIVE: u32 = u32::MAX;

/// How a raw `u32` [`NodeId`] is split into slot, tag (shard) and generation
/// bits: `[ generation | tag | slot ]`, lowest bits first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdLayout {
    slot_bits: u32,
    tag_bits: u32,
    tag: u32,
}

impl IdLayout {
    /// The single-engine layout: [`SLOT_BITS`] slot bits, no tag, 11
    /// generation bits. Generation-0 identifiers are plain indices.
    pub const fn single() -> Self {
        IdLayout {
            slot_bits: SLOT_BITS,
            tag_bits: 0,
            tag: 0,
        }
    }

    /// The sharded layout for the sub-arena owned by `shard`:
    /// [`SHARDED_SLOT_BITS`] slot bits, [`SHARD_BITS`] shard bits, 8
    /// generation bits.
    ///
    /// # Panics
    ///
    /// Panics when `shard` does not fit in [`SHARD_BITS`] bits.
    pub const fn sharded(shard: u32) -> Self {
        assert!((shard as usize) < MAX_SHARDS, "shard index out of range");
        IdLayout {
            slot_bits: SHARDED_SLOT_BITS,
            tag_bits: SHARD_BITS,
            tag: shard,
        }
    }

    /// Maximum number of simultaneously allocated slots under this layout.
    pub const fn max_slots(&self) -> usize {
        1 << self.slot_bits
    }

    /// Number of generation values before the per-slot counter wraps.
    const fn generation_limit(&self) -> u32 {
        1 << (32 - self.slot_bits - self.tag_bits)
    }

    /// The tag (shard index) this layout stamps into every identifier.
    pub const fn tag(&self) -> u32 {
        self.tag
    }

    /// Packs a slot index and generation (plus this layout's tag) into a
    /// [`NodeId`].
    #[inline]
    fn pack(&self, slot: u32, generation: u32) -> NodeId {
        NodeId::from_u32(((generation << self.tag_bits | self.tag) << self.slot_bits) | slot)
    }

    /// Splits a [`NodeId`] into `(slot, tag, generation)`.
    #[inline]
    fn unpack(&self, id: NodeId) -> (u32, u32, u32) {
        let raw = id.as_u32();
        let slot = raw & ((1 << self.slot_bits) - 1);
        let high = raw >> self.slot_bits;
        let tag = high & ((1 << self.tag_bits) - 1);
        (slot, tag, high >> self.tag_bits)
    }

    /// Extracts the shard index from an identifier minted under the sharded
    /// layout (any shard's instance decodes any sharded identifier).
    #[inline]
    pub fn shard_of(id: NodeId) -> u32 {
        (id.as_u32() >> SHARDED_SLOT_BITS) & ((1 << SHARD_BITS) - 1)
    }

    /// Extracts the slot index from an identifier minted under the sharded
    /// layout.
    #[inline]
    pub fn sharded_slot_of(id: NodeId) -> u32 {
        id.as_u32() & ((1 << SHARDED_SLOT_BITS) - 1)
    }
}

impl Default for IdLayout {
    fn default() -> Self {
        IdLayout::single()
    }
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    node: Option<ProtocolNode>,
}

/// A generational arena of [`ProtocolNode`]s with O(1) insert, remove and
/// uniform sampling over the live set.
///
/// * `slots` owns the node state; a departed slot keeps its generation and
///   goes on `free` for reuse.
/// * `live` is a dense array of the currently live slot indices — the
///   iteration and sampling surface for the per-cycle active phase.
/// * `live_pos` maps a slot index back to its position in `live` so removal
///   by identifier is O(1) swap-remove rather than a linear scan.
#[derive(Debug, Default)]
pub struct NodeArena {
    layout: IdLayout,
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: Vec<u32>,
    live_pos: Vec<u32>,
}

impl NodeArena {
    /// Creates an empty arena with the single-engine layout.
    pub fn new() -> Self {
        NodeArena::default()
    }

    /// Creates an empty arena minting identifiers under `layout` (the sharded
    /// engine passes [`IdLayout::sharded`] per sub-arena).
    pub fn with_layout(layout: IdLayout) -> Self {
        NodeArena {
            layout,
            ..NodeArena::default()
        }
    }

    /// The identifier layout of this arena.
    pub fn layout(&self) -> IdLayout {
        self.layout
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no node is live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of allocated slots (live + reusable). This is the resident
    /// footprint of the arena; the churn tests assert it stays bounded by the
    /// peak live size plus the per-cycle churn.
    pub fn slot_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of dead slots currently awaiting reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// The dense array of live slot indices, in arena order.
    pub fn live_slots(&self) -> &[u32] {
        &self.live
    }

    /// The position of `slot` in the dense live array, or `None` when the
    /// slot is dead or out of range.
    pub fn live_pos_of_slot(&self, slot: u32) -> Option<u32> {
        match self.live_pos.get(slot as usize) {
            Some(&pos) if pos != NOT_LIVE => Some(pos),
            _ => None,
        }
    }

    /// The slot of the live node with identifier `id` — `None` when the
    /// identifier is stale, foreign (minted by another shard's arena) or its
    /// slot is dead. The id-addressed analogue of [`NodeArena::id_at_slot`].
    pub fn slot_of(&self, id: NodeId) -> Option<u32> {
        let (slot, tag, generation) = self.layout.unpack(id);
        if tag != self.layout.tag {
            return None;
        }
        let entry = self.slots.get(slot as usize)?;
        if entry.generation != generation || entry.node.is_none() {
            return None;
        }
        Some(slot)
    }

    /// The identifier of the current occupant of `slot` (which must be live).
    ///
    /// # Panics
    ///
    /// Panics when `slot` is out of bounds; returns a stale-generation id
    /// only if the caller raced an arena mutation, which the engine never
    /// does within a cycle.
    pub fn id_at_slot(&self, slot: u32) -> NodeId {
        self.layout.pack(slot, self.slots[slot as usize].generation)
    }

    /// Read access to the live occupant of `slot`, if any.
    pub fn node_at_slot(&self, slot: u32) -> Option<&ProtocolNode> {
        self.slots.get(slot as usize)?.node.as_ref()
    }

    /// Mutable access to the live occupant of `slot`, if any.
    pub fn node_at_slot_mut(&mut self, slot: u32) -> Option<&mut ProtocolNode> {
        self.slots.get_mut(slot as usize)?.node.as_mut()
    }

    /// Mutable access to the live occupants of two *distinct* slots at once —
    /// the borrow shape of a fused push–pull exchange.
    ///
    /// # Panics
    ///
    /// Panics when `a == b` (an exchange needs two distinct nodes; the
    /// schedulers guarantee this).
    pub fn pair_mut(
        &mut self,
        a: u32,
        b: u32,
    ) -> (Option<&mut ProtocolNode>, Option<&mut ProtocolNode>) {
        assert_ne!(a, b, "pair_mut requires two distinct slots");
        let (lo, hi, swapped) = if a < b { (a, b, false) } else { (b, a, true) };
        let (head, tail) = self.slots.split_at_mut(hi as usize);
        let lo_node = head.get_mut(lo as usize).and_then(|s| s.node.as_mut());
        let hi_node = tail.first_mut().and_then(|s| s.node.as_mut());
        if swapped {
            (hi_node, lo_node)
        } else {
            (lo_node, hi_node)
        }
    }

    /// Resolves an identifier to its node — `None` when the slot is dead,
    /// the identifier's generation is stale (a previous occupant), or the
    /// identifier was minted by a different shard's arena.
    pub fn get(&self, id: NodeId) -> Option<&ProtocolNode> {
        let (slot, tag, generation) = self.layout.unpack(id);
        if tag != self.layout.tag {
            return None;
        }
        let entry = self.slots.get(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        entry.node.as_ref()
    }

    /// Mutable variant of [`NodeArena::get`].
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut ProtocolNode> {
        let (slot, tag, generation) = self.layout.unpack(id);
        if tag != self.layout.tag {
            return None;
        }
        let entry = self.slots.get_mut(slot as usize)?;
        if entry.generation != generation {
            return None;
        }
        entry.node.as_mut()
    }

    /// Inserts a node, reusing a free slot when one exists. The constructor
    /// closure receives the identifier the node will live under (slot +
    /// fresh generation).
    ///
    /// Returns the identifier and the slot it occupies.
    ///
    /// # Panics
    ///
    /// Panics when all of the layout's slots are simultaneously live.
    pub fn insert_at(&mut self, make_node: impl FnOnce(NodeId) -> ProtocolNode) -> (NodeId, u32) {
        let slot = match self.free.pop() {
            Some(slot) => {
                // Recycled slot: bump the generation so identifiers of the
                // previous occupant no longer resolve. Wrap-around after
                // the layout's generation limit is documented and accepted.
                let entry = &mut self.slots[slot as usize];
                entry.generation = (entry.generation + 1) % self.layout.generation_limit();
                slot
            }
            None => {
                assert!(
                    self.slots.len() < self.layout.max_slots(),
                    "node arena exhausted: {} simultaneously live slots",
                    self.layout.max_slots()
                );
                self.slots.push(Slot {
                    generation: 0,
                    node: None,
                });
                self.live_pos.push(NOT_LIVE);
                (self.slots.len() - 1) as u32
            }
        };
        let id = self.layout.pack(slot, self.slots[slot as usize].generation);
        self.slots[slot as usize].node = Some(make_node(id));
        self.live_pos[slot as usize] = self.live.len() as u32;
        self.live.push(slot);
        (id, slot)
    }

    /// [`NodeArena::insert_at`] returning only the identifier.
    pub fn insert(&mut self, make_node: impl FnOnce(NodeId) -> ProtocolNode) -> NodeId {
        self.insert_at(make_node).0
    }

    /// Removes the node with the given identifier. Returns `false` when the
    /// identifier is stale or the slot is already dead.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let (slot, tag, generation) = self.layout.unpack(id);
        if tag != self.layout.tag {
            return false;
        }
        match self.slots.get(slot as usize) {
            Some(entry) if entry.generation == generation && entry.node.is_some() => {
                self.remove_slot(slot);
                true
            }
            _ => false,
        }
    }

    /// Removes the live node at position `pos` of the dense live array
    /// (O(1) swap-remove) — the primitive behind uniform random departures.
    ///
    /// # Panics
    ///
    /// Panics when `pos` is out of bounds.
    pub fn remove_live_at(&mut self, pos: usize) {
        let slot = self.live[pos];
        self.remove_slot(slot);
    }

    /// Removes the live occupant of `slot`. Returns `false` when the slot is
    /// dead or out of bounds.
    pub fn remove_slot_checked(&mut self, slot: u32) -> bool {
        match self.slots.get(slot as usize) {
            Some(entry) if entry.node.is_some() => {
                self.remove_slot(slot);
                true
            }
            _ => false,
        }
    }

    fn remove_slot(&mut self, slot: u32) {
        let pos = self.live_pos[slot as usize];
        debug_assert_ne!(pos, NOT_LIVE, "removing a slot that is not live");
        let last = *self.live.last().expect("live set contains the slot"); // lint-allow(unwrap): live_pos proved the slot live, so the live set is non-empty
        self.live.swap_remove(pos as usize);
        if last != slot {
            self.live_pos[last as usize] = pos;
        }
        self.live_pos[slot as usize] = NOT_LIVE;
        self.slots[slot as usize].node = None;
        self.free.push(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::ProtocolConfig;

    fn make(id: NodeId, value: f64) -> ProtocolNode {
        ProtocolNode::new(id, ProtocolConfig::default(), value)
    }

    fn arena_with(n: usize) -> (NodeArena, Vec<NodeId>) {
        let mut arena = NodeArena::new();
        let ids = (0..n)
            .map(|i| arena.insert(|id| make(id, i as f64)))
            .collect();
        (arena, ids)
    }

    #[test]
    fn initial_population_gets_dense_generation_zero_ids() {
        let (arena, ids) = arena_with(4);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.slot_capacity(), 4);
        assert_eq!(arena.free_slots(), 0);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i, "generation 0 ids are plain indices");
            assert_eq!(arena.get(*id).unwrap().local_value(), i as f64);
        }
    }

    #[test]
    fn removal_feeds_the_free_list_and_insert_reuses_it() {
        let (mut arena, ids) = arena_with(3);
        assert!(arena.remove(ids[1]));
        assert!(!arena.remove(ids[1]), "double removal is rejected");
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.free_slots(), 1);

        let newcomer = arena.insert(|id| make(id, 42.0));
        assert_eq!(arena.slot_capacity(), 3, "slot was reused, not appended");
        assert_eq!(arena.free_slots(), 0);
        let (slot, tag, generation) = arena.layout().unpack(newcomer);
        assert_eq!(slot, 1);
        assert_eq!(tag, 0);
        assert_eq!(generation, 1);
        assert_eq!(arena.get(newcomer).unwrap().local_value(), 42.0);
    }

    #[test]
    fn stale_ids_do_not_alias_the_new_occupant() {
        let (mut arena, ids) = arena_with(2);
        let stale = ids[0];
        arena.remove(stale);
        let fresh = arena.insert(|id| make(id, 7.0));
        assert_ne!(stale, fresh);
        assert!(arena.get(stale).is_none(), "stale id must not resolve");
        assert!(
            !arena.remove(stale),
            "stale id must not remove the newcomer"
        );
        assert!(arena.get(fresh).is_some());
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn live_positions_stay_consistent_under_swap_remove() {
        let (mut arena, ids) = arena_with(6);
        arena.remove(ids[0]);
        arena.remove(ids[3]);
        arena.remove_live_at(0);
        assert_eq!(arena.len(), 3);
        // Every live slot maps back to its own position.
        for (pos, &slot) in arena.live_slots().iter().enumerate() {
            assert_eq!(arena.live_pos[slot as usize] as usize, pos);
            assert!(arena.node_at_slot(slot).is_some());
            assert!(arena.get(arena.id_at_slot(slot)).is_some());
        }
        // The removed-by-position node is gone as well.
        let live_values: Vec<f64> = arena
            .live_slots()
            .iter()
            .map(|&slot| arena.node_at_slot(slot).unwrap().local_value())
            .collect();
        assert_eq!(live_values.len(), 3);
    }

    #[test]
    fn sustained_churn_keeps_capacity_bounded() {
        let (mut arena, _) = arena_with(100);
        // 1 000 cycles of 10 joins + 10 departures: the leaky arena would
        // grow to 10 100 slots; the free-list arena stays at ~110.
        for round in 0..1_000 {
            for i in 0..10 {
                arena.insert(|id| make(id, (round * 10 + i) as f64));
            }
            for _ in 0..10 {
                arena.remove_live_at(round % arena.len());
            }
        }
        assert_eq!(arena.len(), 100);
        assert!(
            arena.slot_capacity() <= 110,
            "capacity {} must stay bounded by peak live + per-round joins",
            arena.slot_capacity()
        );
    }

    #[test]
    fn generation_wraps_instead_of_overflowing() {
        let mut arena = NodeArena::new();
        let mut id = arena.insert(|id| make(id, 0.0));
        for _ in 0..IdLayout::single().generation_limit() {
            arena.remove(id);
            id = arena.insert(|id| make(id, 0.0));
        }
        // After the generation limit the counter is back to its start value
        // + 1; the arena still has exactly one slot and one live node.
        assert_eq!(arena.slot_capacity(), 1);
        assert_eq!(arena.len(), 1);
        assert!(arena.get(id).is_some());
    }

    #[test]
    fn pack_unpack_round_trip_single_layout() {
        let layout = IdLayout::single();
        for (slot, generation) in [(0, 0), (1, 1), ((1 << SLOT_BITS) - 1, 5), (123_456, 2_047)] {
            let id = layout.pack(slot, generation);
            assert_eq!(layout.unpack(id), (slot, 0, generation));
        }
    }

    #[test]
    fn pack_unpack_round_trip_sharded_layout() {
        for shard in [0u32, 1, 7, 15] {
            let layout = IdLayout::sharded(shard);
            for (slot, generation) in [(0, 0), (1, 3), ((1 << SHARDED_SLOT_BITS) - 1, 255)] {
                let id = layout.pack(slot, generation);
                assert_eq!(layout.unpack(id), (slot, shard, generation));
                assert_eq!(IdLayout::shard_of(id), shard);
            }
        }
    }

    #[test]
    fn cross_shard_identifiers_do_not_resolve() {
        let mut a = NodeArena::with_layout(IdLayout::sharded(0));
        let mut b = NodeArena::with_layout(IdLayout::sharded(1));
        let id_a = a.insert(|id| make(id, 1.0));
        let id_b = b.insert(|id| make(id, 2.0));
        assert_ne!(id_a, id_b);
        assert_eq!(IdLayout::shard_of(id_a), 0);
        assert_eq!(IdLayout::shard_of(id_b), 1);
        // Same slot index, different shard tag: must not alias.
        assert!(a.get(id_b).is_none());
        assert!(b.get(id_a).is_none());
        assert!(!a.remove(id_b));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn pair_mut_returns_disjoint_borrows_in_caller_order() {
        let (mut arena, ids) = arena_with(3);
        arena.remove(ids[1]);
        {
            let (x, y) = arena.pair_mut(2, 0);
            assert_eq!(x.unwrap().local_value(), 2.0);
            assert_eq!(y.unwrap().local_value(), 0.0);
        }
        let (x, y) = arena.pair_mut(1, 2);
        assert!(x.is_none(), "dead slot yields None");
        assert_eq!(y.unwrap().local_value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "distinct slots")]
    fn pair_mut_rejects_identical_slots() {
        let (mut arena, _) = arena_with(2);
        let _ = arena.pair_mut(1, 1);
    }

    #[test]
    fn slot_and_position_lookups_track_liveness() {
        let (mut arena, ids) = arena_with(4);
        assert_eq!(arena.slot_of(ids[2]), Some(2));
        assert_eq!(arena.live_pos_of_slot(2), Some(2));
        assert!(arena.remove(ids[2]));
        assert_eq!(arena.slot_of(ids[2]), None, "dead slot does not resolve");
        assert_eq!(arena.live_pos_of_slot(2), None);
        assert_eq!(arena.live_pos_of_slot(99), None, "out of range");
        // A recycled slot resolves only under the fresh identifier.
        let fresh = arena.insert(|id| make(id, 9.0));
        assert_eq!(arena.slot_of(fresh), Some(2));
        assert_eq!(arena.slot_of(ids[2]), None, "stale generation is rejected");
    }

    #[test]
    fn remove_slot_checked_handles_dead_and_out_of_range_slots() {
        let (mut arena, ids) = arena_with(2);
        assert!(arena.remove_slot_checked(0));
        assert!(!arena.remove_slot_checked(0), "already dead");
        assert!(!arena.remove_slot_checked(99), "out of range");
        assert_eq!(arena.len(), 1);
        assert!(arena.get(ids[1]).is_some());
    }
}
