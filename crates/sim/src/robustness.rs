//! The robustness sweep: Section 4's graceful-degradation claims, measured.
//!
//! The paper argues qualitatively that the averaging protocol tolerates
//! benign failures; this module turns the argument into curves. A
//! [`RobustnessSweep`] drives a cycle engine (reference or sharded) through
//! one [`FaultPlan`] per fault rate and measures the per-cycle
//! variance-reduction factor — the same metric as the convergence-rate
//! experiments, so degradation reads directly as "the factor moved from
//! 1/(2√e) to *x*":
//!
//! * [`RobustnessSweep::link_failure_curve`] — convergence factor vs
//!   persistent link-failure probability (the Section 4 link-failure axis);
//! * [`RobustnessSweep::loss_curve`] — convergence factor vs uniform
//!   message-omission probability;
//! * [`RobustnessSweep::injection_curve`] — estimate-mean displacement vs
//!   adversarially corrupted node fraction (the beyond-the-paper attack);
//! * [`crash_estimation_curve`] — network-size-estimation error vs crash
//!   rate at the start of an epoch, the paper's "cost of crashes on the
//!   counting protocol" figure;
//! * [`attack_defense_sweep`] — size-estimation error vs attack amplitude
//!   under leader capture, undefended single-instance counting against the
//!   median-of-k redundant-instance defense (the Byzantine adversary lab's
//!   headline curve);
//! * [`sweep_table`] — renders any set of points as the
//!   convergence-factor-vs-fault-rate table whose CSV form is the artifact
//!   the `fault_lab` example, the `robustness_sweep` bench and CI record.

use crate::{
    AdversaryPlan, FaultPlan, GossipSimulation, RedundancyConfig, SeedSequence, ShardedConfig,
    ShardedSimulation, SimError, SimulationConfig, ValueDistribution,
};
use aggregate_core::config::LateJoinPolicy;
use aggregate_core::size_estimation::LeaderPolicy;
use aggregate_core::{avg, theory, ProtocolConfig};
use gossip_analysis::Table;
use gossip_faults::{CrashBurst, ValueInjection};
use serde::{Deserialize, Serialize};

/// Shared parameters of a robustness sweep: one engine configuration probed
/// at several fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessSweep {
    /// Network size.
    pub nodes: usize,
    /// Cycles per point (the epoch is sized to outlast them, so no restart
    /// perturbs the variance trajectory).
    pub cycles: usize,
    /// Shard count; `0` selects the single-threaded reference engine. The
    /// sharded engine makes the 10⁵-node acceptance point routine.
    pub shards: usize,
    /// Master seed (every point derives its own labelled streams).
    pub seed: u64,
}

/// One measured point of a robustness curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessPoint {
    /// The fault family this point probes (`"link-failure"`,
    /// `"message-loss"`, `"value-injection"`).
    pub fault: String,
    /// The fault rate (dead-link probability, loss probability, corrupted
    /// fraction).
    pub rate: f64,
    /// Network size the point ran at.
    pub nodes: usize,
    /// Number of per-cycle factors that entered the mean.
    pub cycles_measured: usize,
    /// Mean per-cycle variance-reduction factor `σ²ᵢ / σ²ᵢ₋₁` — the
    /// convergence-factor axis of the Section 4 curves.
    pub mean_factor: f64,
    /// Estimate variance after the final cycle.
    pub final_variance: f64,
    /// Absolute displacement of the final estimate mean from the true
    /// initial average (mass-conservation drift; grows with loss and
    /// injection, stays ≈0 under pure link faults).
    pub mean_drift: f64,
    /// Total exchange attempts vetoed by dead links/partitions.
    pub exchanges_blocked: usize,
    /// Total messages dropped by the loss model.
    pub messages_lost: usize,
}

impl RobustnessPoint {
    /// Ratio of the measured factor to the fault-free `GETPAIR_SEQ` rate
    /// `1/(2√e)` — 1.0 means "this fault rate costs nothing".
    pub fn ratio_to_seq_rate(&self) -> f64 {
        self.mean_factor / theory::seq_rate()
    }
}

impl RobustnessSweep {
    /// A sweep at `nodes`/20 cycles on the reference engine.
    pub fn new(nodes: usize, seed: u64) -> Self {
        RobustnessSweep {
            nodes,
            cycles: 20,
            shards: 0,
            seed,
        }
    }

    /// Convergence factor vs persistent link-failure probability.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point.
    pub fn link_failure_curve(
        &self,
        probabilities: &[f64],
    ) -> Result<Vec<RobustnessPoint>, SimError> {
        probabilities
            .iter()
            .map(|&p| self.measure("link-failure", p, FaultPlan::with_link_failure(p)))
            .collect()
    }

    /// Convergence factor vs uniform message-loss probability.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point.
    pub fn loss_curve(&self, probabilities: &[f64]) -> Result<Vec<RobustnessPoint>, SimError> {
        probabilities
            .iter()
            .map(|&p| self.measure("message-loss", p, FaultPlan::with_message_loss(p)))
            .collect()
    }

    /// Convergence factor (and mean displacement) vs adversarially corrupted
    /// node fraction: at cycle 1 the adversary overwrites the running
    /// estimates of `fraction` of the nodes with `injected_value`.
    ///
    /// # Errors
    ///
    /// Propagates the first failing point.
    pub fn injection_curve(
        &self,
        fractions: &[f64],
        injected_value: f64,
    ) -> Result<Vec<RobustnessPoint>, SimError> {
        fractions
            .iter()
            .map(|&fraction| {
                let plan = FaultPlan {
                    injections: vec![ValueInjection {
                        cycle: 1,
                        fraction,
                        value: injected_value,
                    }],
                    ..FaultPlan::default()
                };
                self.measure("value-injection", fraction, plan)
            })
            .collect()
    }

    /// Runs one point: `cycles` cycles of plain averaging under `plan`,
    /// measuring the per-cycle variance-reduction factors.
    ///
    /// # Errors
    ///
    /// Configuration errors (invalid plan, bad shard count, …).
    pub fn measure(
        &self,
        fault: &str,
        rate: f64,
        plan: FaultPlan,
    ) -> Result<RobustnessPoint, SimError> {
        let protocol = ProtocolConfig::builder()
            .cycles_per_epoch(u32::try_from(self.cycles + 1).unwrap_or(u32::MAX))
            .build()?;
        let config = SimulationConfig::averaging(protocol);
        let seeds = SeedSequence::new(self.seed);
        // stream: node value draws for robustness sweeps
        let mut value_rng = seeds.rng_for_labeled(0, "robustness-values");
        let values =
            ValueDistribution::Uniform { lo: 0.0, hi: 1.0 }.generate(self.nodes, &mut value_rng);
        let true_mean = avg::mean(&values);
        let initial_variance = avg::variance(&values);

        // (variance, mean, blocked, lost) per cycle, engine-agnostic.
        let per_cycle: Vec<(f64, f64, usize, usize)> = if self.shards == 0 {
            let mut sim = GossipSimulation::with_faults(config, &values, self.seed, plan)?;
            sim.run(self.cycles)
                .iter()
                .map(|s| {
                    (
                        s.estimate_variance,
                        s.estimate_mean,
                        s.exchanges_blocked,
                        s.messages_lost,
                    )
                })
                .collect()
        } else {
            let sharded = ShardedConfig {
                base: config,
                shards: self.shards,
                workers: None,
            };
            let mut sim = ShardedSimulation::with_faults(sharded, &values, self.seed, plan)?;
            sim.run(self.cycles)
                .iter()
                .map(|s| {
                    (
                        s.estimate_variance,
                        s.estimate_mean,
                        s.exchanges_blocked,
                        s.messages_lost,
                    )
                })
                .collect()
        };

        let mut factors = Vec::with_capacity(per_cycle.len());
        let mut previous = initial_variance;
        for &(variance, _, _, _) in &per_cycle {
            if previous > 1e-12 {
                factors.push(variance / previous);
            }
            previous = variance;
        }
        let mean_factor = if factors.is_empty() {
            f64::NAN
        } else {
            factors.iter().sum::<f64>() / factors.len() as f64
        };
        let last = per_cycle
            .last()
            .copied()
            .unwrap_or((initial_variance, true_mean, 0, 0));
        Ok(RobustnessPoint {
            fault: fault.to_string(),
            rate,
            nodes: self.nodes,
            cycles_measured: factors.len(),
            mean_factor,
            final_variance: last.0,
            mean_drift: (last.1 - true_mean).abs(),
            exchanges_blocked: per_cycle.iter().map(|c| c.2).sum(),
            messages_lost: per_cycle.iter().map(|c| c.3).sum(),
        })
    }
}

/// One point of the crash-rate size-estimation experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashEstimationPoint {
    /// Fraction of nodes crashed at the start of the measured epoch.
    pub crash_fraction: f64,
    /// Live nodes after the burst (what the estimate *should* report once
    /// the protocol re-counts).
    pub surviving_nodes: usize,
    /// Mean network-size estimate reported at the end of the crashed epoch.
    pub estimate_mean: f64,
    /// `|estimate − survivors| / survivors` — the error axis of the paper's
    /// crash figure. The mass lost with the crashed nodes biases the epoch
    /// upward; the *next* epoch re-counts correctly.
    pub relative_error: f64,
    /// Nodes that reported an estimate for the crashed epoch.
    pub reporting_nodes: usize,
}

/// Network-size-estimation error vs crash rate at the start of an epoch: for
/// each fraction, `nodes` nodes run counting epochs of `cycles_per_epoch`
/// cycles; two cycles into epoch 1 — when the freshly elected leaders'
/// counting mass is maximally concentrated on a handful of nodes — the
/// burst removes the fraction, and the estimates reported at the end of
/// that epoch are compared against the survivor count.
///
/// A crash this early is the worst case the paper discusses: a crashed
/// node that already absorbed a large share of some leader's unit mass
/// takes it to the grave, so the surviving instance states sum short of 1
/// and the epoch *overestimates* the network size — the error axis
/// captures exactly that bias. (Crashing before the very first exchange
/// would be degenerate: victims hold either all of an instance's mass or
/// none, so every surviving instance still counts perfectly.) The election
/// uses a fixed per-node probability targeting ~16 concurrent leaders, the
/// multiple-instances mitigation the paper proposes for exactly this
/// failure mode; if a burst nevertheless wipes out every instance, the
/// point reports `reporting_nodes == 0` with an infinite error instead of
/// failing.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn crash_estimation_curve(
    nodes: usize,
    cycles_per_epoch: u32,
    fractions: &[f64],
    seed: u64,
) -> Result<Vec<CrashEstimationPoint>, SimError> {
    let mut points = Vec::with_capacity(fractions.len());
    for &fraction in fractions {
        let protocol = ProtocolConfig::builder()
            .cycles_per_epoch(cycles_per_epoch)
            .late_join(LateJoinPolicy::FixedState(0.0))
            .build()?;
        let config = SimulationConfig {
            protocol,
            leader_policy: Some(LeaderPolicy::Fixed {
                probability: (16.0 / nodes as f64).min(1.0),
            }),
            ..SimulationConfig::averaging(protocol)
        };
        let plan = FaultPlan {
            crashes: vec![CrashBurst {
                cycle: cycles_per_epoch as usize + 2,
                fraction,
            }],
            ..FaultPlan::default()
        };
        let values = vec![0.0; nodes];
        let mut sim = GossipSimulation::with_faults(config, &values, seed, plan)?;
        let mut point = None;
        for summary in sim.run(2 * cycles_per_epoch as usize) {
            if summary.completed_epoch != Some(1) {
                continue;
            }
            let survivors = summary.live_nodes;
            point = Some(if summary.epoch_size_estimates.is_empty() {
                // Every counting instance died with the burst: total mass
                // loss, no estimate at all this epoch.
                CrashEstimationPoint {
                    crash_fraction: fraction,
                    surviving_nodes: survivors,
                    estimate_mean: f64::NAN,
                    relative_error: f64::INFINITY,
                    reporting_nodes: 0,
                }
            } else {
                let mean = summary.epoch_size_estimates.iter().sum::<f64>()
                    / summary.epoch_size_estimates.len() as f64;
                CrashEstimationPoint {
                    crash_fraction: fraction,
                    surviving_nodes: survivors,
                    estimate_mean: mean,
                    relative_error: (mean - survivors as f64).abs() / survivors as f64,
                    reporting_nodes: summary.epoch_size_estimates.len(),
                }
            });
        }
        let Some(point) = point else {
            return Err(SimError::Incomplete(
                "no size-estimation epoch completed within two epochs of cycles",
            ));
        };
        points.push(point);
    }
    Ok(points)
}

/// One point of the attack-vs-defense size-estimation experiment: the same
/// leader-capture attack measured against the undefended single-instance
/// estimator and the median-of-k redundant-instance defense.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttackDefensePoint {
    /// The state each captured counting instance is forced to every cycle —
    /// the attack amplitude (honest leaders hold 1.0, so larger values crush
    /// the estimate harder).
    pub reported_state: f64,
    /// Network size the point ran at.
    pub nodes: usize,
    /// Redundant instances `k` the defense ran per epoch.
    pub instances: usize,
    /// Leaders the adversary captured per epoch (`f`).
    pub captured: usize,
    /// Mean size estimate of the undefended single-instance run.
    pub undefended_estimate: f64,
    /// Mean size estimate of the defended (median-of-k) run.
    pub defended_estimate: f64,
    /// `|undefended − n| / n`.
    pub undefended_error: f64,
    /// `|defended − n| / n`.
    pub defended_error: f64,
    /// The defense's overhead factor: `k` concurrent counting instances per
    /// node instead of one — state, exchange payload and merge work all
    /// scale linearly in it.
    pub defense_cost: f64,
}

/// Runs one counting epoch and returns the mean of the size estimates its
/// reporting nodes produced.
fn first_epoch_size_estimate(
    config: SimulationConfig,
    nodes: usize,
    seed: u64,
    plan: AdversaryPlan,
    cycles_per_epoch: u32,
) -> Result<f64, SimError> {
    let values = vec![0.0; nodes];
    let mut sim = GossipSimulation::with_adversary(config, &values, seed, FaultPlan::none(), plan)?;
    for summary in sim.run(cycles_per_epoch as usize) {
        if summary.completed_epoch == Some(0) && !summary.epoch_size_estimates.is_empty() {
            return Ok(summary.epoch_size_estimates.iter().sum::<f64>()
                / summary.epoch_size_estimates.len() as f64);
        }
    }
    Err(SimError::Incomplete(
        "no size-estimation epoch completed under the adversary",
    ))
}

/// Size-estimation error vs attack amplitude under leader capture: for each
/// amplitude, the adversary captures `captured` counting-instance leaders
/// per epoch and forces their instances to the amplitude every cycle. Each
/// point measures the same attack twice — against the undefended
/// single-instance estimator (a deterministic lone leader, which the
/// adversary captures whole) and against the median-of-`instances` defense
/// (`instances` independent leaders per epoch, per-node median merge). As
/// long as `captured < instances / 2` the median sits on an honest
/// instance's estimate, so the defended error stays bounded while the
/// undefended estimate is arbitrarily wrong — the paper's multiple-instances
/// mitigation, measured as a curve.
///
/// # Errors
///
/// Configuration errors, or [`SimError::Incomplete`] when no epoch completes.
pub fn attack_defense_sweep(
    nodes: usize,
    cycles_per_epoch: u32,
    instances: usize,
    captured: usize,
    amplitudes: &[f64],
    seed: u64,
) -> Result<Vec<AttackDefensePoint>, SimError> {
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles_per_epoch)
        .late_join(LateJoinPolicy::FixedState(0.0))
        .build()?;
    let base = SimulationConfig::averaging(protocol);
    let undefended_config = SimulationConfig {
        // Probability 0 forces the deterministic fallback: exactly one
        // leader carries the count, and the adversary captures it.
        leader_policy: Some(LeaderPolicy::Fixed { probability: 0.0 }),
        ..base
    };
    let defended_config = SimulationConfig {
        redundancy: Some(RedundancyConfig::median_of(instances)),
        ..base
    };
    let mut points = Vec::with_capacity(amplitudes.len());
    for &amplitude in amplitudes {
        let plan = AdversaryPlan::leader_capture(captured, amplitude);
        let undefended =
            first_epoch_size_estimate(undefended_config, nodes, seed, plan, cycles_per_epoch)?;
        let defended =
            first_epoch_size_estimate(defended_config, nodes, seed, plan, cycles_per_epoch)?;
        let n = nodes as f64;
        points.push(AttackDefensePoint {
            reported_state: amplitude,
            nodes,
            instances,
            captured,
            undefended_estimate: undefended,
            defended_estimate: defended,
            undefended_error: (undefended - n).abs() / n,
            defended_error: (defended - n).abs() / n,
            defense_cost: instances as f64,
        });
    }
    Ok(points)
}

/// Renders attack-defense points as the error-vs-amplitude table — the CSV
/// artifact of the `byzantine_lab` example and the adversarial-smoke CI job.
pub fn attack_defense_table(points: &[AttackDefensePoint]) -> Table {
    let mut table = Table::new(vec![
        "reported_state",
        "nodes",
        "instances",
        "captured",
        "undefended_estimate",
        "defended_estimate",
        "undefended_error",
        "defended_error",
        "defense_cost",
    ]);
    for point in points {
        table.add_row(vec![
            format!("{:.4}", point.reported_state),
            point.nodes.to_string(),
            point.instances.to_string(),
            point.captured.to_string(),
            format!("{:.1}", point.undefended_estimate),
            format!("{:.1}", point.defended_estimate),
            format!("{:.4}", point.undefended_error),
            format!("{:.4}", point.defended_error),
            format!("{:.1}", point.defense_cost),
        ]);
    }
    table
}

/// Renders robustness points as the convergence-factor-vs-fault-rate table
/// — one row per (fault family, rate), CSV-exportable via
/// [`Table::write_csv`]. Curves from several sweeps stack into one artifact
/// with [`Table::append`].
pub fn sweep_table(points: &[RobustnessPoint]) -> Table {
    let mut table = Table::new(vec![
        "fault",
        "rate",
        "nodes",
        "cycles_measured",
        "measured_factor",
        "seq_theory",
        "ratio_to_theory",
        "final_variance",
        "mean_drift",
        "exchanges_blocked",
        "messages_lost",
    ]);
    for point in points {
        table.add_row(vec![
            point.fault.clone(),
            format!("{:.4}", point.rate),
            point.nodes.to_string(),
            point.cycles_measured.to_string(),
            format!("{:.4}", point.mean_factor),
            format!("{:.4}", theory::seq_rate()),
            format!("{:.3}", point.ratio_to_seq_rate()),
            format!("{:.3e}", point.final_variance),
            format!("{:.3e}", point.mean_drift),
            point.exchanges_blocked.to_string(),
            point.messages_lost.to_string(),
        ]);
    }
    table
}

/// Renders crash-estimation points as the size-estimation-error-vs-crash-rate
/// table.
pub fn crash_table(points: &[CrashEstimationPoint]) -> Table {
    let mut table = Table::new(vec![
        "crash_fraction",
        "surviving_nodes",
        "estimate_mean",
        "relative_error",
        "reporting_nodes",
    ]);
    for point in points {
        table.add_row(vec![
            format!("{:.4}", point.crash_fraction),
            point.surviving_nodes.to_string(),
            format!("{:.1}", point.estimate_mean),
            format!("{:.4}", point.relative_error),
            point.reporting_nodes.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_point_measures_the_seq_rate() {
        let sweep = RobustnessSweep::new(2_000, 11);
        let point = sweep
            .measure("link-failure", 0.0, FaultPlan::none())
            .unwrap();
        assert!(
            (point.mean_factor - theory::seq_rate()).abs() < 0.05,
            "measured {} vs theory {}",
            point.mean_factor,
            theory::seq_rate()
        );
        assert_eq!(point.exchanges_blocked, 0);
        assert_eq!(point.messages_lost, 0);
        assert!(point.mean_drift < 1e-9, "drift {}", point.mean_drift);
        assert!((point.ratio_to_seq_rate() - 1.0).abs() < 0.2);
    }

    #[test]
    fn link_failure_curve_degrades_monotonically_but_converges() {
        let sweep = RobustnessSweep::new(2_000, 11);
        let points = sweep.link_failure_curve(&[0.0, 0.1, 0.2]).unwrap();
        assert_eq!(points.len(), 3);
        for pair in points.windows(2) {
            assert!(
                pair[1].mean_factor > pair[0].mean_factor - 0.02,
                "factor should not improve with more dead links: {} then {}",
                pair[0].mean_factor,
                pair[1].mean_factor
            );
        }
        let worst = points.last().unwrap();
        assert!(worst.exchanges_blocked > 0);
        assert!(
            worst.mean_factor < 0.55,
            "20% dead links must still converge well (factor {})",
            worst.mean_factor
        );
        assert!(worst.final_variance < points[0].final_variance * 1e3);
        // Dead links only skip exchanges — the mean is untouched.
        assert!(worst.mean_drift < 1e-9);
    }

    #[test]
    fn loss_curve_degrades_but_stays_below_one() {
        let sweep = RobustnessSweep::new(2_000, 13);
        let points = sweep.loss_curve(&[0.0, 0.2]).unwrap();
        assert!(points[1].messages_lost > 0);
        assert!(points[1].mean_factor > points[0].mean_factor - 0.02);
        assert!(
            points[1].mean_factor < 0.7,
            "20% loss still converges (factor {})",
            points[1].mean_factor
        );
    }

    #[test]
    fn injection_curve_reports_the_displacement() {
        let sweep = RobustnessSweep::new(1_000, 17);
        let points = sweep.injection_curve(&[0.0, 0.05], 100.0).unwrap();
        assert!(points[0].mean_drift < 1e-9);
        // 5% of nodes overwritten with 100 against a true mean of ~0.5:
        // the consensus value moves by roughly 0.05 * (100 - 0.5) ≈ 5.
        assert!(
            points[1].mean_drift > 1.0,
            "injection must displace the mean, drift {}",
            points[1].mean_drift
        );
        assert!(
            points[1].final_variance < 1e-2,
            "the network still reaches consensus on the corrupted value"
        );
    }

    #[test]
    fn sharded_sweep_points_match_the_metric_contract() {
        let sweep = RobustnessSweep {
            nodes: 1_000,
            cycles: 15,
            shards: 4,
            seed: 19,
        };
        let point = sweep
            .measure("link-failure", 0.2, FaultPlan::with_link_failure(0.2))
            .unwrap();
        assert!(point.exchanges_blocked > 0);
        assert!(point.mean_factor < 0.6);
    }

    #[test]
    fn crash_estimation_error_grows_with_the_crash_rate() {
        let points = crash_estimation_curve(400, 25, &[0.0, 0.3], 23).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].surviving_nodes, 400);
        assert!(
            points[0].relative_error < 0.1,
            "crash-free epoch estimates the size well, error {}",
            points[0].relative_error
        );
        assert_eq!(points[1].surviving_nodes, 280);
        assert!(points[1].reporting_nodes > 0);
        // Mass lost with the crashed nodes biases the epoch's count; the
        // error must be visible yet bounded (the protocol does not wedge).
        assert!(points[1].relative_error > points[0].relative_error);
        assert!(points[1].estimate_mean.is_finite() && points[1].estimate_mean > 0.0);
    }

    #[test]
    fn attack_defense_sweep_shows_the_median_holding_the_line() {
        // Small-scale version of the pinned acceptance point (the 10k-node
        // version lives in tests/byzantine.rs and the CI smoke job): two of
        // five instances captured, the median still reads the honest count.
        let points = attack_defense_sweep(500, 30, 5, 2, &[20.0], 31).unwrap();
        assert_eq!(points.len(), 1);
        let point = &points[0];
        assert!(
            point.defended_error < 0.10,
            "median-of-5 with 2 captured must stay within 10%, error {}",
            point.defended_error
        );
        assert!(
            point.undefended_error > 0.8,
            "a captured lone leader must wreck the undefended estimate, error {}",
            point.undefended_error
        );
        assert!(point.defended_error * 5.0 < point.undefended_error);
        let csv = attack_defense_table(&points).to_csv();
        assert!(csv.starts_with("reported_state,nodes,instances,captured"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn tables_render_one_labelled_row_per_point() {
        let sweep = RobustnessSweep::new(300, 5);
        let mut points = sweep.link_failure_curve(&[0.0, 0.2]).unwrap();
        points.extend(sweep.loss_curve(&[0.1]).unwrap());
        let table = sweep_table(&points);
        let csv = table.to_csv();
        assert!(csv.starts_with("fault,rate,nodes,cycles_measured,measured_factor"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("link-failure,0.2000"));
        assert!(csv.contains("message-loss,0.1000"));

        let crash_points = crash_estimation_curve(200, 10, &[0.2], 29).unwrap();
        let crash_csv = crash_table(&crash_points).to_csv();
        assert!(crash_csv.starts_with("crash_fraction,surviving_nodes"));
        assert_eq!(crash_csv.lines().count(), 2);
    }
}
