//! Deterministic seed management for reproducible experiments.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives per-run random number generators from a single master seed, so that
/// a whole experiment (e.g. "50 independent runs for every point of
/// Figure 3(a)") is reproducible from one number while every run still gets an
/// independent stream.
///
/// # Example
///
/// ```
/// use gossip_sim::SeedSequence;
///
/// let seeds = SeedSequence::new(42);
/// let mut run0 = seeds.rng_for_run(0);
/// let mut run1 = seeds.rng_for_run(1);
/// // Streams are independent but reproducible.
/// use rand::Rng;
/// let a: f64 = run0.gen();
/// let b: f64 = run1.gen();
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).rng_for_run(0).gen::<f64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master_seed: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG for run number `run`.
    pub fn rng_for_run(&self, run: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_run(run))
    }

    /// The raw 64-bit seed behind [`SeedSequence::rng_for_run`] — for callers
    /// that derive further sub-streams (e.g. one RNG per exchange in the
    /// sharded engine) instead of instantiating an RNG directly.
    pub fn seed_for_run(&self, run: u64) -> u64 {
        Self::mix(self.master_seed, run)
    }

    /// Returns the RNG for a named sub-experiment of a run (e.g. separate
    /// streams for topology construction and protocol execution).
    pub fn rng_for_labeled(&self, run: u64, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_labeled(run, label))
    }

    /// The raw 64-bit seed behind [`SeedSequence::rng_for_labeled`].
    pub fn seed_for_labeled(&self, run: u64, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::mix(self.master_seed ^ h, run)
    }

    /// SplitMix64-style mixing so nearby seeds produce unrelated streams.
    fn mix(seed: u64, run: u64) -> u64 {
        let mut z = seed
            .wrapping_add(run.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_run_same_stream() {
        let s = SeedSequence::new(7);
        let a: Vec<u32> = (0..5).map(|_| s.rng_for_run(3).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| s.rng_for_run(3).gen()).collect();
        assert_eq!(a, b);
        assert_eq!(s.master_seed(), 7);
    }

    #[test]
    fn different_runs_different_streams() {
        let s = SeedSequence::new(7);
        let a: u64 = s.rng_for_run(0).gen();
        let b: u64 = s.rng_for_run(1).gen();
        let c: u64 = s.rng_for_run(2).gen();
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn different_masters_different_streams() {
        let a: u64 = SeedSequence::new(1).rng_for_run(0).gen();
        let b: u64 = SeedSequence::new(2).rng_for_run(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn labeled_streams_are_independent() {
        let s = SeedSequence::new(9);
        let topo: u64 = s.rng_for_labeled(0, "topology").gen();
        let proto: u64 = s.rng_for_labeled(0, "protocol").gen();
        let plain: u64 = s.rng_for_run(0).gen();
        assert_ne!(topo, proto);
        assert_ne!(topo, plain);
        // Reproducible.
        assert_eq!(topo, s.rng_for_labeled(0, "topology").gen::<u64>());
    }
}
