//! Initial value distributions for experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of the nodes' initial attribute values.
///
/// The paper's Figure 3 experiments start from a vector of *uncorrelated*
/// values, for which the uniform distribution is the canonical choice; the
/// peak distribution (all mass at a single node) is the hardest case for
/// averaging (maximal initial variance for a given mean) and is used by the
/// robustness ablations; the linear ramp is a convenient deterministic
/// baseline with known mean and variance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ValueDistribution {
    /// Independent uniform values in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Every node holds `base` except one node (index 0) holding `peak`.
    Peak {
        /// Value at the single peak node.
        peak: f64,
        /// Value at every other node.
        base: f64,
    },
    /// Node `i` holds `offset + slope * i`.
    Linear {
        /// Value at node 0.
        offset: f64,
        /// Increment per node index.
        slope: f64,
    },
    /// Every node holds the same constant (zero variance — useful for
    /// checking that the protocol does not introduce errors of its own).
    Constant(f64),
    /// Independent standard-normal-like values produced by the Box–Muller
    /// transform, scaled to the given mean and standard deviation.
    Gaussian {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation of the distribution.
        std_dev: f64,
    },
}

impl ValueDistribution {
    /// Generates the initial values for `n` nodes.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        match *self {
            ValueDistribution::Uniform { lo, hi } => {
                (0..n).map(|_| rng.gen_range(lo..hi)).collect()
            }
            ValueDistribution::Peak { peak, base } => {
                let mut values = vec![base; n];
                if n > 0 {
                    values[0] = peak;
                }
                values
            }
            ValueDistribution::Linear { offset, slope } => {
                (0..n).map(|i| offset + slope * i as f64).collect()
            }
            ValueDistribution::Constant(value) => vec![value; n],
            ValueDistribution::Gaussian { mean, std_dev } => (0..n)
                .map(|_| {
                    // Box–Muller transform from two uniforms.
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    mean + std_dev * z
                })
                .collect(),
        }
    }

    /// The exact mean of the distribution over `n` nodes (expected value for
    /// the random variants).
    pub fn expected_mean(&self, n: usize) -> f64 {
        match *self {
            ValueDistribution::Uniform { lo, hi } => (lo + hi) / 2.0,
            ValueDistribution::Peak { peak, base } => {
                if n == 0 {
                    0.0
                } else {
                    (peak + base * (n as f64 - 1.0)) / n as f64
                }
            }
            ValueDistribution::Linear { offset, slope } => {
                offset + slope * (n.saturating_sub(1)) as f64 / 2.0
            }
            ValueDistribution::Constant(value) => value,
            ValueDistribution::Gaussian { mean, .. } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregate_core::avg::{mean, variance};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(8)
    }

    #[test]
    fn uniform_values_land_in_range_with_matching_mean() {
        let mut r = rng();
        let dist = ValueDistribution::Uniform { lo: 2.0, hi: 6.0 };
        let values = dist.generate(20_000, &mut r);
        assert!(values.iter().all(|v| (2.0..6.0).contains(v)));
        assert!((mean(&values) - dist.expected_mean(20_000)).abs() < 0.05);
    }

    #[test]
    fn peak_distribution_shape() {
        let mut r = rng();
        let dist = ValueDistribution::Peak {
            peak: 100.0,
            base: 0.0,
        };
        let values = dist.generate(10, &mut r);
        assert_eq!(values[0], 100.0);
        assert!(values[1..].iter().all(|&v| v == 0.0));
        assert_eq!(dist.expected_mean(10), 10.0);
        assert_eq!(dist.generate(0, &mut r).len(), 0);
    }

    #[test]
    fn linear_and_constant_distributions() {
        let mut r = rng();
        let linear = ValueDistribution::Linear {
            offset: 1.0,
            slope: 2.0,
        };
        let values = linear.generate(5, &mut r);
        assert_eq!(values, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
        assert_eq!(linear.expected_mean(5), 5.0);

        let constant = ValueDistribution::Constant(3.5);
        let values = constant.generate(4, &mut r);
        assert_eq!(values, vec![3.5; 4]);
        assert_eq!(variance(&values), 0.0);
        assert_eq!(constant.expected_mean(4), 3.5);
    }

    #[test]
    fn gaussian_distribution_matches_requested_moments() {
        let mut r = rng();
        let dist = ValueDistribution::Gaussian {
            mean: 10.0,
            std_dev: 2.0,
        };
        let values = dist.generate(50_000, &mut r);
        assert!((mean(&values) - 10.0).abs() < 0.05);
        assert!((variance(&values).sqrt() - 2.0).abs() < 0.05);
        assert_eq!(dist.expected_mean(1), 10.0);
    }

    #[test]
    fn generation_is_reproducible_for_a_fixed_seed() {
        let dist = ValueDistribution::Uniform { lo: 0.0, hi: 1.0 };
        let a = dist.generate(100, &mut rng());
        let b = dist.generate(100, &mut rng());
        assert_eq!(a, b);
    }
}
