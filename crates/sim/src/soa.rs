//! Struct-of-arrays hot store for the sharded engine's fused fast path.
//!
//! At 10⁷ nodes the cost of a cycle is memory, not arithmetic: a fused
//! exchange through two [`aggregate_core::ProtocolNode`]s touches two ~200-byte
//! structs (epoch manager, instance, led-instance map root, config) spread
//! over several cache lines each, and every peer pick pays a virtual
//! `dyn PeerSampler` + `dyn RngCore` dispatch. This module provides the dense
//! mirror that fixes both:
//!
//! * [`HotSlot`] — 16 bytes of state that completely describe a *hot* node
//!   (participating, present since its epoch's first cycle, default instance
//!   only — [`aggregate_core::node::HotView`] is the sync format). One slot
//!   per arena slot, indexed identically, so the existing `NodeId` layout maps
//!   straight into the dense array. A fused exchange touches exactly one cache
//!   line per endpoint, and the whole store is 16 B per node — at 10⁷ nodes a
//!   160 MB random-access footprint instead of the multi-GB node arena.
//! * [`HotStore`] — the per-shard arrays: the hot slots plus the per-slot
//!   epoch-restart values (`init_value(local_value)`, constant per node), so
//!   an epoch restart is a single dense load instead of a `ProtocolNode`
//!   round-trip.
//! * [`shuffle_batched`] / [`WordBuffer`] / the draw mirrors — batched RNG:
//!   raw `u64` words are pre-drawn in blocks and mapped onto ranges/coins with
//!   the exact arithmetic of the vendored `rand` (`gen_range` is one
//!   `next_u64` + widening multiply, no rejection; `gen_bool` is one
//!   `next_u64` → 53-bit float compare), so the batched draws are bit-for-bit
//!   the draws the unbatched code makes. Unit tests below pin each mirror
//!   against the vendored implementation.
//!
//! Everything cold — joining nodes, mid-epoch jumpers, leaders carrying led
//! size-estimation instances — stays on the `ProtocolNode` path; the sharded
//! engine syncs a slot between the two representations at well-defined points
//! (see `sharded.rs`). Correctness therefore never depends on *which* nodes
//! are hot: demoting everything merely loses the speed.

use aggregate_core::node::HotView;
use rand::rngs::StdRng;
use rand::RngCore;

/// Sentinel in [`HotSlot::key`] marking a slot whose occupant (if any) is
/// represented by its `ProtocolNode`, not by the dense mirror.
pub const COLD: u32 = u32::MAX;

/// Dense per-node hot state: a 16-byte, never-line-straddling record per
/// arena slot — the *only* state an exchange touches, so the random-access
/// footprint of a cycle is exactly one line per endpoint over
/// `16 B × slots`.
///
/// `key` doubles as the hot flag ([`COLD`]) and, when hot, the node's current
/// epoch — the fused-exchange precondition "both hot, same epoch" is a single
/// compare. Epochs are kept as `u32` here to halve the record: a node whose
/// epoch does not fit stays on the node path ([`HotStore::promote`] rejects
/// it), which is a correctness-preserving demotion — and would take over a
/// century of millisecond-long cycles to reach. Per-slot state the exchange
/// does *not* touch (cycle position, restart value) lives in parallel arrays
/// read only by the engine's sequential end-of-cycle pass.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(16))]
pub struct HotSlot {
    /// Running approximation of the default instance.
    pub state: f64,
    /// Current epoch, or [`COLD`].
    pub key: u32,
    /// Exchanges completed by the default instance this epoch.
    pub exchanges: u32,
}

impl HotSlot {
    /// A cold record.
    pub const fn cold() -> Self {
        HotSlot {
            state: 0.0,
            key: COLD,
            exchanges: 0,
        }
    }

    /// Whether the record currently mirrors its node.
    #[inline]
    pub fn is_hot(&self) -> bool {
        self.key != COLD
    }
}

/// One shard's struct-of-arrays node store, indexed by arena slot.
#[derive(Debug, Default)]
pub struct HotStore {
    /// Hot records, [`COLD`]-keyed where the occupant is node-represented.
    pub slots: Vec<HotSlot>,
    /// Cycles completed in the occupant's current epoch. Per-slot because
    /// hot nodes need not share an epoch position: a node that once jumped
    /// epochs completes them offset from the crowd forever after. Split out
    /// of [`HotSlot`] because only the end-of-cycle pass reads it.
    pub cycles: Vec<u32>,
    /// Per-slot epoch-restart state: `kind.init_value(local_value)` of the
    /// occupant. Valid only while the matching record is hot (it is written
    /// on every promotion); the sharded engine never changes a node's local
    /// value, so it stays valid for the whole residency.
    pub restart: Vec<f64>,
}

impl HotStore {
    /// Grows the arrays to cover `slot`, cold-initialised.
    pub fn ensure_slot(&mut self, slot: u32) {
        let needed = slot as usize + 1;
        if self.slots.len() < needed {
            self.slots.resize(needed, HotSlot::cold());
            self.cycles.resize(needed, 0);
            self.restart.resize(needed, 0.0);
        }
    }

    /// Marks `slot` cold (no-op for never-touched slots beyond the arrays).
    pub fn mark_cold(&mut self, slot: u32) {
        if let Some(record) = self.slots.get_mut(slot as usize) {
            record.key = COLD;
        }
    }

    /// The record at `slot` if it is hot.
    #[inline]
    pub fn hot(&self, slot: u32) -> Option<&HotSlot> {
        self.slots.get(slot as usize).filter(|r| r.is_hot())
    }

    /// The node-facing sync format of the hot record at `slot`.
    #[inline]
    pub fn view(&self, slot: u32) -> Option<HotView> {
        self.hot(slot).map(|record| HotView {
            state: record.state,
            epoch: u64::from(record.key),
            cycle_in_epoch: self.cycles[slot as usize],
            exchanges: record.exchanges,
        })
    }

    /// Installs a hot record and its restart value at `slot`. Returns
    /// whether the snapshot was representable (epochs beyond `u32` stay on
    /// the node path).
    #[inline]
    pub fn promote(&mut self, slot: u32, view: HotView, restart: f64) -> bool {
        if view.epoch >= u64::from(COLD) {
            self.mark_cold(slot);
            return false;
        }
        self.ensure_slot(slot);
        self.slots[slot as usize] = HotSlot {
            state: view.state,
            key: view.epoch as u32,
            exchanges: view.exchanges,
        };
        self.cycles[slot as usize] = view.cycle_in_epoch;
        self.restart[slot as usize] = restart;
        true
    }

    /// Disjoint mutable borrows of two distinct slots.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either slot is out of bounds (the engine only
    /// pairs verified-live, distinct endpoints).
    #[inline]
    pub fn pair_mut(&mut self, a: u32, b: u32) -> (&mut HotSlot, &mut HotSlot) {
        let (a, b) = (a as usize, b as usize);
        debug_assert_ne!(a, b);
        if a < b {
            let (lo, hi) = self.slots.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.slots.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }
}

/// Maps a raw word onto `[0, span)` — the vendored `rand`'s widening-multiply
/// `gen_range` arithmetic, verbatim.
#[inline]
pub fn index_from_word(word: u64, span: usize) -> usize {
    ((u128::from(word) * span as u128) >> 64) as usize
}

/// Maps a raw word onto a probability-`p` coin — the vendored `rand`'s
/// `gen_bool` arithmetic (53-bit mantissa float in `[0, 1)`), verbatim.
#[inline]
pub fn coin_from_word(word: u64, p: f64) -> bool {
    ((word >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
}

/// A block-buffered word stream over a `StdRng`.
///
/// Words come out in exactly the order `rng.next_u64()` produces them; the
/// buffer merely front-loads the draws so the consuming loop runs branch-light
/// and the generator state stays register-resident across a block. Callers may
/// leave words unconsumed only when the underlying stream is discarded
/// afterwards (the sharded engine's per-cycle schedule stream is).
#[derive(Debug)]
pub struct WordBuffer {
    buf: Vec<u64>,
    pos: usize,
}

impl WordBuffer {
    /// Buffered draws per refill.
    const BLOCK: usize = 1024;

    /// An empty buffer (first `next` refills).
    pub fn new() -> Self {
        WordBuffer {
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// The next word of the stream.
    #[inline]
    pub fn next(&mut self, rng: &mut StdRng) -> u64 {
        if self.pos == self.buf.len() {
            self.refill(rng);
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }

    fn refill(&mut self, rng: &mut StdRng) {
        self.buf.resize(Self::BLOCK, 0);
        for slot in self.buf.iter_mut() {
            *slot = rng.next_u64();
        }
        self.pos = 0;
    }
}

impl Default for WordBuffer {
    fn default() -> Self {
        WordBuffer::new()
    }
}

/// In-place Fisher–Yates shuffle, bit-identical to the vendored
/// `SliceRandom::shuffle` (the swap sequence depends only on the drawn words
/// and the length, never on the element type or values), with the draws
/// pre-computed per block so the random `order[j]` accesses are touched ahead
/// of the swaps and their cache misses overlap. At 10⁷ entries the order
/// array is tens of MB — far beyond LLC — and the descending sequential
/// `order[i]` side streams while the random `j` side becomes a batch of
/// independent loads instead of a serial miss chain.
pub fn shuffle_batched<T: Copy + Into<u64>>(order: &mut [T], rng: &mut StdRng) {
    const BLOCK: usize = 64;
    let len = order.len();
    if len < 2 {
        return;
    }
    let mut words = [0u64; BLOCK];
    let mut js = [0usize; BLOCK];
    // The sequential loop is `for i in (1..len).rev() { j = gen_range(0..=i) }`;
    // each block handles iterations i, i-1, …, i-count+1 with words drawn in
    // that same order, so the word→iteration mapping is unchanged.
    let mut i = len - 1;
    loop {
        let count = BLOCK.min(i);
        for word in words.iter_mut().take(count) {
            *word = rng.next_u64();
        }
        let mut touch = 0u64;
        for k in 0..count {
            let span = (i - k) as u128 + 1;
            let j = ((u128::from(words[k]) * span) >> 64) as usize;
            js[k] = j;
            // Warm the line; the swap below then hits cache. Swaps cannot
            // invalidate this: j depends only on the words, never the data.
            touch ^= order[j].into();
        }
        std::hint::black_box(touch);
        for (k, &j) in js.iter().enumerate().take(count) {
            order.swap(i - k, j);
        }
        if i == count {
            return;
        }
        i -= count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};

    #[test]
    fn shuffle_batched_is_bit_identical_to_slice_random_shuffle() {
        for len in [0usize, 1, 2, 3, 63, 64, 65, 100, 1000, 4096] {
            for seed in [0u64, 7, 20040102, u64::MAX] {
                let mut reference: Vec<u32> = (0..len as u32).collect();
                let mut batched = reference.clone();
                reference.shuffle(&mut StdRng::seed_from_u64(seed));
                shuffle_batched(&mut batched, &mut StdRng::seed_from_u64(seed));
                assert_eq!(reference, batched, "len {len} seed {seed}");
            }
        }
    }

    #[test]
    fn shuffle_batched_swap_sequence_is_element_type_independent() {
        // The engine shuffles u64 entries carrying (position << 32 | payload);
        // the permutation applied must be exactly the permutation a u32
        // position shuffle under the same seed produces.
        for (len, seed) in [(100usize, 3u64), (4096, 77)] {
            let mut positions: Vec<u32> = (0..len as u32).collect();
            let mut entries: Vec<u64> = (0..len as u64).map(|i| (i << 32) | (i ^ 0xABCD)).collect();
            shuffle_batched(&mut positions, &mut StdRng::seed_from_u64(seed));
            shuffle_batched(&mut entries, &mut StdRng::seed_from_u64(seed));
            for (pos, entry) in positions.iter().zip(&entries) {
                assert_eq!(u64::from(*pos), entry >> 32);
                assert_eq!(entry & 0xFFFF_FFFF, u64::from(*pos) ^ 0xABCD);
            }
        }
    }

    #[test]
    fn word_buffer_replays_the_rng_stream_in_order() {
        let mut direct = StdRng::seed_from_u64(99);
        let mut buffered_rng = StdRng::seed_from_u64(99);
        let mut buffer = WordBuffer::new();
        // Cross several refills.
        for _ in 0..(WordBuffer::BLOCK * 3 + 17) {
            assert_eq!(direct.next_u64(), buffer.next(&mut buffered_rng));
        }
    }

    #[test]
    fn index_from_word_matches_gen_range() {
        // Feed identical words through both by replaying the same rng.
        for span in [2usize, 3, 10, 1_000_000, usize::MAX >> 12] {
            let mut a = StdRng::seed_from_u64(5);
            let mut b = StdRng::seed_from_u64(5);
            for _ in 0..100 {
                assert_eq!(a.gen_range(0..span), index_from_word(b.next_u64(), span));
            }
        }
    }

    #[test]
    fn coin_from_word_matches_gen_bool() {
        for p in [0.0, 0.05, 0.5, 0.999, 1.0] {
            let mut a = StdRng::seed_from_u64(11);
            let mut b = StdRng::seed_from_u64(11);
            for _ in 0..200 {
                assert_eq!(a.gen_bool(p), coin_from_word(b.next_u64(), p));
            }
        }
    }

    #[test]
    fn hot_slot_is_one_sixteenth_of_four_lines() {
        // The whole point of the record: 16 bytes, 16-aligned, so a random
        // endpoint access costs exactly one cache line.
        assert_eq!(std::mem::size_of::<HotSlot>(), 16);
        assert_eq!(std::mem::align_of::<HotSlot>(), 16);
    }

    #[test]
    fn hot_store_promote_flush_roundtrip_and_pairing() {
        let mut store = HotStore::default();
        let view = HotView {
            state: 2.5,
            epoch: 4,
            cycle_in_epoch: 3,
            exchanges: 9,
        };
        assert!(store.promote(7, view, 1.25));
        assert!(store.hot(7).is_some());
        assert_eq!(store.hot(3), None);
        assert_eq!(store.view(7), Some(view));
        assert_eq!(store.view(3), None);
        assert_eq!(store.restart[7], 1.25);
        // An epoch beyond u32 is not representable: the slot stays cold and
        // the occupant stays on the node path.
        assert!(!store.promote(
            5,
            HotView {
                state: 1.0,
                epoch: u64::from(COLD) + 3,
                cycle_in_epoch: 0,
                exchanges: 0,
            },
            1.0,
        ));
        assert_eq!(store.hot(5), None);
        assert!(store.promote(
            2,
            HotView {
                state: -1.0,
                epoch: 4,
                cycle_in_epoch: 0,
                exchanges: 0,
            },
            -1.0,
        ));
        let (a, b) = store.pair_mut(7, 2);
        assert_eq!(a.state, 2.5);
        assert_eq!(b.state, -1.0);
        let (b2, a2) = store.pair_mut(2, 7);
        assert_eq!(b2.state, -1.0);
        assert_eq!(a2.state, 2.5);
        store.mark_cold(7);
        assert_eq!(store.hot(7), None);
        // Beyond the arrays: cold by definition, mark_cold is a no-op.
        store.mark_cold(1_000);
        assert_eq!(store.hot(1_000), None);
    }
}
