//! Deterministic-interleaving exerciser for the sharded engine.
//!
//! The engine's determinism argument has exactly one concurrency-sensitive
//! step: worker threads complete in scheduler order and deliver cross-shard
//! exchange batches through mailboxes, and the receiving side restores a
//! total order by global sequence number before touching node state (the
//! seq-sorted drain in `sharded.rs` — guarded statically by gossip-lint's
//! `merge-order` rule). These tests exercise that argument dynamically:
//!
//! 1. a model of the mailbox merge replayed under **every** batch-arrival
//!    permutation, pinning that the seq-sort (and nothing weaker) restores a
//!    bit-identical merge — and that arrival-order folding really would
//!    diverge;
//! 2. the real engine across all worker counts for a fixed shard count,
//!    asserting bit-identical cycle summaries *and* per-node estimates;
//! 3. repeated multi-worker runs against a sequential reference, so the OS
//!    scheduler gets many chances to produce a novel interleaving and any
//!    arrival-order dependence shows up as a bit diff;
//! 4. a permutation check over the struct-of-arrays fused merge, pinning
//!    *why* the batched hot path may reorder its draws but must apply
//!    exchanges in schedule order: disjoint pairs commute bitwise,
//!    overlapping ones do not.
//!
//! The single-worker reference in (2) and (3) is the struct-of-arrays fused
//! executor (uniform sampling, one worker), so those tests double as
//! SoA-versus-threaded equivalence checks.

use aggregate_core::sampler::SamplerConfig;
use aggregate_core::{AggregateKind, ExchangeCore, ExchangeTally, ProtocolConfig};
use gossip_sim::sharded::{ShardedConfig, ShardedCycleSummary, ShardedSimulation};
use gossip_sim::soa::{HotSlot, HotStore};
use gossip_sim::{NetworkConditions, SimulationConfig};

/// One cross-shard exchange batch as the mailbox protocol sees it: a global
/// sequence number assigned at schedule time, plus a floating-point payload
/// whose summation order is observable in the low bits.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Batch {
    seq: u64,
    payload: f64,
}

/// FNV-1a over the payload bit patterns, in order — the same fingerprint
/// style the determinism suite pins run results with.
fn fingerprint(batches: &[Batch]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in batches {
        for byte in b
            .seq
            .to_le_bytes()
            .iter()
            .chain(b.payload.to_bits().to_le_bytes().iter())
        {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// All permutations of `items` (Heap's algorithm).
fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    fn heap<T: Clone>(work: &mut Vec<T>, k: usize, out: &mut Vec<Vec<T>>) {
        if k <= 1 {
            out.push(work.clone());
            return;
        }
        for i in 0..k {
            heap(work, k - 1, out);
            if k % 2 == 0 {
                work.swap(i, k - 1);
            } else {
                work.swap(0, k - 1);
            }
        }
    }
    let mut work = items.to_vec();
    let mut out = Vec::new();
    let len = work.len();
    heap(&mut work, len, &mut out);
    out
}

/// The coordinator's merge step, as `sharded.rs` performs it: flatten the
/// arrived batches, then restore the schedule-time total order by `seq`.
fn merge_seq_sorted(arrival: &[Vec<Batch>]) -> Vec<Batch> {
    let mut flat: Vec<Batch> = arrival.iter().flatten().copied().collect();
    flat.sort_unstable_by_key(|b| b.seq);
    flat
}

/// Left-to-right sum — order-sensitive in floating point, which is exactly
/// why the merge must not consume batches in arrival order.
fn fold_sum(batches: &[Batch]) -> f64 {
    batches.iter().fold(0.0, |acc, b| acc + b.payload)
}

/// Model check: under every possible mailbox-arrival permutation of the
/// per-worker batch lists, the seq-sorted merge yields one bit-identical
/// order, fingerprint and fold — while the raw arrival order provably
/// diverges for at least one permutation. This is the exact invariant the
/// `merge-order` lint rule freezes into the sources.
#[test]
fn seq_sorted_merge_is_invariant_under_all_arrival_orders() {
    // Five workers' batch lists; payloads picked so that summation order is
    // observable ((1e16 + 1) - 1e16 loses the 1.0 unless it is added last).
    let per_worker: Vec<Vec<Batch>> = vec![
        vec![
            Batch {
                seq: 0,
                payload: 1.0e16,
            },
            Batch {
                seq: 7,
                payload: -1.0e16,
            },
        ],
        vec![Batch {
            seq: 3,
            payload: 1.0,
        }],
        vec![
            Batch {
                seq: 1,
                payload: 0.1,
            },
            Batch {
                seq: 5,
                payload: -0.1,
            },
        ],
        vec![Batch {
            seq: 2,
            payload: 3.25,
        }],
        vec![
            Batch {
                seq: 4,
                payload: -7.5,
            },
            Batch {
                seq: 6,
                payload: 1.0e-3,
            },
        ],
    ];

    let reference = merge_seq_sorted(&per_worker);
    let reference_fp = fingerprint(&reference);
    let reference_sum = fold_sum(&reference).to_bits();
    // The merged order is the schedule-time order: seq 0..=7 exactly.
    assert_eq!(
        reference.iter().map(|b| b.seq).collect::<Vec<_>>(),
        (0..=7).collect::<Vec<_>>()
    );

    let mut arrival_order_diverged = false;
    for arrival in permutations(&per_worker) {
        let merged = merge_seq_sorted(&arrival);
        assert_eq!(merged, reference, "seq-sort must erase arrival order");
        assert_eq!(fingerprint(&merged), reference_fp);
        assert_eq!(fold_sum(&merged).to_bits(), reference_sum);

        let unsorted: Vec<Batch> = arrival.iter().flatten().copied().collect();
        if fold_sum(&unsorted).to_bits() != reference_sum {
            arrival_order_diverged = true;
        }
    }
    assert!(
        arrival_order_diverged,
        "payloads must be order-sensitive, or this test proves nothing"
    );
}

/// A dense hot store with order-sensitive states: catastrophic-cancellation
/// magnitudes make every merge order observable in the low bits.
fn dense_store(states: &[f64]) -> HotStore {
    let mut store = HotStore::default();
    store.ensure_slot(states.len() as u32 - 1);
    for (slot, &state) in states.iter().enumerate() {
        store.slots[slot] = HotSlot {
            state,
            key: 0,
            exchanges: 0,
        };
    }
    store
}

/// Applies a schedule of fused exchanges to the dense store, in order, and
/// returns the resulting state/counter bit fingerprint.
fn apply_dense(store: &mut HotStore, schedule: &[(u32, u32)]) -> u64 {
    let mut tally = ExchangeTally::default();
    for &(a, b) in schedule {
        let (x, y) = store.pair_mut(a, b);
        ExchangeCore::exchange_fused_raw(
            AggregateKind::Average,
            &mut x.state,
            &mut x.exchanges,
            &mut y.state,
            &mut y.exchanges,
            &mut || false,
            &mut tally,
        );
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for record in &store.slots {
        for byte in record
            .state
            .to_bits()
            .to_le_bytes()
            .iter()
            .chain(u64::from(record.exchanges).to_le_bytes().iter())
        {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Model check over the struct-of-arrays fused merge (the single-worker
/// executor's hot path): exchanges touching **disjoint** slot pairs commute
/// bitwise — any permutation of them produces the identical dense store —
/// while exchanges **sharing** an endpoint do not, which is exactly why the
/// SoA pipeline resolves and applies its batched schedule in the
/// schedule-time sequence order (the same total order the mailbox merge
/// restores by seq-sort on the threaded path).
#[test]
fn dense_fused_merge_commutes_exactly_for_disjoint_pairs_only() {
    let states = [1.0e16, 1.0, 0.1, 3.25, -7.5, 1.0e-3];

    // Disjoint pairs: every slot appears at most once per schedule.
    let disjoint = [(0u32, 3u32), (1, 4), (2, 5)];
    let reference = apply_dense(&mut dense_store(&states), &disjoint);
    for schedule in permutations(&disjoint) {
        let fp = apply_dense(&mut dense_store(&states), &schedule);
        assert_eq!(
            fp, reference,
            "disjoint fused exchanges must commute bitwise: {schedule:?}"
        );
    }

    // Overlapping pairs: slot 0 participates twice; at least one order must
    // diverge, or the seq-order discipline would be vacuous.
    let overlapping = [(0u32, 1u32), (0, 2), (3, 4)];
    let reference = apply_dense(&mut dense_store(&states), &overlapping);
    let diverged = permutations(&overlapping)
        .into_iter()
        .any(|schedule| apply_dense(&mut dense_store(&states), &schedule) != reference);
    assert!(
        diverged,
        "overlapping exchanges must be order-sensitive, or this test proves nothing"
    );
}

/// A small sharded run with churn and message loss — every knob that feeds
/// the cross-shard mailboxes — returning the full observable state: cycle
/// summaries plus the bit patterns of every node estimate.
fn churny_run(
    seed: u64,
    shards: usize,
    workers: Option<usize>,
) -> (Vec<ShardedCycleSummary>, Vec<u64>) {
    let values: Vec<f64> = (0..96).map(|i| (i % 13) as f64).collect();
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(6)
        .build()
        .unwrap();
    let config = ShardedConfig {
        base: SimulationConfig {
            protocol,
            conditions: NetworkConditions::with_message_loss(0.1),
            leader_policy: None,
            sampler: SamplerConfig::UniformComplete,
            redundancy: None,
        },
        shards,
        workers,
    };
    let mut sim = ShardedSimulation::new(config, &values, seed).unwrap();
    let mut summaries = Vec::new();
    for cycle in 0..18 {
        if cycle % 3 == 0 {
            sim.add_node(cycle as f64);
            sim.remove_random_nodes(1);
        }
        summaries.push(sim.run_cycle());
    }
    let bits = sim.estimates().iter().map(|v| v.to_bits()).collect();
    (summaries, bits)
}

/// The mailbox/barrier protocol must make worker count invisible: the fused
/// sequential executor (one worker) and every multi-worker round execution
/// produce bit-identical summaries and node estimates.
#[test]
fn every_worker_count_reproduces_the_sequential_execution() {
    let (reference, reference_bits) = churny_run(97, 4, Some(1));
    for workers in 2..=4 {
        let (summaries, bits) = churny_run(97, 4, Some(workers));
        assert_eq!(
            summaries, reference,
            "{workers}-worker interleavings must merge back to the sequential order"
        );
        assert_eq!(
            bits, reference_bits,
            "node estimates drifted at {workers} workers"
        );
    }
}

/// Scheduler roulette: repeat the same multi-worker run many times. Each
/// repetition hands the OS scheduler a fresh chance to deliver mailbox
/// batches in a new order; if any code path consumed them arrival-ordered,
/// some repetition would produce different bits.
#[test]
fn repeated_threaded_runs_never_drift_from_the_reference() {
    let (reference, reference_bits) = churny_run(613, 3, Some(1));
    for rep in 0..8 {
        let (summaries, bits) = churny_run(613, 3, Some(3));
        assert_eq!(summaries, reference, "drift on repetition {rep}");
        assert_eq!(bits, reference_bits, "estimate drift on repetition {rep}");
    }
}
