//! Named (x, y) data series for experiment output.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points with optional per-point spread (error
/// bars), mirroring what the paper plots: e.g. "getPair_seq, 20-reg. random"
/// as a function of network size, or the size estimate with min/max bars in
/// Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<SeriesPoint>,
}

/// A single point of a [`Series`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Abscissa (network size, cycle number, …).
    pub x: f64,
    /// Ordinate (variance reduction, size estimate, …).
    pub y: f64,
    /// Lower error-bar bound (defaults to `y`).
    pub y_low: f64,
    /// Upper error-bar bound (defaults to `y`).
    pub y_high: f64,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point without error bars.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SeriesPoint {
            x,
            y,
            y_low: y,
            y_high: y,
        });
    }

    /// Appends a point with an error-bar range.
    pub fn push_with_range(&mut self, x: f64, y: f64, y_low: f64, y_high: f64) {
        self.points.push(SeriesPoint {
            x,
            y,
            y_low,
            y_high,
        });
    }

    /// The points of the series.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// Renders the series as a gnuplot-style data block:
    /// `# name` followed by `x y y_low y_high` lines.
    pub fn to_data_block(&self) -> String {
        let mut out = format!("# {}\n", self.name);
        for p in &self.points {
            out.push_str(&format!(
                "{:.6} {:.6} {:.6} {:.6}\n",
                p.x, p.y, p.y_low, p.y_high
            ));
        }
        out
    }

    /// Renders the series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,y_low,y_high\n");
        for p in &self.points {
            out.push_str(&format!("{},{},{},{}\n", p.x, p.y, p.y_low, p.y_high));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut s = Series::new("getPair_rand, complete");
        assert!(s.is_empty());
        s.push(100.0, 0.37);
        s.push_with_range(1_000.0, 0.365, 0.36, 0.37);
        assert_eq!(s.len(), 2);
        assert_eq!(s.name(), "getPair_rand, complete");
        assert_eq!(s.points()[0].y_low, 0.37);
        assert_eq!(s.points()[1].y_low, 0.36);
    }

    #[test]
    fn data_block_format() {
        let mut s = Series::new("estimate");
        s.push_with_range(30.0, 100_000.0, 98_000.0, 102_000.0);
        let block = s.to_data_block();
        assert!(block.starts_with("# estimate\n"));
        assert!(block.contains("30.000000 100000.000000 98000.000000 102000.000000"));
    }

    #[test]
    fn csv_format() {
        let mut s = Series::new("x");
        s.push(1.0, 2.0);
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("x,y,y_low,y_high"));
        assert!(csv.contains("1,2,2,2"));
    }
}
