//! # gossip-analysis
//!
//! Descriptive statistics, histograms, parameter sweeps and report generation
//! for the epidemic-aggregation experiments.
//!
//! The paper's evaluation reports *averages over 50 independent runs*, ranges
//! over nodes (Figure 4's error bars) and per-cycle reduction factors plotted
//! against theoretical constants. This crate contains the small, dependency
//! free numerical toolbox the benchmark harness uses to produce those numbers
//! and to render them as aligned text tables, CSV files and gnuplot-ready data
//! blocks.
//!
//! ## Example
//!
//! ```
//! use gossip_analysis::{Summary, Table};
//!
//! let runs = [0.368, 0.371, 0.361, 0.377, 0.365];
//! let summary = Summary::from_slice(&runs);
//! assert!((summary.mean - 0.3684).abs() < 1e-3);
//!
//! let mut table = Table::new(vec!["selector", "measured", "paper"]);
//! table.add_row(vec![
//!     "getPair_rand".to_string(),
//!     format!("{:.3}", summary.mean),
//!     "0.368".to_string(),
//! ]);
//! assert!(table.to_markdown().contains("getPair_rand"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bench;
mod histogram;
mod online;
mod report;
mod series;
mod stats;

pub use bench::{BenchReport, BenchRun};
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use report::Table;
pub use series::Series;
pub use stats::Summary;
