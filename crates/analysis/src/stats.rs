//! Batch summary statistics.

use serde::{Deserialize, Serialize};

/// Summary statistics of a batch of observations (e.g. the 50 independent
/// runs behind each point of the paper's Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (`n − 1` normalisation); zero for fewer than
    /// two observations.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (average of the two central order statistics for even counts).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of a slice of observations.
    ///
    /// Returns an all-zero summary for an empty slice (documented degenerate
    /// behaviour so experiment code does not need special cases).
    pub fn from_slice(values: &[f64]) -> Self {
        let count = values.len();
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Standard error of the mean, `σ / √n` (zero for empty batches).
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// Half-width of the ~95 % normal confidence interval for the mean
    /// (`1.96 · std_error`). With the 50-run batches used throughout the
    /// benchmarks the normal approximation is accurate enough for reporting.
    pub fn confidence_95(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// `p`-quantile of the observations (nearest-rank method), or `None` for
    /// empty batches or `p` outside `[0, 1]`.
    pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
        if values.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_slice_gives_zeroes() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.confidence_95(), 0.0);
    }

    #[test]
    fn known_batch_statistics() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
        // Sample variance = 32 / 7.
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 3.5);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn median_of_odd_and_even_counts() {
        assert_eq!(Summary::from_slice(&[3.0, 1.0, 2.0]).median, 2.0);
        assert_eq!(Summary::from_slice(&[4.0, 1.0, 2.0, 3.0]).median, 2.5);
    }

    #[test]
    fn confidence_interval_shrinks_with_more_samples() {
        let few = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = (0..400).map(|i| 1.0 + (i % 4) as f64).collect();
        let many = Summary::from_slice(&many);
        assert!(many.confidence_95() < few.confidence_95());
    }

    #[test]
    fn quantiles() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(Summary::quantile(&values, 0.0), Some(1.0));
        assert_eq!(Summary::quantile(&values, 0.5), Some(5.0));
        assert_eq!(Summary::quantile(&values, 1.0), Some(10.0));
        assert_eq!(Summary::quantile(&values, 0.95), Some(10.0));
        assert_eq!(Summary::quantile(&[], 0.5), None);
        assert_eq!(Summary::quantile(&values, 1.5), None);
    }

    proptest! {
        /// Mean lies within [min, max]; std_dev is non-negative; median within
        /// range — for arbitrary finite batches.
        #[test]
        fn prop_summary_invariants(values in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
            let s = Summary::from_slice(&values);
            prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.std_dev >= 0.0);
            prop_assert_eq!(s.count, values.len());
        }
    }
}
