//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! The sharded-engine performance work is tracked by a committed artifact,
//! `BENCH_sharded_engine.json` at the repository root: every
//! `sharded_engine` bench and `million_node` example run can emit one, and
//! CI compares a fresh smoke run against the committed baseline, failing on
//! a >20 % cycles/s regression. The schema is documented in
//! `EXPERIMENTS.md` ("Benchmark artifact schema").
//!
//! The workspace has no JSON dependency (the vendored `serde` is traits
//! only), so this module hand-rolls both the writer and a reader that is
//! deliberately limited to the exact shape this writer produces: one run
//! object per line. That keeps the pair self-contained and testable.
//!
//! # Example
//!
//! ```
//! use gossip_analysis::bench::{BenchReport, BenchRun};
//!
//! let mut report = BenchReport::new("million_node", "deadbeef");
//! report.push(BenchRun {
//!     label: "ci_smoke".into(),
//!     nodes: 100_000,
//!     shards: 8,
//!     workers: 1,
//!     cycles: 20,
//!     elapsed_s: 1.25,
//!     cycles_per_s: 16.0,
//!     exchanges_per_s: 1.6e6,
//! });
//! let json = report.to_json();
//! let parsed = BenchReport::parse(&json).unwrap();
//! assert_eq!(parsed.runs.len(), 1);
//! assert_eq!(parsed.runs[0].nodes, 100_000);
//! ```

use std::fmt::Write as _;

/// One measured engine configuration: a (nodes, shards, workers) point and
/// its throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Stable name used to match runs across reports (e.g. `ci_smoke`,
    /// `full_10m`, `workers_4`). The regression gate compares runs by label.
    pub label: String,
    /// Network size (live nodes at start).
    pub nodes: usize,
    /// Shard count of the sharded engine.
    pub shards: usize,
    /// Effective worker threads the run used.
    pub workers: usize,
    /// Cycles executed.
    pub cycles: usize,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
    /// Throughput: cycles per second.
    pub cycles_per_s: f64,
    /// Throughput: completed push–pull exchanges per second.
    pub exchanges_per_s: f64,
}

/// A benchmark report: provenance plus a list of measured runs.
///
/// Serialises to the `bench_sharded_engine/v1` JSON schema via
/// [`BenchReport::to_json`] / [`BenchReport::write_json`]; reads the same
/// shape back via [`BenchReport::parse`] / [`BenchReport::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Which harness produced the report (`million_node`, `sharded_engine`).
    pub bench: String,
    /// Git revision of the tree that was measured, or `"unknown"`.
    pub git_rev: String,
    /// Peak resident set size of the measuring process in bytes, if known.
    /// Process-wide high-water mark: with several runs in one report it
    /// reflects the largest configuration.
    pub peak_rss_bytes: Option<u64>,
    /// The measured configurations.
    pub runs: Vec<BenchRun>,
}

/// Schema identifier written into every report.
pub const SCHEMA: &str = "bench_sharded_engine/v1";

impl BenchReport {
    /// Creates an empty report for the given harness and git revision.
    pub fn new(bench: &str, git_rev: &str) -> Self {
        BenchReport {
            bench: bench.to_string(),
            git_rev: git_rev.to_string(),
            peak_rss_bytes: None,
            runs: Vec::new(),
        }
    }

    /// Appends a measured run.
    pub fn push(&mut self, run: BenchRun) {
        self.runs.push(run);
    }

    /// Renders the report as pretty-printed JSON, one run object per line
    /// (the shape [`BenchReport::parse`] expects).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", escape(SCHEMA));
        let _ = writeln!(out, "  \"bench\": \"{}\",", escape(&self.bench));
        let _ = writeln!(out, "  \"git_rev\": \"{}\",", escape(&self.git_rev));
        match self.peak_rss_bytes {
            Some(bytes) => {
                let _ = writeln!(out, "  \"peak_rss_bytes\": {bytes},");
            }
            None => {
                let _ = writeln!(out, "  \"peak_rss_bytes\": null,");
            }
        }
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let comma = if i + 1 < self.runs.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"label\": \"{}\", \"nodes\": {}, \"shards\": {}, \
                 \"workers\": {}, \"cycles\": {}, \"elapsed_s\": {}, \
                 \"cycles_per_s\": {}, \"exchanges_per_s\": {}}}{comma}",
                escape(&run.label),
                run.nodes,
                run.shards,
                run.workers,
                run.cycles,
                json_f64(run.elapsed_s),
                json_f64(run.cycles_per_s),
                json_f64(run.exchanges_per_s),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report as JSON to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    ///
    /// This is a schema-bound reader, not a general JSON parser: it relies
    /// on the writer's one-key-per-line layout for the header and
    /// one-object-per-line layout for runs. Returns `None` when the schema
    /// line is missing or names a different schema.
    pub fn parse(json: &str) -> Option<BenchReport> {
        let mut schema_ok = false;
        let mut report = BenchReport::new("", "unknown");
        for line in json.lines() {
            if let Some(value) = string_field(line, "schema") {
                schema_ok = value == SCHEMA;
            } else if let Some(value) = string_field(line, "bench") {
                report.bench = value;
            } else if let Some(value) = string_field(line, "git_rev") {
                report.git_rev = value;
            } else if let Some(raw) = raw_field(line, "peak_rss_bytes") {
                report.peak_rss_bytes = raw.parse::<u64>().ok();
            } else if let Some(label) = string_field(line, "label") {
                // A malformed run line (e.g. a `null` throughput from a
                // non-finite measurement) drops that run, not the report.
                if let Some(run) = parse_run(line, label) {
                    report.runs.push(run);
                }
            }
        }
        schema_ok.then_some(report)
    }

    /// Loads and parses a report from `path`.
    pub fn load(path: &str) -> std::io::Result<Option<BenchReport>> {
        Ok(Self::parse(&std::fs::read_to_string(path)?))
    }

    /// Finds a run by label.
    pub fn run(&self, label: &str) -> Option<&BenchRun> {
        self.runs.iter().find(|r| r.label == label)
    }

    /// Writes the report to `path`, merging with an existing report there:
    /// runs already recorded under labels this report does not re-measure
    /// are kept (so a smoke run, a `--full` run and a worker sweep
    /// accumulate into one artifact), runs re-measured under the same label
    /// are replaced, and the peak RSS keeps the high-water mark. A missing
    /// or foreign-schema file is simply overwritten.
    pub fn merge_into_file(&self, path: &str) -> std::io::Result<()> {
        let mut merged = self.clone();
        if let Ok(Some(existing)) = Self::load(path) {
            for run in existing.runs {
                if merged.run(&run.label).is_none() {
                    merged.push(run);
                }
            }
            merged.peak_rss_bytes = merged.peak_rss_bytes.max(existing.peak_rss_bytes);
        }
        merged.write_json(path)
    }
}

/// Compares `current` against `baseline` run-by-run (matched by label) and
/// returns the regressions: every label whose current cycles/s fell below
/// `(1 - tolerance)` of the baseline. Labels present on only one side are
/// ignored — the gate protects tracked configurations, it does not force
/// report shapes to match. An empty result means the gate passes.
pub fn regressions(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Vec<(String, f64, f64)> {
    let mut failures = Vec::new();
    for base in &baseline.runs {
        if let Some(cur) = current.run(&base.label) {
            if cur.cycles_per_s < base.cycles_per_s * (1.0 - tolerance) {
                failures.push((base.label.clone(), base.cycles_per_s, cur.cycles_per_s));
            }
        }
    }
    failures
}

/// Parses one writer-emitted run object line; `None` when any field is
/// missing or unparsable.
fn parse_run(line: &str, label: String) -> Option<BenchRun> {
    Some(BenchRun {
        label,
        nodes: raw_field(line, "nodes")?.parse().ok()?,
        shards: raw_field(line, "shards")?.parse().ok()?,
        workers: raw_field(line, "workers")?.parse().ok()?,
        cycles: raw_field(line, "cycles")?.parse().ok()?,
        elapsed_s: raw_field(line, "elapsed_s")?.parse().ok()?,
        cycles_per_s: raw_field(line, "cycles_per_s")?.parse().ok()?,
        exchanges_per_s: raw_field(line, "exchanges_per_s")?.parse().ok()?,
    })
}

/// Peak resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` off Linux or when the
/// field is missing.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

/// The current git revision (short form), or `"unknown"` when the tree is
/// not a git checkout or git is unavailable.
pub fn git_revision() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Formats a float for JSON: finite values print with full precision
/// round-trip, non-finite values become `null` (JSON has no NaN/inf).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        // Guarantee a `.` or exponent so the value reads back as float-ish
        // in strict consumers.
        let s = format!("{value}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

/// Escapes a string for a JSON string literal.
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts the string value of `"key": "..."` from a line, unescaping the
/// writer's escapes.
fn string_field(line: &str, key: &str) -> Option<String> {
    let raw = raw_field(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code: String = chars.by_ref().take(4).collect();
                let value = u32::from_str_radix(&code, 16).ok()?;
                out.push(char::from_u32(value)?);
            }
            Some(other) => out.push(other),
            None => return None,
        }
    }
    Some(out)
}

/// Extracts the raw (unparsed) value of `"key": <value>` from a line:
/// everything up to the next top-level `,` or closing brace/bracket.
/// String values keep their surrounding quotes.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = line[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        // A string value: scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, c) in stripped.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(&rest[..i + 2]);
            }
        }
        None
    } else {
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        let value = rest[..end].trim();
        (!value.is_empty()).then_some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(label: &str, cycles_per_s: f64) -> BenchRun {
        BenchRun {
            label: label.to_string(),
            nodes: 100_000,
            shards: 8,
            workers: 1,
            cycles: 20,
            elapsed_s: 20.0 / cycles_per_s,
            cycles_per_s,
            exchanges_per_s: cycles_per_s * 50_000.0,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut report = BenchReport::new("million_node", "abc1234");
        report.peak_rss_bytes = Some(1_234_567_890);
        report.push(sample_run("ci_smoke", 16.5));
        report.push(sample_run("full_10m", 0.97));
        let parsed = BenchReport::parse(&report.to_json()).expect("schema matches");
        assert_eq!(parsed, report);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        let mut report = BenchReport::new("million_node", "abc1234");
        report.push(sample_run("ci_smoke", 16.5));
        let json = report.to_json().replace(SCHEMA, "something_else/v9");
        assert_eq!(BenchReport::parse(&json), None);
    }

    #[test]
    fn escaping_survives_round_trip() {
        let report = BenchReport::new("label \"with\" quotes\\and\tescapes", "rev\n");
        let parsed = BenchReport::parse(&report.to_json()).expect("schema matches");
        assert_eq!(parsed.bench, report.bench);
        assert_eq!(parsed.git_rev, report.git_rev);
    }

    #[test]
    fn non_finite_throughput_becomes_null() {
        let mut report = BenchReport::new("b", "r");
        let mut run = sample_run("bad", 1.0);
        run.exchanges_per_s = f64::NAN;
        report.push(run);
        let json = report.to_json();
        assert!(json.contains("\"exchanges_per_s\": null"));
        // The run still parses; the null throughput is dropped with the run
        // (parse of "null" as f64 fails) — the report survives.
        let parsed = BenchReport::parse(&json).expect("schema matches");
        assert!(parsed.runs.is_empty());
    }

    #[test]
    fn regression_gate_flags_only_slowdowns_beyond_tolerance() {
        let mut baseline = BenchReport::new("b", "old");
        baseline.push(sample_run("ci_smoke", 10.0));
        baseline.push(sample_run("full_10m", 1.0));
        baseline.push(sample_run("only_in_baseline", 5.0));

        let mut current = BenchReport::new("b", "new");
        current.push(sample_run("ci_smoke", 8.5)); // -15%: within 20%
        current.push(sample_run("full_10m", 0.5)); // -50%: regression
        current.push(sample_run("only_in_current", 2.0));

        let failures = regressions(&baseline, &current, 0.20);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "full_10m");
    }

    #[test]
    fn merge_into_file_keeps_other_labels_and_replaces_same() {
        let path =
            std::env::temp_dir().join(format!("bench_merge_test_{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(path);

        let mut first = BenchReport::new("million_node", "rev1");
        first.peak_rss_bytes = Some(500);
        first.push(sample_run("full_10m", 1.0));
        first.merge_into_file(path).expect("write");

        let mut second = BenchReport::new("million_node", "rev2");
        second.peak_rss_bytes = Some(100);
        second.push(sample_run("ci_smoke", 20.0));
        second.push(sample_run("full_10m", 1.1)); // re-measured: replaces
        second.merge_into_file(path).expect("merge");

        let merged = BenchReport::load(path).expect("read").expect("schema");
        std::fs::remove_file(path).ok();
        assert_eq!(merged.git_rev, "rev2");
        assert_eq!(merged.peak_rss_bytes, Some(500), "high-water mark kept");
        assert_eq!(merged.runs.len(), 2);
        assert_eq!(merged.run("full_10m").unwrap().cycles_per_s, 1.1);
        assert_eq!(merged.run("ci_smoke").unwrap().cycles_per_s, 20.0);
    }

    #[test]
    fn vm_hwm_parses_from_proc_status_format() {
        let status = "Name:\tbench\nVmPeak:\t  999 kB\nVmHWM:\t  204800 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(204800 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tbench\n"), None);
    }

    #[test]
    fn peak_rss_is_available_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM in /proc/self/status");
            assert!(rss > 0);
        }
    }
}
