//! Fixed-bin histograms.

use serde::{Deserialize, Serialize};

/// A histogram over a fixed range with equally sized bins.
///
/// Used for reporting distributions (per-node contact counts, estimate spreads
/// across nodes) in the benchmark output.
///
/// # Example
///
/// ```
/// use gossip_analysis::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// for v in [0.5, 1.5, 2.5, 2.6, 9.9, 42.0] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.bin_counts()[1], 2); // 2.5 and 2.6 fall in [2, 4)
/// assert_eq!(h.overflow(), 1);       // 42.0 is out of range
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal bins.
    ///
    /// Returns `None` when the range is empty/invalid or `bins` is zero.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if lo >= hi || bins == 0 || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        Some(Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations added (including out-of-range ones).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The per-bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations smaller than the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The `(low, high)` bounds of bin `idx`.
    pub fn bin_bounds(&self, idx: usize) -> Option<(f64, f64)> {
        if idx >= self.bins.len() {
            return None;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        Some((
            self.lo + idx as f64 * width,
            self.lo + (idx + 1) as f64 * width,
        ))
    }

    /// Renders the histogram as a simple text block (one line per bin with a
    /// proportional bar), handy for benchmark logs.
    pub fn to_text(&self) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (idx, &count) in self.bins.iter().enumerate() {
            let (lo, hi) = self.bin_bounds(idx).expect("idx in range"); // lint-allow(unwrap): idx enumerates self.bins, so it is always in range
            let bar_len = (count * 40 / max) as usize;
            out.push_str(&format!(
                "[{lo:>10.3}, {hi:>10.3}) {count:>8} {}\n",
                "#".repeat(bar_len)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
        assert!(Histogram::new(f64::NAN, 1.0, 3).is_none());
        assert!(Histogram::new(0.0, f64::INFINITY, 3).is_none());
    }

    #[test]
    fn values_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        for v in 0..10 {
            h.add(v as f64 + 0.5);
        }
        assert!(h.bin_counts().iter().all(|&c| c == 1));
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn out_of_range_values_are_tracked_separately() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.add(-0.1);
        h.add(1.0);
        h.add(5.0);
        h.add(0.25);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn bin_bounds_partition_the_range() {
        let h = Histogram::new(0.0, 8.0, 4).unwrap();
        assert_eq!(h.bin_bounds(0), Some((0.0, 2.0)));
        assert_eq!(h.bin_bounds(3), Some((6.0, 8.0)));
        assert_eq!(h.bin_bounds(4), None);
    }

    #[test]
    fn text_rendering_contains_every_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.add(0.5);
        h.add(0.6);
        h.add(3.5);
        let text = h.to_text();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('#'));
    }
}
