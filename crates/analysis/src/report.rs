//! Text/markdown/CSV tables for benchmark reports.

use serde::{Deserialize, Serialize};

/// A simple rectangular table with a header row.
///
/// The benchmark binaries print every paper table and figure as one of these,
/// so that the output is directly pasteable into a markdown report.
///
/// # Example
///
/// ```
/// use gossip_analysis::Table;
///
/// let mut table = Table::new(vec!["selector", "rate"]);
/// table.add_row(vec!["getPair_pm".into(), "0.250".into()]);
/// table.add_row(vec!["getPair_rand".into(), "0.368".into()]);
/// let text = table.to_aligned_text();
/// assert!(text.contains("getPair_pm"));
/// assert_eq!(table.to_csv().lines().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated, so the table always stays
    /// rectangular.
    pub fn add_row(&mut self, row: Vec<String>) {
        let mut row = row;
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Appends every row of `other` to this table, returning `false` (and
    /// appending nothing) when the headers differ. Sweep harnesses use this
    /// to stack several measured curves — e.g. the fault lab's link-failure,
    /// loss and injection curves — into one CSV artifact.
    pub fn append(&mut self, other: &Table) -> bool {
        if self.headers != other.headers {
            return false;
        }
        self.rows.extend(other.rows.iter().cloned());
        true
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders the table as column-aligned plain text.
    pub fn to_aligned_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i] + 2))
                .collect::<String>()
                .trim_end()
                .to_string()
        };
        let mut out = render_row(&self.headers);
        out.push('\n');
        out.push_str(
            &"-".repeat(
                widths
                    .iter()
                    .map(|w| w + 2)
                    .sum::<usize>()
                    .saturating_sub(2),
            ),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating or truncating the file —
    /// the artifact-recording half of the bench/telemetry pipeline.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Renders the table as CSV (headers + rows). Cells containing commas are
    /// quoted.
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    /// Displays the table in its column-aligned plain-text form, so bench
    /// binaries and examples can `println!("{table}")` directly.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_aligned_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["selector", "measured", "paper"]);
        t.add_row(vec!["getPair_pm".into(), "0.2498".into(), "0.25".into()]);
        t.add_row(vec![
            "getPair_rand".into(),
            "0.3702".into(),
            "0.3679".into(),
        ]);
        t
    }

    #[test]
    fn append_stacks_rows_only_for_matching_headers() {
        let mut base = sample();
        let more = {
            let mut t = Table::new(vec!["selector", "measured", "paper"]);
            t.add_row(vec!["getPair_seq".into(), "0.3030".into(), "0.3033".into()]);
            t
        };
        assert!(base.append(&more));
        assert_eq!(base.len(), 3);
        assert!(base.to_csv().contains("getPair_seq,0.3030,0.3033"));

        let mismatched = Table::new(vec!["other", "headers"]);
        assert!(!base.append(&mismatched));
        assert_eq!(base.len(), 3, "a rejected append must change nothing");
    }

    #[test]
    fn rows_are_normalised_to_header_width() {
        let mut t = Table::new(vec!["a", "b"]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        for line in t.to_csv().lines().skip(1) {
            assert_eq!(line.split(',').count(), 2);
        }
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| selector | measured | paper |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("| getPair_rand | 0.3702 | 0.3679 |"));
        assert_eq!(md.lines().count(), 4);
    }

    #[test]
    fn aligned_text_rendering() {
        let text = sample().to_aligned_text();
        assert!(text.contains("selector"));
        assert!(text.lines().count() >= 4);
        // Columns aligned: every data line starts with the selector name.
        assert!(text.lines().nth(2).unwrap().starts_with("getPair_pm"));
    }

    #[test]
    fn display_matches_aligned_text() {
        let table = sample();
        assert_eq!(table.to_string(), table.to_aligned_text());
    }

    #[test]
    fn csv_rendering_quotes_commas() {
        let mut t = Table::new(vec!["name", "value"]);
        t.add_row(vec!["a,b".into(), "1".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",1"));
    }

    #[test]
    fn write_csv_round_trips_through_the_filesystem() {
        let table = sample();
        let path = std::env::temp_dir().join(format!(
            "gossip-analysis-write-csv-{}.csv",
            std::process::id()
        ));
        table.write_csv(&path).expect("temp dir is writable");
        let written = std::fs::read_to_string(&path).unwrap();
        assert_eq!(written, table.to_csv());
        assert_eq!(written.lines().count(), 3);
        std::fs::remove_file(&path).ok();
    }
}
