//! Streaming (online) statistics.

use serde::{Deserialize, Serialize};

/// Welford-style online accumulator for mean and variance.
///
/// Used where the benchmark harness cannot afford to keep every observation in
/// memory — e.g. per-node estimates across a 100 000-node network for every
/// cycle of the Figure 4 scenario.
///
/// # Example
///
/// ```
/// use gossip_analysis::OnlineStats;
///
/// let mut stats = OnlineStats::new();
/// for v in [2.0, 4.0, 6.0] {
///     stats.push(v);
/// }
/// assert_eq!(stats.mean(), 4.0);
/// assert_eq!(stats.sample_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (`/ n`); 0 for fewer than one observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`/ (n − 1)`); 0 for fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merges another accumulator into this one (parallel Welford update), so
    /// per-thread accumulators can be combined.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_accumulator_defaults() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn matches_two_pass_computation() {
        let values = [1.5, -2.0, 4.25, 0.0, 3.75, -1.25];
        let mut online = OnlineStats::new();
        for &v in &values {
            online.push(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((online.mean() - mean).abs() < 1e-12);
        assert!((online.sample_variance() - var).abs() < 1e-12);
        assert_eq!(online.min(), Some(-2.0));
        assert_eq!(online.max(), Some(4.25));
    }

    #[test]
    fn merge_equals_sequential_pushes() {
        let first = [1.0, 2.0, 3.0];
        let second = [10.0, 20.0];
        let mut a = OnlineStats::new();
        first.iter().for_each(|&v| a.push(v));
        let mut b = OnlineStats::new();
        second.iter().for_each(|&v| b.push(v));
        a.merge(&b);

        let mut reference = OnlineStats::new();
        first
            .iter()
            .chain(second.iter())
            .for_each(|&v| reference.push(v));
        assert!((a.mean() - reference.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - reference.sample_variance()).abs() < 1e-12);
        assert_eq!(a.count(), 5);

        // Merging an empty accumulator is a no-op in both directions.
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 5);
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), 5);
    }

    proptest! {
        /// Online and batch statistics agree for arbitrary inputs.
        #[test]
        fn prop_online_matches_batch(values in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
            let mut online = OnlineStats::new();
            values.iter().for_each(|&v| online.push(v));
            let batch = crate::Summary::from_slice(&values);
            prop_assert!((online.mean() - batch.mean).abs() < 1e-6 * (1.0 + batch.mean.abs()));
            prop_assert!(
                (online.sample_variance().sqrt() - batch.std_dev).abs()
                    < 1e-6 * (1.0 + batch.std_dev)
            );
        }

        /// The sharded engine's telemetry reducer merges one accumulator per
        /// shard; this pins its correctness for *arbitrary* splits: chopping
        /// the input at any set of points, accumulating each chunk
        /// separately and merging left-to-right matches one sequential pass
        /// within 1e-9 relative tolerance, and the order statistics match
        /// exactly.
        #[test]
        fn prop_merge_over_arbitrary_splits_matches_sequential(
            values in proptest::collection::vec(-1e6f64..1e6, 1..200),
            raw_cuts in proptest::collection::vec(0usize..200, 0..8),
        ) {
            let mut sequential = OnlineStats::new();
            values.iter().for_each(|&v| sequential.push(v));

            // Normalise the cut points into ordered in-range split indices.
            let mut cuts: Vec<usize> = raw_cuts.iter().map(|&c| c % (values.len() + 1)).collect();
            cuts.sort_unstable();
            cuts.dedup();

            let mut merged = OnlineStats::new();
            let mut start = 0;
            for &cut in cuts.iter().chain(std::iter::once(&values.len())) {
                let mut chunk = OnlineStats::new();
                values[start..cut].iter().for_each(|&v| chunk.push(v));
                merged.merge(&chunk);
                start = cut;
            }

            prop_assert_eq!(merged.count(), sequential.count());
            prop_assert_eq!(merged.min(), sequential.min());
            prop_assert_eq!(merged.max(), sequential.max());
            let mean_tolerance = 1e-9 * (1.0 + sequential.mean().abs());
            prop_assert!(
                (merged.mean() - sequential.mean()).abs() <= mean_tolerance,
                "mean {} vs {}", merged.mean(), sequential.mean()
            );
            let variance_tolerance = 1e-9 * (1.0 + sequential.sample_variance().abs());
            prop_assert!(
                (merged.sample_variance() - sequential.sample_variance()).abs()
                    <= variance_tolerance,
                "variance {} vs {}", merged.sample_variance(), sequential.sample_variance()
            );
        }
    }
}
