//! Property suite for the stateful adversary lab.
//!
//! Three layers of guarantees, from the pure coin up to the engines:
//!
//! * **plan level** — every [`AdversaryPlan`] the generator produces
//!   validates, and its realisation is a pure function of `(plan, seed,
//!   initial directory)`: colluder membership, lie values and captured
//!   states are identical on repeated evaluation;
//! * **coin level** — colluder membership is *monotone* in the collusion
//!   fraction (the threshold-coin construction makes realised sets nested:
//!   raising the fraction only ever adds colluders);
//! * **engine level** — adversarial runs are deterministic across repeated
//!   runs, bit-identical across worker counts at a fixed shard count, and
//!   node-value invariant across shard counts in the loss-free regime —
//!   the same contracts the fault lab pins for [`FaultPlan`].
//!
//! The engine tests pull `gossip-sim` in as a dev-dependency (a dev-only
//! cycle Cargo permits), so the suite drives the real engines rather than a
//! re-implementation.

use aggregate_core::ProtocolConfig;
use gossip_faults::{Adversary, AdversaryPlan, AttackStrategy, FaultPlan, NetworkConditions};
use gossip_sim::{GossipSimulation, ShardedConfig, ShardedSimulation, SimulationConfig};
use overlay_topology::NodeId;
use proptest::prelude::*;

/// Assembles one of the four attack strategies from drawn primitives — the
/// vendored proptest stub has no `prop_oneof`/`prop_map`, so the strategy
/// space is enumerated by an index drawn alongside its parameters.
fn assemble_strategy(
    kind: usize,
    value: f64,
    secondary: f64,
    period: usize,
    instances: usize,
) -> AttackStrategy {
    match kind {
        0 => AttackStrategy::FixedLie { value },
        1 => AttackStrategy::Oscillate {
            center: value,
            amplitude: secondary.abs(),
            period,
        },
        2 => AttackStrategy::Drift {
            start: value,
            rate: secondary,
        },
        _ => AttackStrategy::LeaderCapture {
            instances,
            reported_state: value,
        },
    }
}

proptest! {
    /// Every generated plan validates, and its realisation is a pure
    /// function of `(plan, seed, initial directory)`: two adversaries built
    /// from the same inputs agree on membership, lies and captured states
    /// at every cycle, and membership is exactly the position coin.
    #[test]
    fn valid_plans_realise_deterministically(
        kind in 0usize..4,
        fraction in 0.0f64..1.0,
        value in -1e6f64..1e6,
        secondary in -1e3f64..1e3,
        period in 1usize..20,
        instances in 1usize..6,
        start_cycle in 0usize..50,
        window in 0usize..50,
        seed in 0u64..u64::MAX,
    ) {
        let plan = AdversaryPlan {
            collusion_fraction: fraction,
            strategy: assemble_strategy(kind, value, secondary, period, instances),
            start_cycle,
            // window 0 means an open-ended attack; otherwise non-empty.
            stop_cycle: (window > 0).then(|| start_cycle + window),
        };
        prop_assert!(plan.validate().is_ok(), "generator produced an invalid plan: {plan:?}");
        let ids: Vec<NodeId> = (0..128).map(NodeId::new).collect();
        let first = Adversary::new(plan, seed, &ids);
        let second = Adversary::new(plan, seed, &ids);
        prop_assert_eq!(first.colluders(), second.colluders());
        for cycle in 0..80 {
            prop_assert_eq!(first.lie_at(cycle), second.lie_at(cycle));
            prop_assert_eq!(first.captured_state_at(cycle), second.captured_state_at(cycle));
            if let Some(lie) = first.lie_at(cycle) {
                prop_assert!(lie.is_finite(), "a valid plan asserts only finite lies");
            }
        }
        for (position, &id) in ids.iter().enumerate() {
            prop_assert_eq!(first.is_colluder(id), plan.colludes_at(seed, position));
        }
    }

    /// Colluder membership is monotone in the collusion fraction: the
    /// threshold coins are nested, so the set realised at a lower fraction
    /// is a subset of the set realised at any higher fraction (same seed).
    #[test]
    fn colluder_sets_are_nested_across_fractions(
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let lie = AttackStrategy::FixedLie { value: 1.0 };
        let low = AdversaryPlan::with_strategy(lo, lie);
        let high = AdversaryPlan::with_strategy(hi, lie);
        for position in 0..512usize {
            if low.colludes_at(seed, position) {
                prop_assert!(
                    high.colludes_at(seed, position),
                    "position {position} colludes at fraction {lo} but not at {hi}"
                );
            }
        }
    }
}

/// The fraction endpoints are exact, not sampled: 0.0 realises no colluder
/// and 1.0 realises every position (the threshold saturates at `u64::MAX`).
#[test]
fn fraction_endpoints_realise_nobody_and_everybody() {
    let lie = AttackStrategy::FixedLie { value: 1.0 };
    let nobody = AdversaryPlan::with_strategy(0.0, lie);
    let everybody = AdversaryPlan::with_strategy(1.0, lie);
    for seed in [0u64, 41, u64::MAX] {
        for position in 0..512usize {
            assert!(!nobody.colludes_at(seed, position));
            assert!(everybody.colludes_at(seed, position));
        }
    }
}

fn averaging_base(cycles_per_epoch: u32, loss: f64) -> SimulationConfig {
    let protocol = ProtocolConfig::builder()
        .cycles_per_epoch(cycles_per_epoch)
        .build()
        .unwrap();
    SimulationConfig {
        conditions: NetworkConditions::with_message_loss(loss),
        ..SimulationConfig::averaging(protocol)
    }
}

/// An adversarial run of the reference engine is a pure function of its
/// seed: repeated runs agree summary-for-summary and bit-for-bit.
#[test]
fn adversarial_runs_are_deterministic_across_repeated_runs() {
    let values: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
    let plan = AdversaryPlan::with_strategy(
        0.1,
        AttackStrategy::Oscillate {
            center: 5.0,
            amplitude: 40.0,
            period: 3,
        },
    );
    let run = || {
        let mut sim = GossipSimulation::with_adversary(
            averaging_base(10, 0.05),
            &values,
            613,
            FaultPlan::none(),
            plan,
        )
        .unwrap();
        let summaries = sim.run(15);
        let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
        (summaries, bits)
    };
    let (summaries, bits) = run();
    assert!(!bits.is_empty());
    assert_eq!(run(), (summaries, bits), "second identical run diverged");
}

/// Worker counts are an execution resource, not a semantic one — under an
/// active adversary too: the sequential and threaded executors produce
/// bit-identical summaries and node estimates at a fixed shard count.
#[test]
fn adversarial_runs_are_worker_count_invariant() {
    let values: Vec<f64> = (0..300).map(|i| i as f64).collect();
    let plan = AdversaryPlan::with_strategy(
        0.15,
        AttackStrategy::Drift {
            start: 10.0,
            rate: 4.0,
        },
    );
    let run = |workers: usize| {
        let config = ShardedConfig {
            base: averaging_base(10, 0.05),
            shards: 4,
            workers: Some(workers),
        };
        let mut sim =
            ShardedSimulation::with_adversary(config, &values, 41, FaultPlan::none(), plan)
                .unwrap();
        let summaries = sim.run(12);
        let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
        (summaries, bits)
    };
    let reference = run(1);
    assert!(!reference.1.is_empty());
    for workers in [2, 4, 8] {
        assert_eq!(
            run(workers),
            reference,
            "{workers}-worker adversarial run differs from the sequential executor"
        );
    }
}

/// In the loss-free regime the sharded engine's node values are invariant
/// across shard counts, and the colluding set — keyed on initial-directory
/// positions, not layout-dependent identifiers — realises the same size
/// everywhere.
#[test]
fn adversarial_runs_are_shard_count_invariant_without_loss() {
    let values: Vec<f64> = (0..240).map(|i| (i % 29) as f64).collect();
    let plan = AdversaryPlan::with_strategy(0.2, AttackStrategy::FixedLie { value: 75.0 });
    let run = |shards: usize| {
        let config = ShardedConfig {
            base: averaging_base(10, 0.0),
            shards,
            workers: None,
        };
        let mut sim =
            ShardedSimulation::with_adversary(config, &values, 99, FaultPlan::none(), plan)
                .unwrap();
        let colluders = sim.adversary().colluders().len();
        let last = sim.run(15).pop().unwrap();
        let bits: Vec<u64> = sim.estimates().iter().map(|v| v.to_bits()).collect();
        (colluders, last.estimate_mean, bits)
    };
    let (colluders, mean, bits) = run(1);
    assert!(
        colluders > 0,
        "fraction 0.2 of 240 should realise colluders"
    );
    for shards in [2, 4, 8] {
        let (c, m, b) = run(shards);
        assert_eq!(c, colluders, "{shards}-shard colluding set size differs");
        // Node values are the shard-count-invariant contract; coordinator
        // summaries aggregate in shard order, so the mean only agrees up to
        // floating-point summation order.
        assert_eq!(b, bits, "{shards}-shard node estimates differ bit-for-bit");
        assert!(
            (m - mean).abs() <= 1e-9 * mean.abs(),
            "{shards}-shard summary mean {m} vs {mean}"
        );
    }
}
