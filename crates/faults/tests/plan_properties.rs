//! Property tests for the fault-schedule DSL: any *valid* [`FaultPlan`] is
//! **deterministic** (two injectors over the same plan and seed answer every
//! query identically, in any order) and **monotone** (persistent link
//! failures never heal and never grow; partitions are active exactly inside
//! their half-open windows; crash bursts fire exactly at their cycle; the
//! effective loss rate stays a probability at every cycle).

use gossip_faults::{
    CrashBurst, FaultInjector, FaultPlan, LossRamp, PartitionWindow, PlanInjector, ValueInjection,
};
use overlay_topology::NodeId;
use proptest::prelude::*;

/// Builds a valid plan from raw sampled tuples (probabilities already in
/// range, windows made non-empty and ramps well-ordered by construction).
#[allow(clippy::type_complexity)]
fn plan_from(
    link_failure: f64,
    base_loss: f64,
    partitions: Vec<(usize, usize, f64)>,
    crashes: Vec<(usize, f64)>,
    ramps: Vec<(usize, usize, f64, f64)>,
    injections: Vec<(usize, f64, f64)>,
) -> FaultPlan {
    FaultPlan {
        link_failure,
        base_loss,
        partitions: partitions
            .into_iter()
            .map(|(split, duration, fraction)| PartitionWindow {
                split_at_cycle: split,
                heal_at_cycle: split + 1 + duration,
                minority_fraction: fraction,
            })
            .collect(),
        crashes: crashes
            .into_iter()
            .map(|(cycle, fraction)| CrashBurst { cycle, fraction })
            .collect(),
        loss_ramps: ramps
            .into_iter()
            .map(|(start, span, a, b)| LossRamp {
                start_cycle: start,
                end_cycle: start + span,
                start_loss: a,
                end_loss: b,
            })
            .collect(),
        injections: injections
            .into_iter()
            .map(|(cycle, fraction, value)| ValueInjection {
                cycle,
                fraction,
                value,
            })
            .collect(),
    }
}

fn prob() -> std::ops::Range<f64> {
    0.0..1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every plan built by the generator passes validation, and its loss
    /// schedule is a probability at every cycle.
    #[test]
    fn generated_plans_are_valid_with_bounded_loss(
        link in prob(),
        base in prob(),
        partitions in proptest::collection::vec((0usize..60, 0usize..40, 0.0f64..1.0), 0..4),
        crashes in proptest::collection::vec((0usize..80, 0.0f64..1.0), 0..4),
        ramps in proptest::collection::vec((0usize..60, 0usize..40, 0.0f64..1.0, 0.0f64..1.0), 0..4),
    ) {
        let plan = plan_from(link, base, partitions, crashes, ramps, Vec::new());
        prop_assert!(plan.validate().is_ok());
        for cycle in 0..120 {
            let loss = plan.loss_at(cycle);
            prop_assert!((0.0..=1.0).contains(&loss), "cycle {cycle}: loss {loss}");
        }
    }

    /// Determinism: two injectors over the same (plan, seed) agree on every
    /// query — loss per cycle, link verdicts, crash counts and corruption
    /// victim lists — even when one of them is queried twice as often.
    #[test]
    fn same_plan_and_seed_answer_identically(
        link in prob(),
        base in prob(),
        partitions in proptest::collection::vec((0usize..30, 0usize..30, 0.0f64..1.0), 0..3),
        crashes in proptest::collection::vec((0usize..40, 0.0f64..1.0), 0..3),
        injections in proptest::collection::vec((0usize..40, 0.0f64..0.3, -1e6f64..1e6), 0..3),
        seed in 0u64..1_000,
    ) {
        let plan = plan_from(link, base, partitions, crashes, Vec::new(), injections);
        prop_assert!(plan.validate().is_ok());
        let mut a = PlanInjector::new(plan.clone(), seed);
        let mut b = PlanInjector::new(plan, seed);
        for cycle in 0..40 {
            a.begin_cycle(cycle);
            b.begin_cycle(cycle);
            prop_assert_eq!(a.loss_probability().to_bits(), b.loss_probability().to_bits());
            prop_assert_eq!(a.crash_count(500), b.crash_count(500));
            prop_assert_eq!(a.corruptions(500), b.corruptions(500));
            for i in 0..12u32 {
                let (x, y) = (NodeId::from_u32(i), NodeId::from_u32(i * 7 + 1));
                // Query `a` twice: link verdicts are pure, so extra queries
                // must not perturb anything.
                prop_assert_eq!(a.link_blocked(x, y), a.link_blocked(x, y));
                prop_assert_eq!(a.link_blocked(x, y), b.link_blocked(x, y));
                prop_assert_eq!(a.link_blocked(y, x), b.link_blocked(x, y), "symmetry");
            }
        }
    }

    /// Monotonicity: the dead-link set is constant over the whole run (no
    /// healing, no new failures); partitions block cross-side links exactly
    /// inside `[split, heal)`; crash bursts fire exactly at their cycle and
    /// never exceed the live count.
    #[test]
    fn fault_activation_is_monotone_in_time(
        link in prob(),
        split in 0usize..30,
        duration in 0usize..30,
        fraction in prob(),
        crash_cycle in 0usize..40,
        crash_fraction in prob(),
        seed in 0u64..1_000,
    ) {
        let plan = plan_from(
            link,
            0.0,
            vec![(split, duration, fraction)],
            vec![(crash_cycle, crash_fraction)],
            Vec::new(),
            Vec::new(),
        );
        prop_assert!(plan.validate().is_ok());
        let heal = split + 1 + duration;
        let mut injector = PlanInjector::new(plan, seed);

        // Freeze the persistent dead-link set at cycle 0 (outside any
        // partition effect by construction below).
        let pairs: Vec<(NodeId, NodeId)> = (0..10u32)
            .flat_map(|i| (i + 1..10).map(move |j| (NodeId::from_u32(i), NodeId::from_u32(j))))
            .collect();
        let dead_at_start: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| injector.link_dead(a, b))
            .collect();

        for cycle in 0..80 {
            injector.begin_cycle(cycle);
            let live = 1_000;
            let crashed = injector.crash_count(live);
            if cycle == crash_cycle {
                prop_assert!(crashed <= live);
                prop_assert_eq!(crashed, (crash_fraction * live as f64) as usize);
            } else {
                prop_assert_eq!(crashed, 0, "burst fired at cycle {}", cycle);
            }
            for (&(a, b), &dead) in pairs.iter().zip(&dead_at_start) {
                // The persistent component never changes…
                prop_assert_eq!(injector.link_dead(a, b), dead);
                // …and outside the partition window the verdict *is* the
                // persistent component.
                if !(split..heal).contains(&cycle) {
                    prop_assert_eq!(injector.link_blocked(a, b), dead);
                }
            }
            if (split..heal).contains(&cycle) {
                for &(a, b) in &pairs {
                    let split_sides =
                        injector.partition_side(0, a) != injector.partition_side(0, b);
                    prop_assert_eq!(
                        injector.link_blocked(a, b),
                        dead_at_start[pairs.iter().position(|&p| p == (a, b)).unwrap()]
                            || split_sides
                    );
                }
            }
        }
    }
}
