//! The engine-facing side of the fault lab: [`FaultInjector`] is the
//! object-safe interface every simulation engine consults at its exchange
//! boundary, and [`PlanInjector`] is its deterministic realisation of a
//! [`FaultPlan`].
//!
//! The contract is built around the same determinism discipline as the
//! peer-sampling layer:
//!
//! * **link and partition decisions are pure** — [`FaultInjector::link_blocked`]
//!   is a function of (plan, seed, endpoints, cycle) with no internal state,
//!   so the sharded engine may evaluate it in any executor (sequential or
//!   threaded schedule construction) and get identical answers in any query
//!   order;
//! * **adversarial randomness is stream-isolated** — victim picks for value
//!   injection come from the injector's own seeded RNG, never the engine's
//!   schedule streams, so a plan with no injections consumes *zero* engine
//!   randomness and an empty plan leaves trajectories bit-identical to a
//!   fault-free engine (pinned by `tests/determinism.rs`);
//! * **crash victims stay with the engine** — the injector only decides *how
//!   many* nodes crash; the engine removes them through its existing churn
//!   path (`remove_random_nodes`), reusing the arena free lists and sampler
//!   notifications.

use crate::plan::FaultPlan;
use overlay_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The fault-injection interface the simulation engines drive.
///
/// Call order per engine cycle: exactly one [`FaultInjector::begin_cycle`],
/// then at most one [`FaultInjector::crash_count`] and one
/// [`FaultInjector::corruptions`] (both before any exchange), then any
/// number of [`FaultInjector::link_blocked`] /
/// [`FaultInjector::loss_probability`] queries during the exchange phase.
pub trait FaultInjector: fmt::Debug {
    /// Enters cycle `cycle`: caches the cycle-dependent fault state (loss
    /// rate, active partitions). Must be called before any other query of
    /// that cycle.
    fn begin_cycle(&mut self, cycle: usize);

    /// The message-loss probability in effect for the current cycle, in
    /// `[0, 1]`. Engines draw the actual losses from their own (or their
    /// per-exchange) RNG streams, exactly as they always did for
    /// `NetworkConditions`.
    fn loss_probability(&self) -> f64;

    /// Whether the link between `a` and `b` is unusable in the current cycle
    /// (persistent per-link failure or an active partition separating the
    /// endpoints). Symmetric and pure: no internal state changes, identical
    /// answers in any query order.
    fn link_blocked(&self, a: NodeId, b: NodeId) -> bool;

    /// Whether [`FaultInjector::link_blocked`] can answer `true` at all in
    /// the current cycle. A cheap once-per-cycle gate: engines driving
    /// millions of peer picks per cycle skip the per-pick `link_blocked`
    /// query entirely when this is `false`. The default conservatively
    /// returns `true` (always consult `link_blocked`).
    fn links_can_block(&self) -> bool {
        true
    }

    /// Number of nodes to crash at the start of the current cycle, given the
    /// current live count. The engine removes that many uniformly random
    /// live nodes through its churn path.
    fn crash_count(&mut self, live: usize) -> usize;

    /// Adversarial value injections to apply at the start of the current
    /// cycle: `(directory position, injected value)` pairs over the engine's
    /// dense live directory of `live` nodes. Victim picks are drawn from the
    /// injector's own stream; positions may repeat (re-corrupting a victim
    /// is idempotent).
    fn corruptions(&mut self, live: usize) -> Vec<(usize, f64)>;
}

/// SplitMix64 finaliser — the same mixing the engines' `SeedSequence` uses,
/// applied to (seed, entity) pairs so every link and partition-side decision
/// is an independent, reproducible coin. Shared with the stateful adversary
/// lab (`crate::adversary`), whose colluder coins follow the same discipline.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a probability to a threshold on the full `u64` range: an event with
/// hash `h` fires iff `h < threshold(p)`. Monotone in `p`, which is what
/// makes threshold coins *nested*: every event firing at `p₁` also fires at
/// any `p₂ ≥ p₁` under the same seed.
pub(crate) fn probability_threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p <= 0.0 {
        0
    } else {
        (p * (u64::MAX as f64)) as u64
    }
}

const LINK_SALT: u64 = 0x6c69_6e6b_2d66_6c74; // "link-flt"
const PARTITION_SALT: u64 = 0x7061_7274_2d66_6c74; // "part-flt"

/// The deterministic realisation of a [`FaultPlan`]: every decision is a
/// pure function of `(plan, seed, cycle, entity)` except value-injection
/// victim picks, which consume the injector's private RNG stream.
#[derive(Debug)]
pub struct PlanInjector {
    plan: FaultPlan,
    seed: u64,
    cycle: usize,
    /// Loss probability cached for the current cycle.
    loss: f64,
    /// Indices of the partition windows active in the current cycle.
    active_partitions: Vec<usize>,
    /// `link_failure > 0` — precomputed so the per-exchange query is two
    /// comparisons on a fault-free run.
    has_link_faults: bool,
    link_threshold: u64,
    rng: StdRng,
}

impl PlanInjector {
    /// Creates the injector for `plan`, deriving every internal decision
    /// from `seed` (engines pass a labelled sub-seed of the run's master
    /// seed, so fault randomness never interferes with schedule draws).
    ///
    /// The plan is assumed valid; engines validate it at construction via
    /// [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let has_link_faults = plan.link_failure > 0.0;
        let link_threshold = probability_threshold(plan.link_failure);
        let mut injector = PlanInjector {
            plan,
            seed,
            cycle: 0,
            loss: 0.0,
            active_partitions: Vec::new(),
            has_link_faults,
            link_threshold,
            rng: StdRng::seed_from_u64(mix(seed ^ 0x696e_6a65_6374_696f)), // "injectio"
        };
        injector.refresh_cycle_state();
        injector
    }

    /// The plan this injector realises.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The current cycle (as last set by [`FaultInjector::begin_cycle`]).
    pub fn cycle(&self) -> usize {
        self.cycle
    }

    /// Whether `id` sits on the minority side of partition window
    /// `window_idx` — a per-(window, node) coin with the window's
    /// `minority_fraction`, constant for the whole run so a node never
    /// switches sides while a window is active.
    pub fn partition_side(&self, window_idx: usize, id: NodeId) -> bool {
        let window = &self.plan.partitions[window_idx];
        let h =
            mix(self.seed ^ PARTITION_SALT ^ ((window_idx as u64) << 32) ^ u64::from(id.as_u32()));
        h < probability_threshold(window.minority_fraction)
    }

    /// Whether the (unordered) link between `a` and `b` is persistently
    /// dead — one coin per link, constant over the whole run (the *monotone*
    /// property: dead links never heal and live links never die).
    pub fn link_dead(&self, a: NodeId, b: NodeId) -> bool {
        if !self.has_link_faults {
            return false;
        }
        let (lo, hi) = if a.as_u32() <= b.as_u32() {
            (a.as_u32(), b.as_u32())
        } else {
            (b.as_u32(), a.as_u32())
        };
        let h = mix(self.seed ^ LINK_SALT ^ ((u64::from(lo) << 32) | u64::from(hi)));
        h < self.link_threshold
    }

    fn refresh_cycle_state(&mut self) {
        self.loss = self.plan.loss_at(self.cycle);
        self.active_partitions.clear();
        for (idx, window) in self.plan.partitions.iter().enumerate() {
            if window.active_at(self.cycle) {
                self.active_partitions.push(idx);
            }
        }
    }
}

impl FaultInjector for PlanInjector {
    fn begin_cycle(&mut self, cycle: usize) {
        self.cycle = cycle;
        self.refresh_cycle_state();
    }

    fn loss_probability(&self) -> f64 {
        self.loss
    }

    fn link_blocked(&self, a: NodeId, b: NodeId) -> bool {
        if self.link_dead(a, b) {
            return true;
        }
        for &idx in &self.active_partitions {
            if self.partition_side(idx, a) != self.partition_side(idx, b) {
                return true;
            }
        }
        false
    }

    fn links_can_block(&self) -> bool {
        self.has_link_faults || !self.active_partitions.is_empty()
    }

    fn crash_count(&mut self, live: usize) -> usize {
        let mut remaining = live;
        let mut total = 0;
        // Bursts sharing a cycle compose sequentially: each takes its
        // fraction of the nodes the previous bursts left alive.
        for fraction in self.plan.crash_fractions_at(self.cycle) {
            let victims = (fraction * remaining as f64) as usize;
            total += victims;
            remaining = remaining.saturating_sub(victims);
        }
        total
    }

    fn corruptions(&mut self, live: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        if live == 0 {
            return out;
        }
        // Iterate by index to keep the borrow checker off the RNG; the
        // injection list is tiny (one entry per scheduled attack).
        for i in 0..self.plan.injections.len() {
            let injection = self.plan.injections[i];
            if injection.cycle != self.cycle {
                continue;
            }
            let victims = ((injection.fraction * live as f64) as usize).min(live);
            if victims == 0 {
                continue;
            }
            // Partial Fisher–Yates over the position space: exactly
            // `victims` *distinct* victims, so the corrupted fraction is
            // the configured one (drawing with replacement would fall
            // ~e^-f short). The O(live) scratch is paid only on the rare
            // cycles an injection actually fires.
            let mut positions: Vec<u32> = (0..live as u32).collect();
            for k in 0..victims {
                let j = self.rng.gen_range(k..live);
                positions.swap(k, j);
                out.push((positions[k] as usize, injection.value));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{LossRamp, ValueInjection};

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn empty_plan_injects_nothing_and_consumes_no_stream() {
        let mut injector = PlanInjector::new(FaultPlan::none(), 42);
        for cycle in 0..50 {
            injector.begin_cycle(cycle);
            assert_eq!(injector.loss_probability(), 0.0);
            assert_eq!(injector.crash_count(1_000), 0);
            assert!(injector.corruptions(1_000).is_empty());
            for pair in ids(10).windows(2) {
                assert!(!injector.link_blocked(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn link_failures_are_persistent_symmetric_and_near_the_target_rate() {
        let injector = PlanInjector::new(FaultPlan::with_link_failure(0.2), 7);
        let nodes = ids(200);
        let mut dead = 0usize;
        let mut total = 0usize;
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                total += 1;
                let blocked = injector.link_blocked(a, b);
                assert_eq!(blocked, injector.link_blocked(b, a), "symmetry");
                if blocked {
                    dead += 1;
                }
            }
        }
        let rate = dead as f64 / total as f64;
        assert!((rate - 0.2).abs() < 0.01, "dead-link rate {rate}");

        // Persistence: the same answers at any cycle (monotone — no healing,
        // no new failures).
        let mut later = PlanInjector::new(FaultPlan::with_link_failure(0.2), 7);
        later.begin_cycle(123);
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                assert_eq!(injector.link_blocked(a, b), later.link_blocked(a, b));
            }
        }
    }

    #[test]
    fn different_seeds_draw_different_dead_link_sets() {
        let a = PlanInjector::new(FaultPlan::with_link_failure(0.2), 1);
        let b = PlanInjector::new(FaultPlan::with_link_failure(0.2), 2);
        let nodes = ids(100);
        let disagreements = nodes
            .iter()
            .zip(nodes.iter().skip(1))
            .filter(|&(&x, &y)| a.link_blocked(x, y) != b.link_blocked(x, y))
            .count();
        assert!(disagreements > 0, "seeds must matter");
    }

    #[test]
    fn partitions_block_exactly_the_cross_side_links_while_active() {
        let plan = FaultPlan::with_partition(5, 10, 0.5);
        let mut injector = PlanInjector::new(plan, 11);
        let nodes = ids(100);

        // Inactive before the split…
        injector.begin_cycle(4);
        assert!(nodes.windows(2).all(|p| !injector.link_blocked(p[0], p[1])));

        // …active inside the window: blocked iff sides differ, and both
        // sides are populated at fraction 0.5.
        injector.begin_cycle(5);
        let sides: Vec<bool> = nodes
            .iter()
            .map(|&n| injector.partition_side(0, n))
            .collect();
        let minority = sides.iter().filter(|&&s| s).count();
        assert!((20..=80).contains(&minority), "minority side {minority}");
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate().skip(i + 1) {
                assert_eq!(
                    injector.link_blocked(a, b),
                    sides[i] != sides[j],
                    "{a} vs {b}"
                );
            }
        }

        // …healed at the end of the window.
        injector.begin_cycle(10);
        assert!(nodes.windows(2).all(|p| !injector.link_blocked(p[0], p[1])));
    }

    #[test]
    fn loss_schedule_feeds_the_per_cycle_probability() {
        let plan = FaultPlan {
            base_loss: 0.1,
            loss_ramps: vec![LossRamp {
                start_cycle: 10,
                end_cycle: 20,
                start_loss: 0.1,
                end_loss: 0.5,
            }],
            ..FaultPlan::default()
        };
        let mut injector = PlanInjector::new(plan, 3);
        injector.begin_cycle(0);
        assert_eq!(injector.loss_probability(), 0.1);
        injector.begin_cycle(15);
        assert!((injector.loss_probability() - 0.3).abs() < 1e-12);
        injector.begin_cycle(30);
        assert_eq!(injector.loss_probability(), 0.5);
    }

    #[test]
    fn crash_bursts_fire_once_and_compose_sequentially() {
        let plan = FaultPlan {
            crashes: vec![
                crate::plan::CrashBurst {
                    cycle: 3,
                    fraction: 0.5,
                },
                crate::plan::CrashBurst {
                    cycle: 3,
                    fraction: 0.5,
                },
            ],
            ..FaultPlan::default()
        };
        let mut injector = PlanInjector::new(plan, 5);
        injector.begin_cycle(2);
        assert_eq!(injector.crash_count(100), 0);
        injector.begin_cycle(3);
        // 50 % of 100, then 50 % of the remaining 50.
        assert_eq!(injector.crash_count(100), 75);
        injector.begin_cycle(4);
        assert_eq!(injector.crash_count(25), 0);
    }

    #[test]
    fn corruptions_hit_the_configured_fraction_from_a_private_stream() {
        let plan = FaultPlan {
            injections: vec![ValueInjection {
                cycle: 2,
                fraction: 0.1,
                value: 1e6,
            }],
            ..FaultPlan::default()
        };
        let mut a = PlanInjector::new(plan.clone(), 9);
        let mut b = PlanInjector::new(plan, 9);
        for cycle in 0..5 {
            a.begin_cycle(cycle);
            b.begin_cycle(cycle);
            let hits_a = a.corruptions(1_000);
            let hits_b = b.corruptions(1_000);
            assert_eq!(hits_a, hits_b, "cycle {cycle}: same seed, same victims");
            if cycle == 2 {
                assert_eq!(hits_a.len(), 100);
                assert!(hits_a.iter().all(|&(pos, v)| pos < 1_000 && v == 1e6));
                // Victims are distinct: the corrupted fraction is exactly
                // the configured one, not a with-replacement undershoot.
                let mut positions: Vec<usize> = hits_a.iter().map(|&(pos, _)| pos).collect();
                positions.sort_unstable();
                positions.dedup();
                assert_eq!(positions.len(), 100);
            } else {
                assert!(hits_a.is_empty());
            }
        }
        assert!(PlanInjector::new(FaultPlan::none(), 9)
            .corruptions(0)
            .is_empty());
    }
}
