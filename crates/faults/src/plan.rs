//! The fault-schedule DSL: a declarative, serialisable description of every
//! failure a robustness run injects, evaluated deterministically from one
//! seed.
//!
//! A [`FaultPlan`] composes five independent fault families, all cycle
//! indexed so a schedule reads like the experiment section of the paper:
//!
//! * **persistent link failures** — each (unordered) pair of nodes is dead
//!   for the whole run with probability [`FaultPlan::link_failure`], drawn
//!   once per link from the plan seed (Section 4's "link failure
//!   probability" axis);
//! * **partitions** ([`PartitionWindow`]) — the network splits into two
//!   sides at cycle *k* and heals at cycle *m*; cross-side messages are
//!   blocked while the window is active;
//! * **crash bursts** ([`CrashBurst`]) — a fraction of the live nodes
//!   crashes at the start of a cycle, the correlated-failure event behind
//!   the paper's size-estimation-under-crash figure;
//! * **loss ramps** ([`LossRamp`] over a base rate) — the message-loss
//!   probability changes over time, linearly interpolated inside the ramp
//!   window and holding the end value afterwards;
//! * **adversarial value injection** ([`ValueInjection`]) — a fraction of
//!   nodes has its running estimate overwritten at a cycle, the
//!   malicious-participant model of the fault-containment literature
//!   (Dubois–Masuzawa–Tixeuil), one step beyond the paper's benign faults.
//!
//! The empty plan ([`FaultPlan::default`]) injects nothing and is the
//! engines' default; [`FaultPlan::from_conditions`] absorbs the legacy
//! [`NetworkConditions`] model (constant loss, at most one crash) so the two
//! configuration surfaces cannot drift apart.

use crate::conditions::NetworkConditions;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rejected [`FaultPlan`] parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability or fraction is outside `[0, 1]`, NaN or infinite.
    InvalidProbability {
        /// Which parameter was rejected (e.g. `"link_failure"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A partition window heals no later than it splits.
    EmptyPartitionWindow {
        /// The window's split cycle.
        split_at_cycle: usize,
        /// The window's heal cycle.
        heal_at_cycle: usize,
    },
    /// A loss ramp ends before it starts.
    ReversedLossRamp {
        /// The ramp's start cycle.
        start_cycle: usize,
        /// The ramp's end cycle.
        end_cycle: usize,
    },
    /// An injected value is NaN or infinite — it would poison every estimate
    /// it is averaged into, which is a different experiment than adversarial
    /// *value* injection.
    NonFiniteInjectedValue {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultPlanError::InvalidProbability { parameter, value } => {
                write!(f, "{parameter} {value} must be a probability in [0, 1]")
            }
            FaultPlanError::EmptyPartitionWindow {
                split_at_cycle,
                heal_at_cycle,
            } => write!(
                f,
                "partition window must heal after it splits (split at {split_at_cycle}, \
                 heal at {heal_at_cycle})"
            ),
            FaultPlanError::ReversedLossRamp {
                start_cycle,
                end_cycle,
            } => write!(
                f,
                "loss ramp must end at or after its start (start {start_cycle}, end {end_cycle})"
            ),
            FaultPlanError::NonFiniteInjectedValue { value } => {
                write!(f, "injected value {value} must be finite")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn check_probability(parameter: &'static str, value: f64) -> Result<(), FaultPlanError> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(FaultPlanError::InvalidProbability { parameter, value });
    }
    Ok(())
}

/// A network partition: the node set splits into two sides over
/// `[split_at_cycle, heal_at_cycle)` and cross-side communication is blocked.
///
/// Side membership is drawn per node from the plan seed (each node lands on
/// the minority side with probability `minority_fraction`), so a window is a
/// *random* cut of the expected size — the model of a backbone failure
/// isolating a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// First cycle the partition is active.
    pub split_at_cycle: usize,
    /// First cycle after the partition heals (exclusive end of the window).
    pub heal_at_cycle: usize,
    /// Expected fraction of nodes isolated on the minority side.
    pub minority_fraction: f64,
}

impl PartitionWindow {
    /// Whether the partition is active at `cycle`.
    pub fn active_at(&self, cycle: usize) -> bool {
        (self.split_at_cycle..self.heal_at_cycle).contains(&cycle)
    }
}

/// A correlated crash event: `fraction` of the live nodes crashes at the
/// start of `cycle` (before any exchange of that cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashBurst {
    /// The cycle at whose start the burst fires.
    pub cycle: usize,
    /// Fraction of the then-live nodes that crash.
    pub fraction: f64,
}

/// A linear message-loss ramp: the loss probability moves from `start_loss`
/// at `start_cycle` to `end_loss` at `end_cycle` and *holds* `end_loss`
/// afterwards (a lasting regime change, e.g. a network degrading under
/// load). Before `start_cycle` the ramp contributes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossRamp {
    /// First cycle of the ramp.
    pub start_cycle: usize,
    /// Cycle at which `end_loss` is reached.
    pub end_cycle: usize,
    /// Loss probability at the start of the ramp.
    pub start_loss: f64,
    /// Loss probability from `end_cycle` on.
    pub end_loss: f64,
}

impl LossRamp {
    /// The ramp's contribution at `cycle` (0 before the ramp starts).
    pub fn loss_at(&self, cycle: usize) -> f64 {
        if cycle < self.start_cycle {
            0.0
        } else if cycle >= self.end_cycle {
            self.end_loss
        } else {
            let span = (self.end_cycle - self.start_cycle) as f64;
            let progress = (cycle - self.start_cycle) as f64 / span;
            self.start_loss + (self.end_loss - self.start_loss) * progress
        }
    }
}

/// An adversarial value injection: at the start of `cycle`, `fraction` of
/// the live nodes has its running default-instance estimate overwritten with
/// `value` (victims drawn from the plan's own RNG stream). This corrupts the
/// *converging state*, not the local attribute — the transient-adversary
/// model: the protocol's subsequent cycles dilute the corruption, and the
/// next epoch restart flushes it entirely.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueInjection {
    /// The cycle at whose start the injection fires.
    pub cycle: usize,
    /// Fraction of the then-live nodes corrupted.
    pub fraction: f64,
    /// The value written into each victim's running estimate.
    pub value: f64,
}

/// A deterministic, seeded fault schedule — see the module docs for the five
/// fault families. Construct one with struct-update syntax over
/// [`FaultPlan::default`] (the empty plan) and validate with
/// [`FaultPlan::validate`]; the engines validate at construction.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any given (unordered) node pair's link is dead for
    /// the entire run.
    pub link_failure: f64,
    /// Partition windows. Overlapping windows compose: a message is blocked
    /// while *any* active window separates its endpoints.
    pub partitions: Vec<PartitionWindow>,
    /// Correlated crash bursts. Several bursts may share a cycle; their
    /// victim counts add up.
    pub crashes: Vec<CrashBurst>,
    /// Base message-loss probability, in effect from cycle 0.
    pub base_loss: f64,
    /// Loss ramps layered over the base rate. The effective loss at a cycle
    /// is the maximum of the base rate and every ramp's contribution,
    /// saturated at 1.
    pub loss_ramps: Vec<LossRamp>,
    /// Adversarial value injections.
    pub injections: Vec<ValueInjection>,
}

impl FaultPlan {
    /// The empty plan: no faults of any kind. Engines driven with it behave
    /// bit-identically to engines with no fault lab at all — the determinism
    /// suite pins this.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with only persistent per-link failures.
    pub fn with_link_failure(probability: f64) -> Self {
        FaultPlan {
            link_failure: probability,
            ..FaultPlan::default()
        }
    }

    /// A plan with only a constant message-loss rate.
    pub fn with_message_loss(loss: f64) -> Self {
        FaultPlan {
            base_loss: loss,
            ..FaultPlan::default()
        }
    }

    /// A plan with a single partition window.
    pub fn with_partition(split_at_cycle: usize, heal_at_cycle: usize, fraction: f64) -> Self {
        FaultPlan {
            partitions: vec![PartitionWindow {
                split_at_cycle,
                heal_at_cycle,
                minority_fraction: fraction,
            }],
            ..FaultPlan::default()
        }
    }

    /// A plan with a single crash burst.
    pub fn with_crash_burst(cycle: usize, fraction: f64) -> Self {
        FaultPlan {
            crashes: vec![CrashBurst { cycle, fraction }],
            ..FaultPlan::default()
        }
    }

    /// Absorbs the legacy [`NetworkConditions`] model: its constant message
    /// loss becomes the base loss rate and its one-shot crash (if any)
    /// becomes a single [`CrashBurst`]. This is how the engines run every
    /// pre-fault-lab configuration through the same injector path.
    pub fn from_conditions(conditions: NetworkConditions) -> Self {
        FaultPlan {
            base_loss: conditions.message_loss,
            crashes: conditions
                .crash_at_cycle
                .map(|cycle| CrashBurst {
                    cycle,
                    fraction: conditions.crash_fraction,
                })
                .into_iter()
                .collect(),
            ..FaultPlan::default()
        }
    }

    /// Layers the legacy conditions *under* this plan: the constant loss
    /// floors the plan's base rate and a one-shot crash joins the burst
    /// list. This is what the engines do at construction, so a run
    /// configured through `NetworkConditions`, a `FaultPlan`, or both always
    /// executes through one injector path.
    pub fn absorb_conditions(mut self, conditions: NetworkConditions) -> Self {
        self.base_loss = self.base_loss.max(conditions.message_loss);
        if let Some(cycle) = conditions.crash_at_cycle {
            self.crashes.push(CrashBurst {
                cycle,
                fraction: conditions.crash_fraction,
            });
        }
        self
    }

    /// Whether the plan injects nothing (every engine runs its zero-overhead
    /// path for such plans).
    pub fn is_empty(&self) -> bool {
        self.link_failure == 0.0
            && self.base_loss == 0.0
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.loss_ramps.is_empty()
            && self.injections.is_empty()
    }

    /// Validates every parameter of the schedule.
    ///
    /// # Errors
    ///
    /// The first [`FaultPlanError`] found, in declaration order.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        check_probability("link_failure", self.link_failure)?;
        check_probability("base_loss", self.base_loss)?;
        for window in &self.partitions {
            check_probability("minority_fraction", window.minority_fraction)?;
            if window.heal_at_cycle <= window.split_at_cycle {
                return Err(FaultPlanError::EmptyPartitionWindow {
                    split_at_cycle: window.split_at_cycle,
                    heal_at_cycle: window.heal_at_cycle,
                });
            }
        }
        for burst in &self.crashes {
            check_probability("crash fraction", burst.fraction)?;
        }
        for ramp in &self.loss_ramps {
            check_probability("ramp start_loss", ramp.start_loss)?;
            check_probability("ramp end_loss", ramp.end_loss)?;
            if ramp.end_cycle < ramp.start_cycle {
                return Err(FaultPlanError::ReversedLossRamp {
                    start_cycle: ramp.start_cycle,
                    end_cycle: ramp.end_cycle,
                });
            }
        }
        for injection in &self.injections {
            check_probability("injection fraction", injection.fraction)?;
            if !injection.value.is_finite() {
                return Err(FaultPlanError::NonFiniteInjectedValue {
                    value: injection.value,
                });
            }
        }
        Ok(())
    }

    /// The effective message-loss probability at `cycle`: the maximum of the
    /// base rate and every ramp's contribution, saturated at 1. Pure —
    /// identical answers for identical arguments, which is what makes loss
    /// draws reproducible across engines and executors.
    pub fn loss_at(&self, cycle: usize) -> f64 {
        let mut loss = self.base_loss;
        for ramp in &self.loss_ramps {
            loss = loss.max(ramp.loss_at(cycle));
        }
        loss.min(1.0)
    }

    /// Total fraction-sum of crash bursts firing at `cycle` (several bursts
    /// may share a cycle; the injector applies each in order).
    pub fn crash_fractions_at(&self, cycle: usize) -> impl Iterator<Item = f64> + '_ {
        self.crashes
            .iter()
            .filter(move |burst| burst.cycle == cycle)
            .map(|burst| burst.fraction)
    }

    /// The value injections firing at `cycle`.
    pub fn injections_at(&self, cycle: usize) -> impl Iterator<Item = &ValueInjection> + '_ {
        self.injections
            .iter()
            .filter(move |injection| injection.cycle == cycle)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no-faults");
        }
        let mut parts = Vec::new();
        if self.link_failure > 0.0 {
            parts.push(format!("links={:.3}", self.link_failure));
        }
        if self.base_loss > 0.0 {
            parts.push(format!("loss={:.3}", self.base_loss));
        }
        if !self.loss_ramps.is_empty() {
            parts.push(format!("ramps={}", self.loss_ramps.len()));
        }
        if !self.partitions.is_empty() {
            parts.push(format!("partitions={}", self.partitions.len()));
        }
        if !self.crashes.is_empty() {
            parts.push(format!("crashes={}", self.crashes.len()));
        }
        if !self.injections.is_empty() {
            parts.push(format!("injections={}", self.injections.len()));
        }
        write!(f, "faults[{}]", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.loss_at(0), 0.0);
        assert_eq!(plan.loss_at(10_000), 0.0);
        assert_eq!(plan.to_string(), "no-faults");
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn conditions_absorb_into_the_trivial_plan() {
        let plan = FaultPlan::from_conditions(NetworkConditions::with_message_loss(0.2));
        assert_eq!(plan.base_loss, 0.2);
        assert!(plan.crashes.is_empty());
        assert_eq!(plan.loss_at(0), 0.2);
        assert_eq!(plan.loss_at(999), 0.2);

        let plan = FaultPlan::from_conditions(NetworkConditions::with_crash(0.3, 7));
        assert_eq!(plan.base_loss, 0.0);
        assert_eq!(
            plan.crashes,
            vec![CrashBurst {
                cycle: 7,
                fraction: 0.3
            }]
        );
        assert_eq!(plan.crash_fractions_at(7).collect::<Vec<_>>(), vec![0.3]);
        assert_eq!(plan.crash_fractions_at(6).count(), 0);

        assert!(FaultPlan::from_conditions(NetworkConditions::reliable()).is_empty());

        // absorb_conditions layers the legacy model under an explicit plan:
        // constant loss floors the base rate, the crash joins the bursts.
        let merged = FaultPlan::with_link_failure(0.1)
            .absorb_conditions(NetworkConditions::with_message_loss(0.2));
        assert_eq!(merged.link_failure, 0.1);
        assert_eq!(merged.base_loss, 0.2);
        let merged = FaultPlan::with_message_loss(0.3)
            .absorb_conditions(NetworkConditions::with_crash(0.5, 2));
        assert_eq!(merged.base_loss, 0.3);
        assert_eq!(merged.crashes.len(), 1);
    }

    #[test]
    fn loss_ramps_interpolate_and_hold_their_end_value() {
        let ramp = LossRamp {
            start_cycle: 10,
            end_cycle: 20,
            start_loss: 0.0,
            end_loss: 0.4,
        };
        assert_eq!(ramp.loss_at(0), 0.0);
        assert_eq!(ramp.loss_at(9), 0.0);
        assert_eq!(ramp.loss_at(10), 0.0);
        assert!((ramp.loss_at(15) - 0.2).abs() < 1e-12);
        assert_eq!(ramp.loss_at(20), 0.4);
        assert_eq!(ramp.loss_at(1_000), 0.4);

        let plan = FaultPlan {
            base_loss: 0.05,
            loss_ramps: vec![ramp],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_ok());
        // The base rate floors the ramp; the ramp dominates once it crosses.
        assert_eq!(plan.loss_at(0), 0.05);
        assert!((plan.loss_at(15) - 0.2).abs() < 1e-12);
        assert_eq!(plan.loss_at(25), 0.4);
    }

    #[test]
    fn effective_loss_saturates_at_one() {
        let plan = FaultPlan {
            base_loss: 1.0,
            loss_ramps: vec![LossRamp {
                start_cycle: 0,
                end_cycle: 1,
                start_loss: 1.0,
                end_loss: 1.0,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_ok());
        assert_eq!(plan.loss_at(5), 1.0);
    }

    #[test]
    fn partition_windows_are_half_open() {
        let window = PartitionWindow {
            split_at_cycle: 5,
            heal_at_cycle: 9,
            minority_fraction: 0.5,
        };
        assert!(!window.active_at(4));
        assert!(window.active_at(5));
        assert!(window.active_at(8));
        assert!(!window.active_at(9));
    }

    #[test]
    fn validation_rejects_each_malformed_parameter() {
        assert!(matches!(
            FaultPlan::with_link_failure(1.5).validate(),
            Err(FaultPlanError::InvalidProbability {
                parameter: "link_failure",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::with_message_loss(f64::NAN).validate(),
            Err(FaultPlanError::InvalidProbability {
                parameter: "base_loss",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::with_partition(10, 10, 0.5).validate(),
            Err(FaultPlanError::EmptyPartitionWindow { .. })
        ));
        assert!(matches!(
            FaultPlan::with_partition(3, 9, -0.1).validate(),
            Err(FaultPlanError::InvalidProbability { .. })
        ));
        assert!(matches!(
            FaultPlan::with_crash_burst(0, 2.0).validate(),
            Err(FaultPlanError::InvalidProbability { .. })
        ));
        let reversed = FaultPlan {
            loss_ramps: vec![LossRamp {
                start_cycle: 10,
                end_cycle: 5,
                start_loss: 0.0,
                end_loss: 0.5,
            }],
            ..FaultPlan::default()
        };
        assert!(matches!(
            reversed.validate(),
            Err(FaultPlanError::ReversedLossRamp { .. })
        ));
        let poisoned = FaultPlan {
            injections: vec![ValueInjection {
                cycle: 0,
                fraction: 0.1,
                value: f64::NAN,
            }],
            ..FaultPlan::default()
        };
        assert!(matches!(
            poisoned.validate(),
            Err(FaultPlanError::NonFiniteInjectedValue { .. })
        ));
        for error in [
            FaultPlanError::InvalidProbability {
                parameter: "link_failure",
                value: 2.0,
            },
            FaultPlanError::EmptyPartitionWindow {
                split_at_cycle: 5,
                heal_at_cycle: 5,
            },
            FaultPlanError::ReversedLossRamp {
                start_cycle: 9,
                end_cycle: 3,
            },
            FaultPlanError::NonFiniteInjectedValue { value: f64::NAN },
        ] {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn display_summarises_the_active_families() {
        let plan = FaultPlan {
            link_failure: 0.2,
            base_loss: 0.05,
            partitions: vec![PartitionWindow {
                split_at_cycle: 1,
                heal_at_cycle: 4,
                minority_fraction: 0.3,
            }],
            ..FaultPlan::default()
        };
        let rendered = plan.to_string();
        assert!(rendered.contains("links=0.200"));
        assert!(rendered.contains("loss=0.050"));
        assert!(rendered.contains("partitions=1"));
    }
}
