//! The stateful adversary lab: colluding nodes that *persistently* lie.
//!
//! [`crate::ValueInjection`] models a transient adversary — one corruption at
//! one cycle, diluted away by the following exchanges. The Byzantine regime
//! of the fault-containment literature (Dubois–Masuzawa–Tixeuil) is harsher:
//! a colluding set re-asserts its lie *every* cycle, so dilution never wins
//! while the attack is active. An [`AdversaryPlan`] describes such an attack
//! declaratively, and [`Adversary`] is its deterministic realisation.
//!
//! The same determinism discipline as [`crate::PlanInjector`] applies:
//!
//! * **colluder membership is a pure coin** — a node at initial-directory
//!   position `p` colludes iff
//!   `mix(seed ^ COLLUDER_SALT ^ p) < threshold(collusion_fraction)`. Keyed
//!   on *position*, not [`NodeId`], so the colluding set is identical across
//!   engines whose identifier layouts differ (the sharded engine's ids embed
//!   the shard count; positions do not). The threshold form makes the set
//!   *nested*: raising the fraction only ever adds colluders.
//! * **zero engine randomness** — neither plan evaluation nor lie values
//!   consume any RNG stream, so the empty plan leaves every engine
//!   trajectory bit-identical (pinned in `tests/determinism.rs`).
//! * **lie values are pure functions of the cycle** — oscillation and drift
//!   are computed, not sampled, so every engine and every shard agrees on
//!   the asserted value without coordination.

use crate::injector::{mix, probability_threshold};
use overlay_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Salt for the colluder-membership coins ("colluder" in ASCII), keeping the
/// adversary's coin family disjoint from the link/partition coin families
/// that share the same seed.
const COLLUDER_SALT: u64 = 0x636f_6c6c_7564_6572;

/// A rejected [`AdversaryPlan`] parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversaryPlanError {
    /// The collusion fraction is outside `[0, 1]`, NaN or infinite.
    InvalidFraction {
        /// The rejected value.
        value: f64,
    },
    /// An attack parameter is NaN or infinite — asserting a non-finite value
    /// would poison every estimate instead of biasing it, which is a
    /// different experiment.
    NonFiniteAttackValue {
        /// Which parameter was rejected (e.g. `"lie value"`).
        parameter: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An oscillating attack with period zero never defines a phase.
    ZeroOscillationPeriod,
    /// A leader-capture attack that captures zero instances does nothing;
    /// use [`AdversaryPlan::none`] for the empty plan instead.
    ZeroCapturedInstances,
    /// The attack window stops no later than it starts.
    EmptyAttackWindow {
        /// First active cycle.
        start_cycle: usize,
        /// First inactive cycle again (exclusive stop).
        stop_cycle: usize,
    },
}

impl fmt::Display for AdversaryPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            AdversaryPlanError::InvalidFraction { value } => {
                write!(
                    f,
                    "collusion fraction {value} must be a probability in [0, 1]"
                )
            }
            AdversaryPlanError::NonFiniteAttackValue { parameter, value } => {
                write!(f, "{parameter} {value} must be finite")
            }
            AdversaryPlanError::ZeroOscillationPeriod => {
                write!(f, "oscillation period must be at least one cycle")
            }
            AdversaryPlanError::ZeroCapturedInstances => {
                write!(f, "leader capture must target at least one instance")
            }
            AdversaryPlanError::EmptyAttackWindow {
                start_cycle,
                stop_cycle,
            } => write!(
                f,
                "attack window must stop after it starts (start {start_cycle}, stop {stop_cycle})"
            ),
        }
    }
}

impl std::error::Error for AdversaryPlanError {}

fn check_finite(parameter: &'static str, value: f64) -> Result<(), AdversaryPlanError> {
    if !value.is_finite() {
        return Err(AdversaryPlanError::NonFiniteAttackValue { parameter, value });
    }
    Ok(())
}

/// What the colluding set does while the attack window is active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackStrategy {
    /// Mass inflation/deflation: every colluder overwrites its running
    /// default-instance estimate with `value` at the start of every active
    /// cycle — the persistent lie the one-shot `ValueInjection` cannot model.
    FixedLie {
        /// The asserted estimate.
        value: f64,
    },
    /// Oscillating attack: colluders assert `center + amplitude` and
    /// `center - amplitude` in alternating phases of `period` cycles,
    /// rocking the aggregate instead of pushing it one way.
    Oscillate {
        /// Midpoint of the oscillation.
        center: f64,
        /// Half-swing around the midpoint.
        amplitude: f64,
        /// Phase length in cycles (≥ 1).
        period: usize,
    },
    /// Drift attack: colluders assert `start + rate·t` where `t` counts the
    /// cycles since the attack window opened — a slow poisoning that evades
    /// outlier checks calibrated on fixed amplitudes.
    Drift {
        /// Asserted value at the first active cycle.
        start: f64,
        /// Per-cycle increment of the asserted value.
        rate: f64,
    },
    /// Targeted leader capture in size estimation: the adversary compromises
    /// the first `instances` elected leaders of each epoch and re-asserts
    /// `reported_state` into each captured counting instance every active
    /// cycle. Driving the instance state far above `1/N` collapses its size
    /// estimate (`N̂ = 1/state`) — the attack the paper's median-of-k
    /// redundancy defends against.
    LeaderCapture {
        /// Number of leaders captured per epoch (`f` in the `f < k/2` bound).
        instances: usize,
        /// The state asserted into each captured counting instance.
        reported_state: f64,
    },
}

/// A declarative, serialisable description of a stateful value attack:
/// *which* nodes collude (a seeded fraction of the initial population),
/// *what* they assert ([`AttackStrategy`]) and *when* (a half-open cycle
/// window). The empty plan ([`AdversaryPlan::none`]) attacks nobody and is
/// bit-identical to no adversary lab at all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Fraction of the initial population that colludes. Membership is a
    /// pure per-position coin, so the expected colluder count is
    /// `fraction · n` and the realised set is nested across fractions.
    pub collusion_fraction: f64,
    /// What the colluders do while the window is active.
    pub strategy: AttackStrategy,
    /// First cycle the attack is active.
    pub start_cycle: usize,
    /// First cycle the attack is inactive again (exclusive stop); `None`
    /// keeps the attack active forever.
    pub stop_cycle: Option<usize>,
}

impl AdversaryPlan {
    /// The empty plan: nobody colludes, nothing is asserted. Engines driven
    /// with it behave bit-identically to engines with no adversary at all —
    /// the determinism suite pins this.
    pub fn none() -> Self {
        AdversaryPlan {
            collusion_fraction: 0.0,
            strategy: AttackStrategy::FixedLie { value: 0.0 },
            start_cycle: 0,
            stop_cycle: None,
        }
    }

    /// A plan running `strategy` from cycle 0 forever, with the given
    /// colluding fraction.
    pub fn with_strategy(collusion_fraction: f64, strategy: AttackStrategy) -> Self {
        AdversaryPlan {
            collusion_fraction,
            strategy,
            start_cycle: 0,
            stop_cycle: None,
        }
    }

    /// A leader-capture plan: `instances` captured leaders per epoch, each
    /// re-asserting `reported_state`, active from cycle 0 forever. Leader
    /// capture needs no colluding fraction — it compromises whoever wins the
    /// election.
    pub fn leader_capture(instances: usize, reported_state: f64) -> Self {
        AdversaryPlan::with_strategy(
            0.0,
            AttackStrategy::LeaderCapture {
                instances,
                reported_state,
            },
        )
    }

    /// Whether the plan attacks nothing (engines skip the adversary path
    /// entirely for such plans).
    pub fn is_empty(&self) -> bool {
        self.collusion_fraction == 0.0 && self.capture_instances() == 0
    }

    /// Validates every parameter of the plan.
    ///
    /// # Errors
    ///
    /// The first [`AdversaryPlanError`] found.
    pub fn validate(&self) -> Result<(), AdversaryPlanError> {
        if !self.collusion_fraction.is_finite() || !(0.0..=1.0).contains(&self.collusion_fraction) {
            return Err(AdversaryPlanError::InvalidFraction {
                value: self.collusion_fraction,
            });
        }
        if let Some(stop) = self.stop_cycle {
            if stop <= self.start_cycle {
                return Err(AdversaryPlanError::EmptyAttackWindow {
                    start_cycle: self.start_cycle,
                    stop_cycle: stop,
                });
            }
        }
        match self.strategy {
            AttackStrategy::FixedLie { value } => check_finite("lie value", value),
            AttackStrategy::Oscillate {
                center,
                amplitude,
                period,
            } => {
                check_finite("oscillation center", center)?;
                check_finite("oscillation amplitude", amplitude)?;
                if period == 0 {
                    return Err(AdversaryPlanError::ZeroOscillationPeriod);
                }
                Ok(())
            }
            AttackStrategy::Drift { start, rate } => {
                check_finite("drift start", start)?;
                check_finite("drift rate", rate)
            }
            AttackStrategy::LeaderCapture {
                instances,
                reported_state,
            } => {
                check_finite("reported state", reported_state)?;
                if instances == 0 {
                    return Err(AdversaryPlanError::ZeroCapturedInstances);
                }
                Ok(())
            }
        }
    }

    /// Whether the attack window covers `cycle`.
    pub fn active_at(&self, cycle: usize) -> bool {
        // `Option::is_none_or` needs Rust 1.82; the workspace MSRV is older.
        cycle >= self.start_cycle && self.stop_cycle.map_or(true, |stop| cycle < stop)
    }

    /// The pure colluder-membership coin: whether the node at
    /// initial-directory position `position` colludes under `seed`. Keyed on
    /// position so the answer is identical across engines with different
    /// identifier layouts, and monotone in the collusion fraction (nested
    /// threshold coins).
    pub fn colludes_at(&self, seed: u64, position: usize) -> bool {
        if self.collusion_fraction <= 0.0 {
            return false;
        }
        mix(seed ^ COLLUDER_SALT ^ position as u64) < probability_threshold(self.collusion_fraction)
    }

    /// The value every colluder asserts into its running default-instance
    /// estimate at the start of `cycle`, or `None` when the window is
    /// inactive or the strategy attacks counting instances instead
    /// ([`AttackStrategy::LeaderCapture`]). Pure — no randomness, so every
    /// engine computes the same lie.
    pub fn lie_at(&self, cycle: usize) -> Option<f64> {
        if !self.active_at(cycle) {
            return None;
        }
        let t = cycle - self.start_cycle;
        match self.strategy {
            AttackStrategy::FixedLie { value } => Some(value),
            AttackStrategy::Oscillate {
                center,
                amplitude,
                period,
            } => {
                let sign = if (t / period.max(1)) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                };
                Some(center + sign * amplitude)
            }
            AttackStrategy::Drift { start, rate } => Some(start + rate * t as f64),
            AttackStrategy::LeaderCapture { .. } => None,
        }
    }

    /// Number of leaders captured per epoch (0 for value strategies).
    pub fn capture_instances(&self) -> usize {
        match self.strategy {
            AttackStrategy::LeaderCapture { instances, .. } => instances,
            _ => 0,
        }
    }

    /// The state a captured counting instance is forced to at the start of
    /// `cycle`, or `None` when the window is inactive or the strategy is not
    /// leader capture.
    pub fn captured_state_at(&self, cycle: usize) -> Option<f64> {
        match self.strategy {
            AttackStrategy::LeaderCapture { reported_state, .. } if self.active_at(cycle) => {
                Some(reported_state)
            }
            _ => None,
        }
    }
}

impl Default for AdversaryPlan {
    fn default() -> Self {
        AdversaryPlan::none()
    }
}

impl fmt::Display for AdversaryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("no-adversary");
        }
        let strategy = match self.strategy {
            AttackStrategy::FixedLie { value } => format!("lie={value}"),
            AttackStrategy::Oscillate {
                center,
                amplitude,
                period,
            } => format!("oscillate={center}±{amplitude}/{period}"),
            AttackStrategy::Drift { start, rate } => format!("drift={start}+{rate}t"),
            AttackStrategy::LeaderCapture {
                instances,
                reported_state,
            } => format!("capture={instances}@{reported_state}"),
        };
        write!(
            f,
            "adversary[fraction={:.3},{strategy}]",
            self.collusion_fraction
        )
    }
}

/// The engine-facing realisation of an [`AdversaryPlan`]: the colluding set
/// resolved against one engine's initial directory, plus the per-epoch
/// capture book-keeping for [`AttackStrategy::LeaderCapture`].
///
/// Engines construct one at build time, consult [`Adversary::lie_at`] /
/// [`Adversary::is_colluder`] at every cycle start, and report each epoch's
/// elected leaders through [`Adversary::observe_leader`] (after
/// [`Adversary::begin_epoch`] reset the capture set).
#[derive(Debug, Clone)]
pub struct Adversary {
    plan: AdversaryPlan,
    /// Colluding node identifiers, sorted for binary-search membership.
    colluders: Vec<NodeId>,
    /// The counting-instance leaders captured in the current epoch, in
    /// election order, at most `plan.capture_instances()`.
    captured: Vec<NodeId>,
}

impl Adversary {
    /// Resolves `plan` against an engine's initial directory: the node at
    /// position `p` of `initial` colludes iff the pure coin
    /// [`AdversaryPlan::colludes_at`] fires for `(seed, p)`.
    pub fn new(plan: AdversaryPlan, seed: u64, initial: &[NodeId]) -> Self {
        let mut colluders: Vec<NodeId> = initial
            .iter()
            .enumerate()
            .filter(|&(position, _)| plan.colludes_at(seed, position))
            .map(|(_, &id)| id)
            .collect();
        colluders.sort_unstable();
        Adversary {
            plan,
            colluders,
            captured: Vec::new(),
        }
    }

    /// The inert adversary (empty plan, nobody colludes).
    pub fn none() -> Self {
        Adversary {
            plan: AdversaryPlan::none(),
            colluders: Vec::new(),
            captured: Vec::new(),
        }
    }

    /// The plan this adversary realises.
    pub fn plan(&self) -> &AdversaryPlan {
        &self.plan
    }

    /// Whether this adversary never does anything.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The resolved colluding set, sorted by identifier.
    pub fn colluders(&self) -> &[NodeId] {
        &self.colluders
    }

    /// Whether `id` belongs to the colluding set.
    pub fn is_colluder(&self, id: NodeId) -> bool {
        self.colluders.binary_search(&id).is_ok()
    }

    /// The lie every colluder asserts at the start of `cycle` (see
    /// [`AdversaryPlan::lie_at`]).
    pub fn lie_at(&self, cycle: usize) -> Option<f64> {
        self.plan.lie_at(cycle)
    }

    /// Whether the adversary claims the corruption slot of `id` at `cycle` —
    /// the single-corruption rule: a node a `ValueInjection` targets while it
    /// is actively lying keeps the adversary's value (the stateful attacker
    /// wins; it would immediately overwrite the injection anyway).
    pub fn overrides_injection(&self, cycle: usize, id: NodeId) -> bool {
        self.lie_at(cycle).is_some() && self.is_colluder(id)
    }

    /// Resets the per-epoch capture set; engines call this at every leader
    /// election (epoch start), before reporting the new leaders.
    pub fn begin_epoch(&mut self) {
        self.captured.clear();
    }

    /// Reports an elected counting-instance leader, in election order.
    /// Returns `true` when the adversary captures it (the first
    /// `capture_instances()` leaders of the epoch).
    pub fn observe_leader(&mut self, id: NodeId) -> bool {
        if self.captured.len() < self.plan.capture_instances() {
            self.captured.push(id);
            true
        } else {
            false
        }
    }

    /// The leaders captured in the current epoch, in election order.
    pub fn captured(&self) -> &[NodeId] {
        &self.captured
    }

    /// The state forced into each captured counting instance at the start of
    /// `cycle` (see [`AdversaryPlan::captured_state_at`]).
    pub fn captured_state_at(&self, cycle: usize) -> Option<f64> {
        self.plan.captured_state_at(cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    #[test]
    fn empty_plan_is_empty_valid_and_inert() {
        let plan = AdversaryPlan::none();
        assert!(plan.is_empty());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.lie_at(0), Some(0.0));
        assert_eq!(plan.capture_instances(), 0);
        assert_eq!(plan.to_string(), "no-adversary");
        assert_eq!(plan, AdversaryPlan::default());
        let adversary = Adversary::new(plan, 42, &ids(1_000));
        assert!(adversary.is_empty());
        assert!(adversary.colluders().is_empty());
        assert_eq!(Adversary::none().colluders().len(), 0);
    }

    #[test]
    fn colluder_fraction_tracks_the_target_and_is_monotone() {
        let n = 10_000;
        let seed = 7;
        let small = Adversary::new(
            AdversaryPlan::with_strategy(0.1, AttackStrategy::FixedLie { value: 1e6 }),
            seed,
            &ids(n),
        );
        let large = Adversary::new(
            AdversaryPlan::with_strategy(0.3, AttackStrategy::FixedLie { value: 1e6 }),
            seed,
            &ids(n),
        );
        let small_rate = small.colluders().len() as f64 / n as f64;
        let large_rate = large.colluders().len() as f64 / n as f64;
        assert!((small_rate - 0.1).abs() < 0.01, "rate {small_rate}");
        assert!((large_rate - 0.3).abs() < 0.01, "rate {large_rate}");
        // Nested coins: every colluder at 10 % still colludes at 30 %.
        for &id in small.colluders() {
            assert!(large.is_colluder(id), "{id} must stay a colluder");
        }
    }

    #[test]
    fn colluder_positions_are_engine_invariant() {
        // Two engines with disjoint identifier namespaces over the same
        // directory: the colluding *positions* must agree, because the coin
        // is keyed on position, not identifier.
        let n = 500;
        let plan = AdversaryPlan::with_strategy(0.2, AttackStrategy::FixedLie { value: 0.0 });
        let sequential = ids(n);
        let offset: Vec<NodeId> = (0..n).map(|i| NodeId::new(i + 1_000_000)).collect();
        let a = Adversary::new(plan, 13, &sequential);
        let b = Adversary::new(plan, 13, &offset);
        let positions_a: Vec<usize> = (0..n).filter(|&p| a.is_colluder(sequential[p])).collect();
        let positions_b: Vec<usize> = (0..n).filter(|&p| b.is_colluder(offset[p])).collect();
        assert!(!positions_a.is_empty());
        assert_eq!(positions_a, positions_b);
    }

    #[test]
    fn lie_values_follow_the_strategy_and_window() {
        let fixed = AdversaryPlan {
            start_cycle: 5,
            stop_cycle: Some(10),
            ..AdversaryPlan::with_strategy(0.1, AttackStrategy::FixedLie { value: 99.0 })
        };
        assert_eq!(fixed.lie_at(4), None);
        assert_eq!(fixed.lie_at(5), Some(99.0));
        assert_eq!(fixed.lie_at(9), Some(99.0));
        assert_eq!(fixed.lie_at(10), None);

        let oscillate = AdversaryPlan::with_strategy(
            0.1,
            AttackStrategy::Oscillate {
                center: 10.0,
                amplitude: 4.0,
                period: 3,
            },
        );
        assert_eq!(oscillate.lie_at(0), Some(14.0));
        assert_eq!(oscillate.lie_at(2), Some(14.0));
        assert_eq!(oscillate.lie_at(3), Some(6.0));
        assert_eq!(oscillate.lie_at(6), Some(14.0));

        let drift = AdversaryPlan {
            start_cycle: 2,
            ..AdversaryPlan::with_strategy(
                0.1,
                AttackStrategy::Drift {
                    start: 1.0,
                    rate: 0.5,
                },
            )
        };
        assert_eq!(drift.lie_at(2), Some(1.0));
        assert_eq!(drift.lie_at(6), Some(3.0));

        let capture = AdversaryPlan::leader_capture(2, 50.0);
        assert_eq!(capture.lie_at(0), None);
        assert_eq!(capture.captured_state_at(0), Some(50.0));
        assert_eq!(capture.capture_instances(), 2);
        assert!(!capture.is_empty());
    }

    #[test]
    fn leader_capture_takes_the_first_f_leaders_per_epoch() {
        let mut adversary = Adversary::new(AdversaryPlan::leader_capture(2, 100.0), 3, &ids(10));
        adversary.begin_epoch();
        assert!(adversary.observe_leader(NodeId::new(4)));
        assert!(adversary.observe_leader(NodeId::new(7)));
        assert!(!adversary.observe_leader(NodeId::new(1)));
        assert_eq!(adversary.captured(), &[NodeId::new(4), NodeId::new(7)]);
        adversary.begin_epoch();
        assert!(adversary.captured().is_empty());
        assert!(adversary.observe_leader(NodeId::new(1)));
    }

    #[test]
    fn single_corruption_rule_only_claims_active_colluders() {
        let plan = AdversaryPlan {
            start_cycle: 3,
            ..AdversaryPlan::with_strategy(1.0, AttackStrategy::FixedLie { value: 1.0 })
        };
        let adversary = Adversary::new(plan, 5, &ids(4));
        let id = NodeId::new(0);
        assert!(adversary.is_colluder(id));
        assert!(!adversary.overrides_injection(2, id), "window not open yet");
        assert!(adversary.overrides_injection(3, id));
        // Leader capture never claims default-instance corruption slots.
        let capture = Adversary::new(AdversaryPlan::leader_capture(1, 9.0), 5, &ids(4));
        assert!(!capture.overrides_injection(3, id));
    }

    #[test]
    fn validation_rejects_each_malformed_parameter() {
        assert!(matches!(
            AdversaryPlan::with_strategy(1.5, AttackStrategy::FixedLie { value: 0.0 }).validate(),
            Err(AdversaryPlanError::InvalidFraction { .. })
        ));
        assert!(matches!(
            AdversaryPlan::with_strategy(0.1, AttackStrategy::FixedLie { value: f64::NAN })
                .validate(),
            Err(AdversaryPlanError::NonFiniteAttackValue {
                parameter: "lie value",
                ..
            })
        ));
        assert!(matches!(
            AdversaryPlan::with_strategy(
                0.1,
                AttackStrategy::Oscillate {
                    center: 0.0,
                    amplitude: 1.0,
                    period: 0
                }
            )
            .validate(),
            Err(AdversaryPlanError::ZeroOscillationPeriod)
        ));
        assert!(matches!(
            AdversaryPlan::with_strategy(
                0.1,
                AttackStrategy::Drift {
                    start: 0.0,
                    rate: f64::INFINITY
                }
            )
            .validate(),
            Err(AdversaryPlanError::NonFiniteAttackValue { .. })
        ));
        assert!(matches!(
            AdversaryPlan::leader_capture(0, 1.0).validate(),
            Err(AdversaryPlanError::ZeroCapturedInstances)
        ));
        let reversed = AdversaryPlan {
            start_cycle: 9,
            stop_cycle: Some(9),
            ..AdversaryPlan::with_strategy(0.1, AttackStrategy::FixedLie { value: 0.0 })
        };
        assert!(matches!(
            reversed.validate(),
            Err(AdversaryPlanError::EmptyAttackWindow { .. })
        ));
        for error in [
            AdversaryPlanError::InvalidFraction { value: 2.0 },
            AdversaryPlanError::NonFiniteAttackValue {
                parameter: "lie value",
                value: f64::NAN,
            },
            AdversaryPlanError::ZeroOscillationPeriod,
            AdversaryPlanError::ZeroCapturedInstances,
            AdversaryPlanError::EmptyAttackWindow {
                start_cycle: 9,
                stop_cycle: 9,
            },
        ] {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn display_summarises_the_attack() {
        let plan = AdversaryPlan::with_strategy(0.25, AttackStrategy::FixedLie { value: 7.0 });
        assert_eq!(plan.to_string(), "adversary[fraction=0.250,lie=7]");
        assert!(AdversaryPlan::leader_capture(2, 50.0)
            .to_string()
            .contains("capture=2@50"));
    }
}
