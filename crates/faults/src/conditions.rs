//! Network failure conditions: uniform message loss and one-shot crashes.
//!
//! This is the *simple* failure model the robustness ablations started from;
//! the full fault-injection lab generalises it as [`crate::FaultPlan`]
//! (persistent link failures, partitions, crash bursts, loss ramps and
//! adversarial value injection), with a [`NetworkConditions`] absorbing into
//! the plan via [`crate::FaultPlan::from_conditions`].

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A rejected [`NetworkConditions`] parameter.
///
/// Conditions are validated once, when a simulation is constructed (the
/// `AsyncConfigError` pattern of the event-driven engine); the per-message
/// draw then trusts the stored probability unconditionally instead of
/// re-clamping it on every message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConditionsError {
    /// `message_loss` is not a probability (outside `[0, 1]`, NaN or
    /// infinite).
    InvalidMessageLoss {
        /// The rejected value.
        value: f64,
    },
    /// `crash_fraction` is not a probability (outside `[0, 1]`, NaN or
    /// infinite).
    InvalidCrashFraction {
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for ConditionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConditionsError::InvalidMessageLoss { value } => {
                write!(f, "message loss {value} must be a probability in [0, 1]")
            }
            ConditionsError::InvalidCrashFraction { value } => {
                write!(f, "crash fraction {value} must be a probability in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ConditionsError {}

/// Failure conditions applied by the simulation engines.
///
/// The paper's model assumes reliable, instantaneous communication for the
/// analysis and discusses failures qualitatively; the robustness ablation
/// (benchmark A2) quantifies them with this structure. Losses are applied to
/// each message independently; crashes remove a fraction of nodes at a given
/// cycle, mimicking a correlated failure event.
///
/// The engines treat a `NetworkConditions` as the trivial [`crate::FaultPlan`]
/// (constant loss, at most one crash burst) — see
/// [`crate::FaultPlan::from_conditions`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConditions {
    /// Probability that any individual message (push or reply) is lost.
    pub message_loss: f64,
    /// Fraction of live nodes that crash at [`NetworkConditions::crash_at_cycle`].
    pub crash_fraction: f64,
    /// Cycle index at which the crash event happens.
    pub crash_at_cycle: Option<usize>,
}

impl NetworkConditions {
    /// Perfect network: no loss, no crashes. This reproduces the paper's
    /// analytical setting.
    pub const fn reliable() -> Self {
        NetworkConditions {
            message_loss: 0.0,
            crash_fraction: 0.0,
            crash_at_cycle: None,
        }
    }

    /// Validating constructor: the checked counterpart of filling the public
    /// fields directly.
    ///
    /// # Errors
    ///
    /// [`ConditionsError`] when either probability is outside `[0, 1]`, NaN
    /// or infinite.
    pub fn new(
        message_loss: f64,
        crash_fraction: f64,
        crash_at_cycle: Option<usize>,
    ) -> Result<Self, ConditionsError> {
        let conditions = NetworkConditions {
            message_loss,
            crash_fraction,
            crash_at_cycle,
        };
        conditions.validate()?;
        Ok(conditions)
    }

    /// Conditions with only uniform message loss.
    ///
    /// Permissive (the fields are public anyway); the engines validate at
    /// construction via [`NetworkConditions::validate`].
    pub fn with_message_loss(loss: f64) -> Self {
        NetworkConditions {
            message_loss: loss,
            ..Self::reliable()
        }
    }

    /// Conditions with a single crash event: `fraction` of the nodes die at
    /// `cycle`.
    pub fn with_crash(fraction: f64, cycle: usize) -> Self {
        NetworkConditions {
            crash_fraction: fraction,
            crash_at_cycle: Some(cycle),
            ..Self::reliable()
        }
    }

    /// Checks that both parameters are valid probabilities, reporting *which*
    /// one is not.
    ///
    /// # Errors
    ///
    /// [`ConditionsError::InvalidMessageLoss`] or
    /// [`ConditionsError::InvalidCrashFraction`].
    pub fn validate(&self) -> Result<(), ConditionsError> {
        if !self.message_loss.is_finite() || !(0.0..=1.0).contains(&self.message_loss) {
            return Err(ConditionsError::InvalidMessageLoss {
                value: self.message_loss,
            });
        }
        if !self.crash_fraction.is_finite() || !(0.0..=1.0).contains(&self.crash_fraction) {
            return Err(ConditionsError::InvalidCrashFraction {
                value: self.crash_fraction,
            });
        }
        Ok(())
    }

    /// Returns `true` when the parameters are valid probabilities.
    pub fn is_valid(&self) -> bool {
        self.validate().is_ok()
    }

    /// Samples whether one message gets lost.
    ///
    /// The probability is used as stored — engines validate conditions once
    /// at construction, so the historical per-draw `clamp` was dead weight on
    /// the hottest path of a lossy run.
    pub fn message_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.message_loss > 0.0 && rng.gen_bool(self.message_loss)
    }
}

impl Default for NetworkConditions {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reliable_conditions_never_lose_messages() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cond = NetworkConditions::reliable();
        assert!(cond.is_valid());
        assert!((0..1000).all(|_| !cond.message_lost(&mut rng)));
        assert_eq!(NetworkConditions::default(), cond);
    }

    #[test]
    fn loss_rate_is_respected_statistically() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cond = NetworkConditions::with_message_loss(0.2);
        let lost = (0..50_000).filter(|_| cond.message_lost(&mut rng)).count();
        let rate = lost as f64 / 50_000.0;
        assert!((rate - 0.2).abs() < 0.01, "observed loss rate {rate}");
    }

    #[test]
    fn crash_constructor_and_validation() {
        let cond = NetworkConditions::with_crash(0.5, 5);
        assert!(cond.is_valid());
        assert_eq!(cond.crash_at_cycle, Some(5));
        assert_eq!(cond.crash_fraction, 0.5);
        assert_eq!(cond.message_loss, 0.0);

        assert!(!NetworkConditions::with_message_loss(1.5).is_valid());
        assert!(!NetworkConditions::with_message_loss(f64::NAN).is_valid());
        assert!(!NetworkConditions::with_crash(-0.1, 0).is_valid());
    }

    #[test]
    fn validation_reports_the_offending_parameter() {
        assert_eq!(
            NetworkConditions::with_message_loss(1.5).validate(),
            Err(ConditionsError::InvalidMessageLoss { value: 1.5 })
        );
        assert_eq!(
            NetworkConditions::with_crash(2.0, 3).validate(),
            Err(ConditionsError::InvalidCrashFraction { value: 2.0 })
        );
        assert!(matches!(
            NetworkConditions::with_message_loss(f64::NAN).validate(),
            Err(ConditionsError::InvalidMessageLoss { value } ) if value.is_nan()
        ));
        for error in [
            ConditionsError::InvalidMessageLoss { value: -0.5 },
            ConditionsError::InvalidCrashFraction { value: 7.0 },
        ] {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn checked_constructor_accepts_valid_and_rejects_invalid() {
        let ok = NetworkConditions::new(0.1, 0.3, Some(5)).unwrap();
        assert_eq!(ok.message_loss, 0.1);
        assert_eq!(ok.crash_at_cycle, Some(5));
        assert!(NetworkConditions::new(-0.1, 0.0, None).is_err());
        assert!(NetworkConditions::new(0.0, f64::INFINITY, None).is_err());
    }
}
