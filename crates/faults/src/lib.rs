//! # gossip-faults
//!
//! The fault-injection lab for the epidemic-aggregation workspace: a
//! deterministic, seeded schedule DSL for the robustness experiments of the
//! paper's Section 4 — and one step beyond them.
//!
//! The paper claims the averaging protocol degrades gracefully under link
//! failures, node crashes and message omission. This crate turns each of
//! those (plus network partitions and an adversarial value-injection attack
//! motivated by the fault-containment literature) into a declarative
//! [`FaultPlan`] that any simulation engine executes through the
//! [`FaultInjector`] interface:
//!
//! * [`NetworkConditions`] — the legacy simple model (uniform loss plus one
//!   crash), absorbed into the plan via [`FaultPlan::from_conditions`];
//! * [`FaultPlan`] — the schedule DSL: persistent per-link failure maps,
//!   partition windows that split at cycle *k* and heal at cycle *m*,
//!   correlated crash bursts, message-loss ramps and value injections;
//! * [`FaultInjector`] / [`PlanInjector`] — the engine-facing interface and
//!   its seeded realisation. Decisions are pure functions of
//!   `(plan, seed, entity, cycle)` wherever an engine might evaluate them
//!   from more than one executor, and all adversarial randomness lives in a
//!   private stream so the **empty plan is bit-identical to no fault lab at
//!   all** — the property that lets `gossip-sim`'s engines route every run,
//!   faulty or not, through one code path.
//!
//! # Example
//!
//! ```
//! use gossip_faults::{FaultInjector, FaultPlan, PlanInjector};
//! use overlay_topology::NodeId;
//!
//! // 20 % of links dead forever, a partition over cycles 10..20, and a
//! // loss ramp flat at 5 %.
//! let plan = FaultPlan {
//!     link_failure: 0.2,
//!     base_loss: 0.05,
//!     ..FaultPlan::with_partition(10, 20, 0.3)
//! };
//! plan.validate().unwrap();
//!
//! let mut injector = PlanInjector::new(plan, 42);
//! injector.begin_cycle(0);
//! assert_eq!(injector.loss_probability(), 0.05);
//! // Persistent link decisions are pure and symmetric.
//! let (a, b) = (NodeId::new(1), NodeId::new(2));
//! assert_eq!(injector.link_blocked(a, b), injector.link_blocked(b, a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adversary;
mod conditions;
mod injector;
mod plan;

pub use adversary::{Adversary, AdversaryPlan, AdversaryPlanError, AttackStrategy};
pub use conditions::{ConditionsError, NetworkConditions};
pub use injector::{FaultInjector, PlanInjector};
pub use plan::{CrashBurst, FaultPlan, FaultPlanError, LossRamp, PartitionWindow, ValueInjection};
