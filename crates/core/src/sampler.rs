//! Pluggable peer sampling — the layer that decides *who* a node gossips
//! with.
//!
//! The paper's analysis assumes each exchange partner is a uniformly random
//! member of the whole network; its robustness claim (Section 5) is that the
//! measured convergence factor barely degrades when partners are instead
//! drawn from a realistic partial view maintained by a membership protocol
//! such as NEWSCAST. This module is the seam that lets every simulation
//! engine swap between those worlds without touching the exchange path:
//!
//! * [`PeerSampler`] — the object-safe sampling interface the engines drive;
//! * [`SamplerDirectory`] — the engine-provided dense directory of live
//!   nodes a sampler draws from (and validates picks against);
//! * [`UniformSampler`] — uniform sampling over the complete live
//!   membership, bit-compatible with the engines' historical behaviour;
//! * [`SamplerConfig`] — the serialisable description experiment
//!   configurations store, mirroring [`crate::SelectorKind`].
//!
//! Implementations backed by static overlay graphs and by a live NEWSCAST
//! membership protocol live in the `peer-sampling` crate
//! (`StaticOverlaySampler`, `NewscastSampler`); the engines in `gossip-sim`
//! instantiate any of them from a [`SamplerConfig`].
//!
//! # Example
//!
//! ```
//! use aggregate_core::sampler::{PeerSampler, SamplerDirectory, SliceDirectory, UniformSampler};
//! use overlay_topology::NodeId;
//! use rand::SeedableRng;
//!
//! let live: Vec<NodeId> = (0..10).map(NodeId::new).collect();
//! let directory = SliceDirectory::new(&live);
//! let mut sampler = UniformSampler::new();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // Node at position 3 asks for a partner: any live node but itself.
//! let peer = sampler.sample(&directory, 3, &mut rng).unwrap();
//! assert_ne!(peer, NodeId::new(3));
//! assert!(directory.is_live(peer));
//! ```

use overlay_topology::{NodeId, TopologyKind};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, indexable directory of the currently live nodes, provided by the
/// engine driving a [`PeerSampler`].
///
/// Positions `0..len()` enumerate the live population in the engine's
/// iteration order (arena live order for the reference engine, global
/// directory order for the sharded engine). The directory also answers
/// liveness queries so that samplers backed by potentially stale views
/// (NEWSCAST caches, static overlays under churn) can have their picks
/// validated by [`sample_live_peer`].
pub trait SamplerDirectory {
    /// Number of live nodes.
    fn len(&self) -> usize;

    /// Returns `true` when no node is live.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The identifier of the live node at `pos` (`pos < len()`).
    fn id_at(&self, pos: usize) -> NodeId;

    /// Whether `id` currently resolves to a live node.
    fn is_live(&self, id: NodeId) -> bool;
}

/// The simplest [`SamplerDirectory`]: a slice of live identifiers.
///
/// Liveness checks are a linear scan, so this is meant for tests, docs and
/// small drivers; the simulation engines provide O(1) directories over their
/// arenas.
#[derive(Debug, Clone, Copy)]
pub struct SliceDirectory<'a> {
    ids: &'a [NodeId],
}

impl<'a> SliceDirectory<'a> {
    /// Wraps a slice of live node identifiers.
    pub fn new(ids: &'a [NodeId]) -> Self {
        SliceDirectory { ids }
    }
}

impl SamplerDirectory for SliceDirectory<'_> {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn id_at(&self, pos: usize) -> NodeId {
        self.ids[pos]
    }

    fn is_live(&self, id: NodeId) -> bool {
        self.ids.contains(&id)
    }
}

/// A peer-sampling service driven by a simulation engine: the seam between
/// the aggregation exchange schedule and the overlay that constrains it.
///
/// The engine calls [`PeerSampler::begin_cycle`] once per aggregation cycle
/// (before any pick), then [`PeerSampler::sample`] once per initiating node.
/// Churn is mirrored through [`PeerSampler::on_join`] /
/// [`PeerSampler::on_depart`], and failed exchange attempts (a sampled peer
/// that is no longer live) are reported through
/// [`PeerSampler::peer_failed`], which is how NEWSCAST's tail-drop healing
/// is triggered.
///
/// Implementations must be deterministic: all randomness is drawn either
/// from the `rng` handed to [`PeerSampler::sample`] (the engine's seeded
/// pick stream) or from an internal RNG seeded at construction, so that a
/// fixed master seed reproduces a run bit for bit.
pub trait PeerSampler: fmt::Debug {
    /// The configuration this sampler realises (used by reports and CSV
    /// exports to label the run).
    fn config(&self) -> SamplerConfig;

    /// Advances overlay maintenance by one cycle, in lockstep with the
    /// aggregation cycle. Called exactly once per engine cycle, before any
    /// [`PeerSampler::sample`] of that cycle. The default is a no-op (static
    /// overlays and uniform sampling need no maintenance).
    fn begin_cycle(&mut self, directory: &dyn SamplerDirectory) {
        let _ = directory;
    }

    /// Picks an exchange partner for the node at `initiator_pos` of the
    /// directory, or `None` when the sampler knows no eligible peer.
    ///
    /// The returned identifier may be stale (a departed node still cached in
    /// a partial view); engines validate it against the directory and report
    /// failures through [`PeerSampler::peer_failed`] — see
    /// [`sample_live_peer`].
    fn sample(
        &mut self,
        directory: &dyn SamplerDirectory,
        initiator_pos: usize,
        rng: &mut dyn RngCore,
    ) -> Option<NodeId>;

    /// A node joined the live set (`directory` already contains it). The
    /// default is a no-op.
    fn on_join(&mut self, id: NodeId, directory: &dyn SamplerDirectory) {
        let _ = (id, directory);
    }

    /// A node departed (crash or leave). The default is a no-op.
    fn on_depart(&mut self, id: NodeId) {
        let _ = id;
    }

    /// An exchange attempt from `initiator` towards the sampled `peer`
    /// failed because the peer is no longer live. Samplers backed by cached
    /// views drop the stale descriptor here (tail-drop healing); the default
    /// is a no-op.
    fn peer_failed(&mut self, initiator: NodeId, peer: NodeId) {
        let _ = (initiator, peer);
    }
}

/// Upper bound on the stale picks [`sample_live_peer`] heals per exchange
/// attempt before giving up on the initiator for this cycle.
pub const MAX_SAMPLE_ATTEMPTS: usize = 8;

/// Samples a *live* peer for the initiator at `initiator_pos`, healing stale
/// picks along the way.
///
/// Up to [`MAX_SAMPLE_ATTEMPTS`] times: ask the sampler for a peer; if the
/// directory confirms it live, return it; otherwise report the failure
/// (so cached views evict the dead descriptor) and retry. Returns `None`
/// when the sampler runs out of candidates — the engine simply skips this
/// initiator's exchange, exactly as the paper's protocol does when a contact
/// attempt fails.
pub fn sample_live_peer(
    sampler: &mut dyn PeerSampler,
    directory: &dyn SamplerDirectory,
    initiator_pos: usize,
    rng: &mut dyn RngCore,
) -> Option<NodeId> {
    for _ in 0..MAX_SAMPLE_ATTEMPTS {
        let peer = sampler.sample(directory, initiator_pos, rng)?;
        if directory.is_live(peer) {
            return Some(peer);
        }
        sampler.peer_failed(directory.id_at(initiator_pos), peer);
    }
    None
}

/// Uniform sampling over the complete live membership — the setting of the
/// paper's analysis (every pair of nodes may communicate).
///
/// The draw sequence is pinned: one `gen_range(0..len)` per attempt,
/// rejecting only the initiator's own position. This is exactly the
/// historical peer-pick loop of `GossipSimulation` and `ShardedSimulation`,
/// so engines refactored onto this sampler reproduce their pre-refactor
/// trajectories bit for bit (`tests/determinism.rs` pins golden values).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UniformSampler;

impl UniformSampler {
    /// Creates the sampler.
    pub fn new() -> Self {
        UniformSampler
    }
}

impl PeerSampler for UniformSampler {
    fn config(&self) -> SamplerConfig {
        SamplerConfig::UniformComplete
    }

    fn sample(
        &mut self,
        directory: &dyn SamplerDirectory,
        initiator_pos: usize,
        rng: &mut dyn RngCore,
    ) -> Option<NodeId> {
        let n = directory.len();
        if n < 2 {
            return None;
        }
        loop {
            let candidate = rng.gen_range(0..n);
            if candidate != initiator_pos {
                return Some(directory.id_at(candidate));
            }
        }
    }
}

/// Serialisable description of a peer-sampling layer, mirroring
/// [`crate::SelectorKind`]: experiment configurations store a
/// `SamplerConfig`, engines instantiate the matching [`PeerSampler`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SamplerConfig {
    /// Uniform sampling over the complete live membership (the paper's
    /// analytical model, and the engines' historical behaviour).
    #[default]
    UniformComplete,
    /// Sampling along the edges of a static overlay graph generated once at
    /// start-up. Departures vacate their vertex; later joins re-occupy
    /// vacated vertices (deterministically, most recently vacated first).
    StaticOverlay {
        /// The overlay family and parameters to generate.
        topology: TopologyKind,
    },
    /// A live NEWSCAST membership protocol running in lockstep with the
    /// aggregation cycles: each node keeps a partial view ("cache") of
    /// `cache_size` descriptors, exchanges and merges views once per cycle,
    /// and samples partners uniformly from its current view.
    Newscast {
        /// The per-node view capacity `c` (the paper's NEWSCAST experiments
        /// use `c = 20`; convergence degrades only for very small caches).
        cache_size: usize,
    },
}

impl SamplerConfig {
    /// NEWSCAST sampling with the paper's default cache size of 20.
    pub fn newscast() -> Self {
        SamplerConfig::Newscast { cache_size: 20 }
    }

    /// A short, stable family name (used as the `sampler` column of report
    /// tables and CSV exports, alongside [`crate::SelectorKind::paper_name`]).
    pub fn paper_name(self) -> &'static str {
        match self {
            SamplerConfig::UniformComplete => "uniform-complete",
            SamplerConfig::StaticOverlay { .. } => "static-overlay",
            SamplerConfig::Newscast { .. } => "newscast",
        }
    }

    /// Representative instances of every sampler family, in report order
    /// (the analogue of [`crate::SelectorKind::all`]).
    pub fn all() -> [SamplerConfig; 3] {
        [
            SamplerConfig::UniformComplete,
            SamplerConfig::StaticOverlay {
                topology: TopologyKind::RandomRegular { degree: 20 },
            },
            SamplerConfig::newscast(),
        ]
    }
}

impl fmt::Display for SamplerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerConfig::UniformComplete => f.write_str("uniform-complete"),
            SamplerConfig::StaticOverlay { topology } => write!(f, "static[{topology}]"),
            SamplerConfig::Newscast { cache_size } => write!(f, "newscast(c={cache_size})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn uniform_sampler_never_returns_the_initiator() {
        let live: Vec<NodeId> = (0..20).map(NodeId::new).collect();
        let directory = SliceDirectory::new(&live);
        let mut sampler = UniformSampler::new();
        let mut r = rng();
        for (pos, &own) in live.iter().enumerate() {
            for _ in 0..25 {
                let peer = sampler.sample(&directory, pos, &mut r).unwrap();
                assert_ne!(peer, own);
                assert!(directory.is_live(peer));
            }
        }
    }

    #[test]
    fn uniform_sampler_needs_two_nodes() {
        let one = [NodeId::new(0)];
        let mut sampler = UniformSampler::new();
        let mut r = rng();
        assert!(sampler
            .sample(&SliceDirectory::new(&one), 0, &mut r)
            .is_none());
        assert!(sampler
            .sample(&SliceDirectory::new(&[]), 0, &mut r)
            .is_none());
    }

    #[test]
    fn uniform_draw_sequence_matches_the_historical_pick_loop() {
        // The engines' pre-refactor loop drew `gen_range(0..n)` directly and
        // rejected the initiator's own position; the sampler must consume
        // the RNG identically so refactored engines stay bit-identical.
        let live: Vec<NodeId> = (0..50).map(NodeId::new).collect();
        let directory = SliceDirectory::new(&live);
        let mut sampler = UniformSampler::new();
        let mut a = rng();
        let mut b = rng();
        for pos in [0usize, 7, 49, 3, 3, 12] {
            let picked = sampler.sample(&directory, pos, &mut a).unwrap();
            let expected = loop {
                use rand::Rng;
                let candidate = b.gen_range(0..live.len());
                if candidate != pos {
                    break live[candidate];
                }
            };
            assert_eq!(picked, expected);
        }
    }

    #[test]
    fn sample_live_peer_heals_stale_picks() {
        /// Always proposes a fixed stale id first, then delegates to uniform.
        #[derive(Debug)]
        struct Stale {
            stale: NodeId,
            evictions: Vec<(NodeId, NodeId)>,
            proposed: bool,
        }
        impl PeerSampler for Stale {
            fn config(&self) -> SamplerConfig {
                SamplerConfig::newscast()
            }
            fn sample(
                &mut self,
                directory: &dyn SamplerDirectory,
                initiator_pos: usize,
                rng: &mut dyn RngCore,
            ) -> Option<NodeId> {
                if !self.proposed {
                    self.proposed = true;
                    return Some(self.stale);
                }
                UniformSampler::new().sample(directory, initiator_pos, rng)
            }
            fn peer_failed(&mut self, initiator: NodeId, peer: NodeId) {
                self.evictions.push((initiator, peer));
            }
        }

        let live: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let directory = SliceDirectory::new(&live);
        let mut sampler = Stale {
            stale: NodeId::new(99),
            evictions: Vec::new(),
            proposed: false,
        };
        let peer = sample_live_peer(&mut sampler, &directory, 2, &mut rng()).unwrap();
        assert!(directory.is_live(peer));
        assert_eq!(sampler.evictions, vec![(NodeId::new(2), NodeId::new(99))]);
    }

    #[test]
    fn sample_live_peer_gives_up_after_bounded_attempts() {
        /// A view of nothing but ghosts.
        #[derive(Debug)]
        struct Ghosts {
            failures: usize,
        }
        impl PeerSampler for Ghosts {
            fn config(&self) -> SamplerConfig {
                SamplerConfig::newscast()
            }
            fn sample(
                &mut self,
                _directory: &dyn SamplerDirectory,
                _initiator_pos: usize,
                _rng: &mut dyn RngCore,
            ) -> Option<NodeId> {
                Some(NodeId::new(1_000))
            }
            fn peer_failed(&mut self, _initiator: NodeId, _peer: NodeId) {
                self.failures += 1;
            }
        }
        let live: Vec<NodeId> = (0..3).map(NodeId::new).collect();
        let mut sampler = Ghosts { failures: 0 };
        let picked = sample_live_peer(&mut sampler, &SliceDirectory::new(&live), 0, &mut rng());
        assert_eq!(picked, None);
        assert_eq!(sampler.failures, MAX_SAMPLE_ATTEMPTS);
    }

    #[test]
    fn config_names_and_display_are_stable() {
        assert_eq!(SamplerConfig::default(), SamplerConfig::UniformComplete);
        assert_eq!(
            SamplerConfig::UniformComplete.paper_name(),
            "uniform-complete"
        );
        assert_eq!(SamplerConfig::newscast().paper_name(), "newscast");
        assert_eq!(SamplerConfig::newscast().to_string(), "newscast(c=20)");
        assert_eq!(
            SamplerConfig::StaticOverlay {
                topology: TopologyKind::Ring
            }
            .to_string(),
            "static[ring]"
        );
        assert_eq!(SamplerConfig::all().len(), 3);
        let names: Vec<&str> = SamplerConfig::all()
            .iter()
            .map(|c| c.paper_name())
            .collect();
        assert_eq!(
            names,
            vec!["uniform-complete", "static-overlay", "newscast"]
        );
    }
}
