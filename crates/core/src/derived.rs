//! Derived aggregates: quantities computed by combining several primitive
//! aggregation instances.
//!
//! The paper observes that averaging is a universal building block: "being
//! able to calculate the average already makes it possible to calculate any
//! moments …, the size of the system, the sum of the value set, etc."
//! (Section 1.1). The functions in this module perform those combinations on
//! the *outputs* of converged instances; they contain no protocol logic of
//! their own.

use crate::aggregate::CountInit;

/// Variance of the value set from its mean and second raw moment:
/// `Var[x] = E[x²] − E[x]²`.
///
/// The result is clamped at zero: with finite precision (or before full
/// convergence) the difference can dip slightly negative, and a negative
/// variance is never meaningful to report.
///
/// # Example
///
/// ```
/// use aggregate_core::derived::variance_from_moments;
/// // Values {1, 3}: mean 2, second moment 5, variance 1.
/// assert_eq!(variance_from_moments(2.0, 5.0), 1.0);
/// ```
pub fn variance_from_moments(mean: f64, second_moment: f64) -> f64 {
    (second_moment - mean * mean).max(0.0)
}

/// Standard deviation from mean and second raw moment.
pub fn std_dev_from_moments(mean: f64, second_moment: f64) -> f64 {
    variance_from_moments(mean, second_moment).sqrt()
}

/// Sum of the value set from its mean and the network size: `Σx = N · E[x]`.
///
/// The network size itself comes from a counting instance
/// ([`crate::size_estimation`]), so a complete "total free storage in the
/// system" query is two concurrent instances plus this one multiplication.
pub fn sum_from_mean_and_size(mean: f64, size: f64) -> f64 {
    mean * size
}

/// Network size from the converged average of a counting instance
/// (`1` at the leader, `0` elsewhere). Convenience re-export of
/// [`CountInit::size_estimate`] so that all derived quantities live in one
/// module.
pub fn size_from_count_average(average: f64) -> f64 {
    CountInit::size_estimate(average)
}

/// Fraction of nodes satisfying a predicate, from the converged average of an
/// indicator value (1 where the predicate holds, 0 elsewhere).
///
/// Combined with the network size this also yields the *count* of such nodes:
/// `count = fraction · N`.
pub fn fraction_from_indicator_average(average: f64) -> f64 {
    average.clamp(0.0, 1.0)
}

/// A bundle of global statistics assembled from converged instance estimates.
///
/// This is the "dashboard" a monitoring application would maintain: it is
/// deliberately a plain data structure so it can be serialised, logged or
/// diffed between epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStatistics {
    /// Average of the attribute over all nodes.
    pub mean: f64,
    /// Variance of the attribute over all nodes.
    pub variance: f64,
    /// Minimum attribute value.
    pub min: f64,
    /// Maximum attribute value.
    pub max: f64,
    /// Estimated number of nodes.
    pub size: f64,
    /// Estimated sum of the attribute over all nodes.
    pub sum: f64,
}

impl NetworkStatistics {
    /// Assembles the statistics from the converged estimates of the four
    /// underlying instances: average, second moment, minimum, maximum, plus a
    /// counting instance average.
    pub fn from_estimates(
        mean: f64,
        second_moment: f64,
        min: f64,
        max: f64,
        count_average: f64,
    ) -> Self {
        let size = size_from_count_average(count_average);
        NetworkStatistics {
            mean,
            variance: variance_from_moments(mean, second_moment),
            min,
            max,
            size,
            sum: sum_from_mean_and_size(mean, size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn variance_and_std_dev_from_moments() {
        // Values {2, 4, 6}: mean 4, second moment 56/3, variance 8/3.
        let mean = 4.0;
        let m2 = 56.0 / 3.0;
        assert!((variance_from_moments(mean, m2) - 8.0 / 3.0).abs() < 1e-12);
        assert!((std_dev_from_moments(mean, m2) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_is_clamped_at_zero() {
        assert_eq!(variance_from_moments(10.0, 99.9999), 0.0);
        assert_eq!(std_dev_from_moments(10.0, 99.9999), 0.0);
    }

    #[test]
    fn sums_and_sizes() {
        assert_eq!(sum_from_mean_and_size(2.5, 1_000.0), 2_500.0);
        assert_eq!(size_from_count_average(0.001), 1_000.0);
        assert!(size_from_count_average(0.0).is_infinite());
    }

    #[test]
    fn indicator_fractions_are_clamped() {
        assert_eq!(fraction_from_indicator_average(0.25), 0.25);
        assert_eq!(fraction_from_indicator_average(-0.1), 0.0);
        assert_eq!(fraction_from_indicator_average(1.2), 1.0);
    }

    #[test]
    fn statistics_bundle_is_consistent() {
        // 100 nodes, values uniform 0..=9 repeated: mean 4.5, m2 = 28.5.
        let stats = NetworkStatistics::from_estimates(4.5, 28.5, 0.0, 9.0, 0.01);
        assert_eq!(stats.size, 100.0);
        assert_eq!(stats.sum, 450.0);
        assert!((stats.variance - (28.5 - 20.25)).abs() < 1e-12);
        assert_eq!(stats.min, 0.0);
        assert_eq!(stats.max, 9.0);
    }

    proptest! {
        /// The moment identity Var = E[x²] − E[x]² reproduces the direct
        /// two-pass variance for arbitrary small vectors.
        #[test]
        fn prop_variance_identity(values in proptest::collection::vec(-1e3f64..1e3, 2..50)) {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let m2 = values.iter().map(|v| v * v).sum::<f64>() / n;
            let direct = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
            let derived = variance_from_moments(mean, m2);
            prop_assert!((direct - derived).abs() < 1e-6 * (1.0 + direct.abs()));
        }

        /// Derived sums scale linearly with the size.
        #[test]
        fn prop_sum_linear_in_size(mean in -1e6f64..1e6, size in 1.0f64..1e6) {
            let sum = sum_from_mean_and_size(mean, size);
            prop_assert!((sum / size - mean).abs() < 1e-9 * (1.0 + mean.abs()));
        }
    }
}
