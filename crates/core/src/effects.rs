//! Injected runtime effects: time and entropy.
//!
//! The protocol core ([`crate::exchange::ExchangeCore`]) is a pure state
//! machine; everything environmental — *when* a cycle boundary occurs and
//! *which* random draws are made — reaches it through the traits in this
//! module. A runtime is therefore parameterised by a ([`Clock`],
//! [`EntropySource`], transport) triple: bind a [`SystemClock`] and an
//! operating-system socket and the node runs live; bind a [`VirtualClock`]
//! and an in-memory channel and the very same loop becomes a deterministic,
//! replayable execution.

use std::fmt;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A source of monotonic milliseconds-since-start timestamps, plus the
/// ability to advance time.
///
/// Real deployments use [`SystemClock`], where [`Clock::advance`] sleeps the
/// calling thread; virtual runtimes use [`VirtualClock`], where it simply
/// increments a logical counter. Protocol loops written against this trait
/// run identically under both.
pub trait Clock: Send + fmt::Debug {
    /// Milliseconds elapsed since the clock's origin.
    fn now_ms(&self) -> u64;

    /// Advances time by `ms` milliseconds: a real clock blocks the caller,
    /// a virtual clock steps its logical counter.
    fn advance(&mut self, ms: u64);
}

/// Wall-clock time: [`Clock::now_ms`] measures a monotonic
/// [`Instant`] origin and [`Clock::advance`] sleeps the thread.
///
/// # Example
///
/// ```
/// use aggregate_core::effects::{Clock, SystemClock};
///
/// let mut clock = SystemClock::new();
/// let before = clock.now_ms();
/// clock.advance(1);
/// assert!(clock.now_ms() >= before + 1);
/// ```
#[derive(Debug, Clone)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// Creates a clock whose origin is "now".
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    fn advance(&mut self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Logical time: a plain counter stepped by [`Clock::advance`], never by the
/// operating system. Drives deterministic in-memory runtimes where one
/// protocol cycle is one logical Δt.
///
/// # Example
///
/// ```
/// use aggregate_core::effects::{Clock, VirtualClock};
///
/// let mut clock = VirtualClock::new();
/// assert_eq!(clock.now_ms(), 0);
/// clock.advance(20);
/// clock.advance(20);
/// assert_eq!(clock.now_ms(), 40);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// Creates a clock at logical time zero.
    pub fn new() -> Self {
        VirtualClock { now_ms: 0 }
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now_ms
    }

    fn advance(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

/// A deterministic source of labelled 64-bit seeds.
///
/// Runtimes never call `rand::thread_rng()`; every stream of randomness they
/// use (protocol schedule, overlay construction, membership gossip, fault
/// injection) is derived from an `EntropySource` by `(run, label)`, so an
/// entire execution replays from one master seed. [`SeedSequence`] is the
/// canonical implementation.
pub trait EntropySource: fmt::Debug {
    /// The raw 64-bit seed for run number `run`.
    fn seed_for_run(&self, run: u64) -> u64;

    /// The raw 64-bit seed for a named sub-stream of a run.
    fn seed_for_labeled(&self, run: u64, label: &str) -> u64;

    /// Returns the RNG for run number `run`.
    fn rng_for_run(&self, run: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_run(run))
    }

    /// Returns the RNG for a named sub-stream of a run.
    fn rng_for_labeled(&self, run: u64, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_labeled(run, label))
    }
}

/// Derives per-run random number generators from a single master seed, so that
/// a whole experiment (e.g. "50 independent runs for every point of
/// Figure 3(a)") is reproducible from one number while every run still gets an
/// independent stream.
///
/// # Example
///
/// ```
/// use aggregate_core::effects::SeedSequence;
///
/// let seeds = SeedSequence::new(42);
/// let mut run0 = seeds.rng_for_run(0);
/// let mut run1 = seeds.rng_for_run(1);
/// // Streams are independent but reproducible.
/// use rand::Rng;
/// let a: f64 = run0.gen();
/// let b: f64 = run1.gen();
/// assert_ne!(a, b);
/// assert_eq!(a, SeedSequence::new(42).rng_for_run(0).gen::<f64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master_seed: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG for run number `run`.
    pub fn rng_for_run(&self, run: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_run(run))
    }

    /// The raw 64-bit seed behind [`SeedSequence::rng_for_run`] — for callers
    /// that derive further sub-streams (e.g. one RNG per exchange in the
    /// sharded engine) instead of instantiating an RNG directly.
    pub fn seed_for_run(&self, run: u64) -> u64 {
        Self::mix(self.master_seed, run)
    }

    /// Returns the RNG for a named sub-experiment of a run (e.g. separate
    /// streams for topology construction and protocol execution).
    pub fn rng_for_labeled(&self, run: u64, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed_for_labeled(run, label))
    }

    /// The raw 64-bit seed behind [`SeedSequence::rng_for_labeled`].
    pub fn seed_for_labeled(&self, run: u64, label: &str) -> u64 {
        Self::mix(self.master_seed ^ Self::label_hash(label), run)
    }

    /// Batched draw: fills `out[i]` with `seed_for_run(start + i)`,
    /// bit-identical to the equivalent sequence of
    /// [`SeedSequence::seed_for_run`] calls. Hot loops (the sharded engine's
    /// per-exchange loss seeds) pre-draw whole blocks through this instead of
    /// issuing one call per exchange.
    pub fn fill_block(&self, start: u64, out: &mut [u64]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Self::mix(self.master_seed, start.wrapping_add(i as u64));
        }
    }

    /// Batched labelled draw: fills `out[i]` with
    /// `seed_for_labeled(start + i, label)`, hashing the label once for the
    /// whole block instead of once per element.
    pub fn fill_block_labeled(&self, label: &str, start: u64, out: &mut [u64]) {
        let seed = self.master_seed ^ Self::label_hash(label);
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Self::mix(seed, start.wrapping_add(i as u64));
        }
    }

    /// FNV-1a over the label bytes — the sub-stream identity mixed into the
    /// master seed by every labelled draw.
    fn label_hash(label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// SplitMix64-style mixing so nearby seeds produce unrelated streams.
    fn mix(seed: u64, run: u64) -> u64 {
        let mut z = seed
            .wrapping_add(run.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl EntropySource for SeedSequence {
    fn seed_for_run(&self, run: u64) -> u64 {
        SeedSequence::seed_for_run(self, run)
    }

    fn seed_for_labeled(&self, run: u64, label: &str) -> u64 {
        SeedSequence::seed_for_labeled(self, run, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_run_same_stream() {
        let s = SeedSequence::new(7);
        let a: Vec<u32> = (0..5).map(|_| s.rng_for_run(3).gen()).collect();
        let b: Vec<u32> = (0..5).map(|_| s.rng_for_run(3).gen()).collect();
        assert_eq!(a, b);
        assert_eq!(s.master_seed(), 7);
    }

    #[test]
    fn different_runs_different_streams() {
        let s = SeedSequence::new(7);
        let a: u64 = s.rng_for_run(0).gen();
        let b: u64 = s.rng_for_run(1).gen();
        let c: u64 = s.rng_for_run(2).gen();
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn different_masters_different_streams() {
        let a: u64 = SeedSequence::new(1).rng_for_run(0).gen();
        let b: u64 = SeedSequence::new(2).rng_for_run(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn labeled_streams_are_independent() {
        let s = SeedSequence::new(9);
        let topo: u64 = s.rng_for_labeled(0, "topology").gen();
        let proto: u64 = s.rng_for_labeled(0, "protocol").gen();
        let plain: u64 = s.rng_for_run(0).gen();
        assert_ne!(topo, proto);
        assert_ne!(topo, plain);
        // Reproducible.
        assert_eq!(topo, s.rng_for_labeled(0, "topology").gen::<u64>());
    }

    #[test]
    fn entropy_source_object_matches_inherent_methods() {
        let s = SeedSequence::new(11);
        let dynamic: &dyn EntropySource = &s;
        assert_eq!(dynamic.seed_for_run(4), s.seed_for_run(4));
        assert_eq!(
            dynamic.seed_for_labeled(0, "overlay"),
            s.seed_for_labeled(0, "overlay")
        );
        assert_eq!(
            dynamic.rng_for_run(2).gen::<u64>(),
            s.rng_for_run(2).gen::<u64>()
        );
        assert_eq!(
            dynamic.rng_for_labeled(1, "x").gen::<u64>(),
            s.rng_for_labeled(1, "x").gen::<u64>()
        );
    }

    #[test]
    fn fill_block_equals_sequential_draws_bit_for_bit() {
        let s = SeedSequence::new(0xdead_beef);
        for start in [0u64, 1, 17, u64::MAX - 5] {
            let mut block = [0u64; 33];
            s.fill_block(start, &mut block);
            for (i, &drawn) in block.iter().enumerate() {
                assert_eq!(drawn, s.seed_for_run(start.wrapping_add(i as u64)));
            }
        }
    }

    #[test]
    fn fill_block_labeled_equals_sequential_labeled_draws_bit_for_bit() {
        let s = SeedSequence::new(20040102);
        for label in ["cycle-loss", "cycle-schedule", ""] {
            let mut block = [0u64; 64];
            s.fill_block_labeled(label, 5, &mut block);
            for (i, &drawn) in block.iter().enumerate() {
                assert_eq!(drawn, s.seed_for_labeled(5 + i as u64, label));
            }
        }
    }

    #[test]
    fn fill_block_handles_empty_output() {
        let s = SeedSequence::new(3);
        let mut empty: [u64; 0] = [];
        s.fill_block(0, &mut empty);
        s.fill_block_labeled("x", 0, &mut empty);
    }

    #[test]
    fn virtual_clock_steps_logically() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.advance(15);
        clock.advance(5);
        assert_eq!(clock.now_ms(), 20);
        clock.advance(u64::MAX);
        assert_eq!(clock.now_ms(), u64::MAX);
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now_ms();
        let b = clock.now_ms();
        assert!(b >= a);
    }
}
