//! Epoch management: termination, restart and join handling (Section 4).
//!
//! The basic protocol converges but never terminates; to make it adaptive the
//! paper divides execution into consecutive *epochs*. Every node runs the
//! protocol for a fixed number of cycles per epoch, then restarts it from its
//! (possibly changed) local value. Messages are tagged with the epoch
//! identifier; receiving a message from a later epoch makes the node jump
//! forward immediately, so a new epoch spreads through the network like an
//! epidemic broadcast. Nodes that join mid-epoch are told the identifier of
//! the *next* epoch and how long to wait for it, and stay passive until then —
//! this is what keeps each epoch's result exact with respect to the
//! membership at the epoch's start.

use serde::{Deserialize, Serialize};

/// What happened to the epoch state as a result of a cycle tick or a received
/// message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EpochTransition {
    /// The node stayed in the same epoch.
    None,
    /// The node finished its quota of cycles and moved to the next epoch.
    Completed {
        /// The epoch that just finished.
        finished: u64,
        /// The epoch that is now current.
        current: u64,
    },
    /// The node jumped forward because it observed a message from a later
    /// epoch.
    Jumped {
        /// The epoch the node was in before the jump.
        from: u64,
        /// The epoch that is now current.
        to: u64,
    },
}

/// Tracks which epoch a node is in and how far through it the node has
/// progressed.
///
/// # Example
///
/// ```
/// use aggregate_core::epoch::{EpochManager, EpochTransition};
///
/// let mut epochs = EpochManager::new(3, 0);
/// assert_eq!(epochs.tick_cycle(), EpochTransition::None);
/// assert_eq!(epochs.tick_cycle(), EpochTransition::None);
/// assert_eq!(
///     epochs.tick_cycle(),
///     EpochTransition::Completed { finished: 0, current: 1 }
/// );
/// assert_eq!(epochs.current_epoch(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochManager {
    current_epoch: u64,
    cycle_in_epoch: u32,
    cycles_per_epoch: u32,
    /// Cycles this node must still wait before it may participate (join rule).
    waiting_cycles: u32,
    /// The current epoch was entered part-way through (epoch jump), so this
    /// node's converged estimate for it is not trustworthy.
    entered_mid_epoch: bool,
}

impl EpochManager {
    /// Creates a manager for a node present from the very start of
    /// `start_epoch`, advancing every `cycles_per_epoch` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_epoch` is zero.
    pub fn new(cycles_per_epoch: u32, start_epoch: u64) -> Self {
        assert!(cycles_per_epoch > 0, "cycles_per_epoch must be positive");
        EpochManager {
            current_epoch: start_epoch,
            cycle_in_epoch: 0,
            cycles_per_epoch,
            waiting_cycles: 0,
            entered_mid_epoch: false,
        }
    }

    /// Creates a manager for a node that *joins* an existing network.
    ///
    /// The contacted node reports the identifier of the next epoch and the
    /// number of cycles left until it starts; the joining node stays passive
    /// for that long (Section 4's join protocol: "the node will start to
    /// actively participate in the aggregation protocol after the specified
    /// units of time").
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_epoch` is zero.
    pub fn joining(cycles_per_epoch: u32, next_epoch: u64, cycles_until_start: u32) -> Self {
        assert!(cycles_per_epoch > 0, "cycles_per_epoch must be positive");
        EpochManager {
            current_epoch: next_epoch,
            cycle_in_epoch: 0,
            cycles_per_epoch,
            waiting_cycles: cycles_until_start,
            entered_mid_epoch: false,
        }
    }

    /// The epoch this node currently executes (or waits for).
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Number of cycles completed in the current epoch.
    pub fn cycle_in_epoch(&self) -> u32 {
        self.cycle_in_epoch
    }

    /// Number of cycles each epoch lasts.
    pub fn cycles_per_epoch(&self) -> u32 {
        self.cycles_per_epoch
    }

    /// Whether the node may actively initiate exchanges right now. A joining
    /// node is passive until the epoch it was told to wait for starts.
    #[inline]
    pub fn can_participate(&self) -> bool {
        self.waiting_cycles == 0
    }

    /// Whether this node has been participating in the current epoch since the
    /// epoch's first cycle. Only such nodes report converged estimates at the
    /// end of the epoch (Figure 4's error bars are computed over exactly these
    /// nodes).
    pub fn participated_from_epoch_start(&self) -> bool {
        self.waiting_cycles == 0 && !self.entered_mid_epoch
    }

    /// Writes back an epoch position recorded by an external dense mirror
    /// (the sharded engine's struct-of-arrays hot store ticks epochs for
    /// steady-state nodes outside the `ProtocolNode` and syncs through this
    /// on demand). The caller guarantees the manager is in the participating
    /// steady state — not waiting, not entered mid-epoch — so only the
    /// position fields need restoring.
    pub fn restore_position(&mut self, epoch: u64, cycle_in_epoch: u32) {
        debug_assert!(self.waiting_cycles == 0 && !self.entered_mid_epoch);
        self.current_epoch = epoch;
        self.cycle_in_epoch = cycle_in_epoch;
    }

    /// Registers the completion of one protocol cycle.
    ///
    /// While the node is still waiting for its first epoch this only counts
    /// down the wait; afterwards it advances the position inside the epoch and
    /// reports [`EpochTransition::Completed`] when the epoch's cycle quota is
    /// reached.
    pub fn tick_cycle(&mut self) -> EpochTransition {
        if self.waiting_cycles > 0 {
            self.waiting_cycles -= 1;
            return EpochTransition::None;
        }
        self.cycle_in_epoch += 1;
        if self.cycle_in_epoch >= self.cycles_per_epoch {
            let finished = self.current_epoch;
            self.current_epoch += 1;
            self.cycle_in_epoch = 0;
            self.entered_mid_epoch = false;
            EpochTransition::Completed {
                finished,
                current: self.current_epoch,
            }
        } else {
            EpochTransition::None
        }
    }

    /// Registers the epoch identifier seen on an incoming message.
    ///
    /// If it is newer than the local epoch the node jumps forward immediately
    /// ("to avoid drift, if a node receives a message with an identifier
    /// larger than its current one, it switches to the new epoch
    /// immediately"). A message carrying exactly the epoch a joining node is
    /// waiting for ends the wait: the new epoch has evidently started.
    pub fn observe_remote_epoch(&mut self, remote_epoch: u64) -> EpochTransition {
        if remote_epoch > self.current_epoch {
            let from = self.current_epoch;
            self.current_epoch = remote_epoch;
            self.cycle_in_epoch = 0;
            self.waiting_cycles = 0;
            self.entered_mid_epoch = true;
            EpochTransition::Jumped {
                from,
                to: remote_epoch,
            }
        } else {
            if remote_epoch == self.current_epoch && self.waiting_cycles > 0 {
                // The awaited epoch has started somewhere in the network.
                self.waiting_cycles = 0;
            }
            EpochTransition::None
        }
    }

    /// Whether a message stamped with `remote_epoch` is stale (older than the
    /// local epoch) and should be ignored.
    #[inline]
    pub fn is_stale(&self, remote_epoch: u64) -> bool {
        remote_epoch < self.current_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_per_epoch_is_rejected() {
        let _ = EpochManager::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cycles_per_epoch_is_rejected_for_joining_nodes() {
        let _ = EpochManager::joining(0, 1, 5);
    }

    #[test]
    fn epoch_advances_after_the_configured_number_of_cycles() {
        let mut m = EpochManager::new(30, 0);
        for cycle in 0..29 {
            assert_eq!(m.tick_cycle(), EpochTransition::None, "cycle {cycle}");
        }
        assert_eq!(
            m.tick_cycle(),
            EpochTransition::Completed {
                finished: 0,
                current: 1
            }
        );
        assert_eq!(m.current_epoch(), 1);
        assert_eq!(m.cycle_in_epoch(), 0);
        assert_eq!(m.cycles_per_epoch(), 30);
    }

    #[test]
    fn remote_epoch_jump_is_immediate_and_resets_progress() {
        let mut m = EpochManager::new(10, 2);
        m.tick_cycle();
        m.tick_cycle();
        assert_eq!(m.cycle_in_epoch(), 2);
        assert_eq!(
            m.observe_remote_epoch(5),
            EpochTransition::Jumped { from: 2, to: 5 }
        );
        assert_eq!(m.current_epoch(), 5);
        assert_eq!(m.cycle_in_epoch(), 0);
        assert!(!m.participated_from_epoch_start());
        // Older or equal epochs never move the node backwards.
        assert_eq!(m.observe_remote_epoch(4), EpochTransition::None);
        assert_eq!(m.observe_remote_epoch(5), EpochTransition::None);
        assert_eq!(m.current_epoch(), 5);
    }

    #[test]
    fn a_jumped_node_recovers_full_participation_next_epoch() {
        let mut m = EpochManager::new(3, 0);
        m.observe_remote_epoch(2);
        assert!(!m.participated_from_epoch_start());
        for _ in 0..3 {
            m.tick_cycle();
        }
        assert_eq!(m.current_epoch(), 3);
        assert!(m.participated_from_epoch_start());
    }

    #[test]
    fn staleness_check() {
        let m = EpochManager::new(10, 7);
        assert!(m.is_stale(6));
        assert!(!m.is_stale(7));
        assert!(!m.is_stale(8));
    }

    #[test]
    fn joining_node_waits_out_the_current_epoch() {
        let mut m = EpochManager::joining(10, 4, 3);
        assert!(!m.can_participate());
        assert_eq!(m.current_epoch(), 4);
        // Messages from the still-running epoch 3 are stale for it.
        assert!(m.is_stale(3));
        for _ in 0..3 {
            assert_eq!(m.tick_cycle(), EpochTransition::None);
        }
        assert!(m.can_participate());
        assert!(m.participated_from_epoch_start());
        assert_eq!(m.cycle_in_epoch(), 0);
    }

    #[test]
    fn awaited_epoch_message_ends_the_wait_without_marking_partial() {
        let mut m = EpochManager::joining(10, 4, 5);
        assert!(!m.can_participate());
        assert_eq!(m.observe_remote_epoch(4), EpochTransition::None);
        assert!(m.can_participate());
        assert!(m.participated_from_epoch_start());
    }

    #[test]
    fn later_epoch_message_during_wait_jumps_and_marks_partial() {
        let mut m = EpochManager::joining(10, 4, 5);
        assert_eq!(
            m.observe_remote_epoch(6),
            EpochTransition::Jumped { from: 4, to: 6 }
        );
        assert!(m.can_participate());
        assert!(!m.participated_from_epoch_start());
    }

    #[test]
    fn fresh_nodes_participate_from_the_start() {
        let m = EpochManager::new(5, 0);
        assert!(m.can_participate());
        assert!(m.participated_from_epoch_start());
    }
}
