//! Error type for the aggregation protocol.

use std::error::Error;
use std::fmt;

/// Errors reported by the anti-entropy aggregation protocol.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AggregationError {
    /// A configuration parameter was invalid (zero cycle length, empty value
    /// vector, probability outside `[0, 1]`, …).
    InvalidConfig {
        /// Human readable explanation.
        reason: String,
    },
    /// An exchange referenced an epoch that this node has already completed.
    StaleEpoch {
        /// Epoch carried by the message.
        message_epoch: u64,
        /// Epoch the node is currently in.
        local_epoch: u64,
    },
    /// An operation referenced an aggregation instance that does not exist on
    /// this node.
    UnknownInstance {
        /// Identifier of the missing instance.
        instance: u64,
    },
    /// The value vector handed to a whole-network algorithm was empty.
    EmptyNetwork,
    /// A numeric argument was not finite (NaN or infinite).
    NonFiniteValue {
        /// The offending value.
        value: f64,
        /// Name of the argument.
        what: &'static str,
    },
}

impl AggregationError {
    /// Convenience constructor for [`AggregationError::InvalidConfig`].
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        AggregationError::InvalidConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AggregationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregationError::InvalidConfig { reason } => {
                write!(f, "invalid configuration: {reason}")
            }
            AggregationError::StaleEpoch {
                message_epoch,
                local_epoch,
            } => write!(
                f,
                "stale epoch {message_epoch} (local epoch is {local_epoch})"
            ),
            AggregationError::UnknownInstance { instance } => {
                write!(f, "unknown aggregation instance {instance}")
            }
            AggregationError::EmptyNetwork => write!(f, "the network contains no nodes"),
            AggregationError::NonFiniteValue { value, what } => {
                write!(f, "{what} must be finite, got {value}")
            }
        }
    }
}

impl Error for AggregationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AggregationError::invalid_config("cycle length is zero")
            .to_string()
            .contains("cycle length is zero"));
        assert!(AggregationError::StaleEpoch {
            message_epoch: 3,
            local_epoch: 7
        }
        .to_string()
        .contains("stale epoch 3"));
        assert!(AggregationError::UnknownInstance { instance: 9 }
            .to_string()
            .contains("instance 9"));
        assert!(AggregationError::EmptyNetwork
            .to_string()
            .contains("no nodes"));
        assert!(AggregationError::NonFiniteValue {
            value: f64::NAN,
            what: "estimate"
        }
        .to_string()
        .contains("estimate"));
    }

    #[test]
    fn error_satisfies_std_bounds() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<AggregationError>();
    }

    #[test]
    fn invalid_config_constructor() {
        let err = AggregationError::invalid_config(String::from("bad"));
        assert_eq!(
            err,
            AggregationError::InvalidConfig {
                reason: "bad".to_string()
            }
        );
    }
}
