//! The `AVG` algorithm (Figure 2 of the paper): whole-network view of one
//! cycle of anti-entropy averaging as an in-place variance-reduction pass over
//! a vector of values.
//!
//! This module is the engine behind the reproduction of Figure 3 and the
//! convergence-rate table: it runs cycles of elementary exchanges driven by a
//! [`PairSelector`] and reports the empirical statistics (mean, variance,
//! per-cycle reduction factor, per-node contact counts) that the paper plots.

use crate::aggregate::{Aggregate, Average};
use crate::selectors::PairSelector;
use crate::AggregationError;
use overlay_topology::Topology;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Empirical mean of a value vector (`ā` in equation (2) of the paper).
///
/// # Example
///
/// ```
/// use aggregate_core::avg::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Empirical variance of a value vector with the `1/(N−1)` normalisation used
/// in equation (3) of the paper.
///
/// Returns `0.0` for vectors with fewer than two elements.
///
/// # Example
///
/// ```
/// use aggregate_core::avg::variance;
/// let v = variance(&[1.0, 2.0, 3.0, 4.0]);
/// assert!((v - 5.0 / 3.0).abs() < 1e-12);
/// ```
pub fn variance(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n as f64 - 1.0)
}

/// Report of a single cycle of the `AVG` algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CycleReport {
    /// Cycle index (0-based) within the run.
    pub cycle: usize,
    /// Number of elementary exchanges actually performed (slots for which the
    /// selector produced a valid pair).
    pub exchanges: usize,
    /// Empirical variance before the cycle, `σ²_i`.
    pub variance_before: f64,
    /// Empirical variance after the cycle, `σ²_{i+1}`.
    pub variance_after: f64,
    /// Empirical mean after the cycle (must stay constant for averaging).
    pub mean_after: f64,
    /// Per-node contact counts during this cycle — the realisation of the
    /// random variable `φ` of Theorem 1.
    pub contacts: Vec<u32>,
}

impl CycleReport {
    /// The observed per-cycle variance-reduction factor `σ²_{i+1} / σ²_i`
    /// (the quantity plotted in Figure 3), or `None` when the variance before
    /// the cycle was already zero.
    pub fn reduction_factor(&self) -> Option<f64> {
        if self.variance_before > 0.0 {
            Some(self.variance_after / self.variance_before)
        } else {
            None
        }
    }

    /// The empirical value of `E(2^-φ)` for this cycle, i.e. the average of
    /// `2^-contacts` over all nodes — Theorem 1 predicts the variance
    /// reduction factor from this quantity.
    pub fn empirical_phi_reduction(&self) -> f64 {
        if self.contacts.is_empty() {
            return 1.0;
        }
        self.contacts
            .iter()
            .map(|&c| 2.0f64.powi(-(c as i32)))
            .sum::<f64>()
            / self.contacts.len() as f64
    }
}

/// Runs one cycle of the `AVG` algorithm (Figure 2) in place: performs `N`
/// `GETPAIR` slots, replacing both selected values by `aggregate.merge` of the
/// pair.
///
/// Returns the per-cycle report. The `cycle` argument is only used to label
/// the report.
///
/// # Errors
///
/// Returns [`AggregationError::EmptyNetwork`] when `values` is empty and
/// [`AggregationError::InvalidConfig`] when the value vector length does not
/// match the topology size.
pub fn run_cycle_with(
    values: &mut [f64],
    topology: &dyn Topology,
    selector: &mut dyn PairSelector,
    aggregate: &dyn Aggregate,
    rng: &mut dyn RngCore,
    cycle: usize,
) -> Result<CycleReport, AggregationError> {
    let n = values.len();
    if n == 0 {
        return Err(AggregationError::EmptyNetwork);
    }
    if n != topology.len() {
        return Err(AggregationError::invalid_config(format!(
            "value vector has {n} entries but the topology has {} nodes",
            topology.len()
        )));
    }

    let variance_before = variance(values);
    let mut contacts = vec![0u32; n];
    let mut exchanges = 0usize;

    selector.begin_cycle(topology, rng);
    for _ in 0..n {
        let Some((i, j)) = selector.next_pair(topology, rng) else {
            continue;
        };
        let merged = aggregate.merge(values[i.index()], values[j.index()]);
        values[i.index()] = merged;
        values[j.index()] = merged;
        contacts[i.index()] += 1;
        contacts[j.index()] += 1;
        exchanges += 1;
    }

    Ok(CycleReport {
        cycle,
        exchanges,
        variance_before,
        variance_after: variance(values),
        mean_after: mean(values),
        contacts,
    })
}

/// Runs one cycle of plain anti-entropy *averaging* (the paper's `AVG`).
///
/// Equivalent to [`run_cycle_with`] with the [`Average`] aggregate.
pub fn run_avg_cycle(
    values: &mut [f64],
    topology: &dyn Topology,
    selector: &mut dyn PairSelector,
    rng: &mut dyn RngCore,
    cycle: usize,
) -> Result<CycleReport, AggregationError> {
    run_cycle_with(values, topology, selector, &Average, rng, cycle)
}

/// Runs `cycles` consecutive cycles of anti-entropy averaging and returns one
/// report per cycle.
///
/// This is the exact procedure behind Figure 3(b): iterate `AVG` on the same
/// vector and record `σ²_i / σ²_{i-1}` for each cycle.
///
/// # Errors
///
/// Propagates the errors of [`run_cycle_with`].
///
/// # Example
///
/// ```
/// use aggregate_core::avg::run_avg;
/// use aggregate_core::selectors::SequentialSelector;
/// use overlay_topology::CompleteTopology;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let topo = CompleteTopology::new(100);
/// let mut values: Vec<f64> = (0..100).map(f64::from).collect();
/// let mut selector = SequentialSelector::new();
/// let reports = run_avg(&mut values, &topo, &mut selector, &mut rng, 20)?;
/// // After 20 cycles every node is very close to the true average 49.5.
/// assert!(values.iter().all(|v| (v - 49.5).abs() < 0.1));
/// assert_eq!(reports.len(), 20);
/// # Ok::<(), aggregate_core::AggregationError>(())
/// ```
pub fn run_avg(
    values: &mut [f64],
    topology: &dyn Topology,
    selector: &mut dyn PairSelector,
    rng: &mut dyn RngCore,
    cycles: usize,
) -> Result<Vec<CycleReport>, AggregationError> {
    let mut reports = Vec::with_capacity(cycles);
    for cycle in 0..cycles {
        reports.push(run_avg_cycle(values, topology, selector, rng, cycle)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Maximum;
    use crate::selectors::{
        PerfectMatchingSelector, RandomEdgeSelector, SelectorKind, SequentialSelector,
    };
    use crate::theory;
    use overlay_topology::{generators, CompleteTopology};
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    fn uniform_values(n: usize, rng: &mut impl rand::Rng) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()
    }

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[2.0, 4.0]), 2.0);
        assert_eq!(variance(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn empty_and_mismatched_inputs_are_rejected() {
        let mut r = rng();
        let topo = CompleteTopology::new(4);
        let mut selector = SequentialSelector::new();
        let err = run_avg_cycle(&mut [], &topo, &mut selector, &mut r, 0).unwrap_err();
        assert_eq!(err, AggregationError::EmptyNetwork);

        let mut values = vec![1.0; 3];
        let err = run_avg_cycle(&mut values, &topo, &mut selector, &mut r, 0).unwrap_err();
        assert!(matches!(err, AggregationError::InvalidConfig { .. }));
    }

    #[test]
    fn averaging_preserves_the_mean_exactly() {
        // Mass conservation at network scale: the mean never drifts, which is
        // what makes the protocol produce the *correct* average.
        let mut r = rng();
        let topo = CompleteTopology::new(500);
        let mut values = uniform_values(500, &mut r);
        let initial_mean = mean(&values);
        let mut selector = SequentialSelector::new();
        let reports = run_avg(&mut values, &topo, &mut selector, &mut r, 15).unwrap();
        for report in &reports {
            assert!(
                (report.mean_after - initial_mean).abs() < 1e-9,
                "mean drifted to {} (expected {initial_mean})",
                report.mean_after
            );
        }
    }

    #[test]
    fn variance_is_monotonically_non_increasing() {
        let mut r = rng();
        let topo = CompleteTopology::new(300);
        let mut values = uniform_values(300, &mut r);
        let mut selector = RandomEdgeSelector::new();
        let reports = run_avg(&mut values, &topo, &mut selector, &mut r, 20).unwrap();
        for report in &reports {
            assert!(report.variance_after <= report.variance_before + 1e-15);
        }
    }

    #[test]
    fn all_nodes_converge_to_the_true_average() {
        let mut r = rng();
        let n = 1_000;
        let topo = CompleteTopology::new(n);
        let mut values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let true_avg = mean(&values);
        let mut selector = SequentialSelector::new();
        run_avg(&mut values, &topo, &mut selector, &mut r, 30).unwrap();
        for v in &values {
            assert!(
                (v - true_avg).abs() < 1e-3 * true_avg.abs().max(1.0),
                "node estimate {v} too far from {true_avg}"
            );
        }
    }

    #[test]
    fn perfect_matching_reduces_variance_by_exactly_one_quarter_in_expectation() {
        // E1 sanity check at unit-test scale: the PM reduction factor is very
        // close to 1/4 on uncorrelated initial values.
        let mut r = rng();
        let n = 20_000;
        let topo = CompleteTopology::new(n);
        let mut values = uniform_values(n, &mut r);
        let mut selector = PerfectMatchingSelector::new();
        let report = run_avg_cycle(&mut values, &topo, &mut selector, &mut r, 0).unwrap();
        let factor = report.reduction_factor().unwrap();
        assert!(
            (factor - theory::PM_RATE).abs() < 0.02,
            "PM reduction factor {factor} should be ≈ 0.25"
        );
        assert!(report.contacts.iter().all(|&c| c == 2));
    }

    #[test]
    fn random_selector_reduction_close_to_one_over_e() {
        let mut r = rng();
        let n = 20_000;
        let topo = CompleteTopology::new(n);
        let mut values = uniform_values(n, &mut r);
        let mut selector = RandomEdgeSelector::new();
        let report = run_avg_cycle(&mut values, &topo, &mut selector, &mut r, 0).unwrap();
        let factor = report.reduction_factor().unwrap();
        assert!(
            (factor - theory::rand_rate()).abs() < 0.03,
            "RAND reduction factor {factor} should be ≈ {}",
            theory::rand_rate()
        );
    }

    #[test]
    fn sequential_selector_reduction_close_to_paper_rate() {
        let mut r = rng();
        let n = 20_000;
        let topo = CompleteTopology::new(n);
        let mut values = uniform_values(n, &mut r);
        let mut selector = SequentialSelector::new();
        let report = run_avg_cycle(&mut values, &topo, &mut selector, &mut r, 0).unwrap();
        let factor = report.reduction_factor().unwrap();
        assert!(
            (factor - theory::seq_rate()).abs() < 0.03,
            "SEQ reduction factor {factor} should be ≈ {}",
            theory::seq_rate()
        );
    }

    #[test]
    fn works_on_the_twenty_regular_random_overlay() {
        // The paper's second topology: 20-regular random graph.
        let mut r = rng();
        let n = 5_000;
        let graph = generators::random_regular(n, 20, &mut r).unwrap();
        let mut values = uniform_values(n, &mut r);
        let true_avg = mean(&values);
        let mut selector = SequentialSelector::new();
        let reports = run_avg(&mut values, &graph, &mut selector, &mut r, 25).unwrap();
        // Converged to the true average.
        assert!(values.iter().all(|v| (v - true_avg).abs() < 1e-4));
        // First-cycle reduction factor close to the theoretical SEQ rate
        // (Figure 3(a) shows the 20-regular curve is indistinguishable from
        // the complete graph for getPair_seq).
        let factor = reports[0].reduction_factor().unwrap();
        assert!((factor - theory::seq_rate()).abs() < 0.05);
    }

    #[test]
    fn theorem_one_links_phi_to_variance_reduction() {
        // The empirical E(2^-φ) of a cycle predicts the observed variance
        // reduction (equation (7)).
        let mut r = rng();
        let n = 20_000;
        let topo = CompleteTopology::new(n);
        for kind in SelectorKind::all() {
            let mut values = uniform_values(n, &mut r);
            let mut selector = kind.instantiate();
            let report = run_avg_cycle(&mut values, &topo, selector.as_mut(), &mut r, 0).unwrap();
            let predicted = report.empirical_phi_reduction();
            let observed = report.reduction_factor().unwrap();
            assert!(
                (predicted - observed).abs() < 0.03,
                "{kind:?}: observed reduction {observed} vs phi-predicted {predicted}"
            );
        }
    }

    #[test]
    fn max_aggregate_spreads_the_maximum_epidemically() {
        let mut r = rng();
        let n = 1_000;
        let topo = CompleteTopology::new(n);
        let mut values = vec![0.0; n];
        values[123] = 42.0;
        let mut selector = SequentialSelector::new();
        // log2(1000) ≈ 10 cycles of push-pull broadcast are plenty.
        for cycle in 0..15 {
            run_cycle_with(&mut values, &topo, &mut selector, &Maximum, &mut r, cycle).unwrap();
        }
        assert!(values.iter().all(|&v| v == 42.0));
    }

    #[test]
    fn cycle_report_helpers() {
        let report = CycleReport {
            cycle: 3,
            exchanges: 10,
            variance_before: 4.0,
            variance_after: 1.0,
            mean_after: 0.5,
            contacts: vec![2, 2],
        };
        assert_eq!(report.reduction_factor(), Some(0.25));
        assert_eq!(report.empirical_phi_reduction(), 0.25);

        let degenerate = CycleReport {
            variance_before: 0.0,
            contacts: vec![],
            ..report
        };
        assert_eq!(degenerate.reduction_factor(), None);
        assert_eq!(degenerate.empirical_phi_reduction(), 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// For arbitrary initial vectors, averaging preserves the mean and
        /// never increases the variance, on both complete and sparse overlays.
        #[test]
        fn prop_mean_preserved_variance_reduced(
            values in proptest::collection::vec(-1e6f64..1e6, 10..60),
            seed in 0u64..1000,
        ) {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            let n = values.len();
            let topo = CompleteTopology::new(n);
            let mut working = values.clone();
            let initial_mean = mean(&working);
            let initial_var = variance(&working);
            let mut selector = SequentialSelector::new();
            run_avg(&mut working, &topo, &mut selector, &mut r, 5).unwrap();
            prop_assert!((mean(&working) - initial_mean).abs() < 1e-6 * (1.0 + initial_mean.abs()));
            prop_assert!(variance(&working) <= initial_var * (1.0 + 1e-9) + 1e-9);
        }
    }
}
