//! Closed-form convergence theory from Section 3 of the paper.
//!
//! The central quantity is the per-cycle variance-reduction factor
//! `ρ = E(2^-φ)`, where `φ` is the number of exchanges a node participates in
//! during one cycle (Theorem 1): `E(σ²_{i+1}) ≈ ρ · E(σ²_i)`. This module
//! provides the paper's closed forms, the distributions of `φ` and utility
//! functions (cycles needed for a target accuracy, predicted variance decay)
//! used throughout the benchmarks (see the workspace `DESIGN.md` for the
//! paper-to-bench mapping).

use crate::AggregationError;

/// Euler's number, re-exported for readability of the formulas below.
pub const E: f64 = std::f64::consts::E;

/// Per-cycle variance-reduction factor of `GETPAIR_PM` (perfect matching):
/// every node is selected exactly twice per cycle, so `E(2^-φ) = 2⁻² = 1/4`.
/// The paper proves this is optimal (Lemma 2).
pub const PM_RATE: f64 = 0.25;

/// Per-cycle variance-reduction factor of `GETPAIR_RAND`: `φ` is Poisson(2)
/// distributed, giving `E(2^-φ) = e^(-2) · e^(2/2) = 1/e ≈ 0.368`
/// (equation (10) of the paper).
pub fn rand_rate() -> f64 {
    expected_reduction_poisson(2.0)
}

/// Per-cycle variance-reduction factor of `GETPAIR_SEQ` (analysed through the
/// `GETPAIR_PMRAND` proxy): `φ = 1 + φ'` with `φ'` Poisson(1) distributed,
/// giving `E(2^-φ) = 1/(2√e) ≈ 0.303` (equation (12) of the paper).
pub fn seq_rate() -> f64 {
    expected_reduction_shifted_poisson(1.0)
}

/// `E(2^-φ)` for `φ ~ Poisson(λ)`.
///
/// Closed form: `Σ_j 2^-j λ^j e^-λ / j! = e^-λ · e^(λ/2) = e^(-λ/2)`.
///
/// # Example
///
/// ```
/// use aggregate_core::theory::expected_reduction_poisson;
/// // The paper's GETPAIR_RAND case: λ = 2 gives 1/e.
/// assert!((expected_reduction_poisson(2.0) - 1.0 / std::f64::consts::E).abs() < 1e-12);
/// ```
pub fn expected_reduction_poisson(lambda: f64) -> f64 {
    (-lambda / 2.0).exp()
}

/// `E(2^-φ)` for `φ = 1 + φ'` with `φ' ~ Poisson(λ)`.
///
/// Closed form: `½ · e^(-λ/2)`. The paper's `GETPAIR_SEQ`/`GETPAIR_PMRAND`
/// case is `λ = 1`, giving `1/(2√e)`.
pub fn expected_reduction_shifted_poisson(lambda: f64) -> f64 {
    0.5 * (-lambda / 2.0).exp()
}

/// Probability mass function of the Poisson(λ) distribution at `k`.
///
/// Used by the φ-distribution validation tests and by the benchmark that
/// reports the empirical distribution of per-node contacts next to the model.
pub fn poisson_pmf(lambda: f64, k: u32) -> f64 {
    let mut log_factorial = 0.0;
    for i in 1..=k {
        log_factorial += f64::from(i).ln();
    }
    (f64::from(k) * lambda.ln() - lambda - log_factorial).exp()
}

/// Number of cycles needed to reduce the variance to `target_ratio` of its
/// initial value when each cycle multiplies the variance by `rate`.
///
/// This is the quantitative form of the paper's Section 5 claim: "the variance
/// over the network will decrease 99.9 % in ln 1000 ≈ 7 cycles of AVG" (with
/// `GETPAIR_RAND`, whose rate is `1/e`).
///
/// # Errors
///
/// Returns [`AggregationError::InvalidConfig`] if `rate` is not in `(0, 1)` or
/// `target_ratio` is not in `(0, 1]`.
///
/// # Example
///
/// ```
/// use aggregate_core::theory::{cycles_for_accuracy, rand_rate};
/// // 99.9% reduction with getPair_rand takes ln(1000) ≈ 6.9 → 7 cycles.
/// assert_eq!(cycles_for_accuracy(rand_rate(), 1e-3)?, 7);
/// # Ok::<(), aggregate_core::AggregationError>(())
/// ```
pub fn cycles_for_accuracy(rate: f64, target_ratio: f64) -> Result<u32, AggregationError> {
    if !(rate > 0.0 && rate < 1.0) {
        return Err(AggregationError::invalid_config(format!(
            "reduction rate must be in (0, 1), got {rate}"
        )));
    }
    if !(target_ratio > 0.0 && target_ratio <= 1.0) {
        return Err(AggregationError::invalid_config(format!(
            "target ratio must be in (0, 1], got {target_ratio}"
        )));
    }
    // Both logarithms are negative, so the ratio is the (positive) number of
    // cycles; round up, with a small tolerance so exact multiples stay exact.
    let ratio = target_ratio.ln() / rate.ln();
    Ok((ratio - 1e-9).ceil().max(0.0) as u32)
}

/// Predicted ratio `σ²_k / σ²_0` after `cycles` cycles at per-cycle reduction
/// factor `rate` (pure geometric decay, equation (7) of the paper applied
/// repeatedly).
pub fn predicted_variance_ratio(rate: f64, cycles: u32) -> f64 {
    rate.powi(cycles as i32)
}

/// Expected variance reduction of a single elementary exchange between two
/// uncorrelated participants, relative to their contribution (Lemma 1).
///
/// For uncorrelated values with zero mean, replacing both `a_i` and `a_j` by
/// their average removes, in expectation, half of each one's contribution to
/// the empirical variance:
/// `E(σ²_a − σ²_a') = (E(a_i²) + E(a_j²)) / (2(N−1))`.
///
/// This helper returns that expected reduction for given second moments and
/// network size, and is used by tests validating Lemma 1 empirically.
pub fn lemma1_expected_reduction(second_moment_i: f64, second_moment_j: f64, n: usize) -> f64 {
    assert!(n >= 2, "Lemma 1 needs at least two nodes");
    (second_moment_i + second_moment_j) / (2.0 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_match_paper_constants() {
        assert!((PM_RATE - 0.25).abs() < 1e-15);
        assert!((rand_rate() - 1.0 / E).abs() < 1e-15);
        assert!((seq_rate() - 1.0 / (2.0 * E.sqrt())).abs() < 1e-15);
        // Numerical values quoted in the paper's Figure 3 caption.
        assert!((rand_rate() - 0.368).abs() < 1e-3);
        assert!((seq_rate() - 0.303).abs() < 1e-3);
    }

    #[test]
    fn ordering_of_rates_is_pm_fastest_rand_slowest() {
        assert!(PM_RATE < seq_rate());
        assert!(seq_rate() < rand_rate());
        assert!(rand_rate() < 1.0);
    }

    #[test]
    fn poisson_reduction_matches_series_evaluation() {
        for lambda in [0.5, 1.0, 2.0, 3.5] {
            let series: f64 = (0..200)
                .map(|j| 2.0f64.powi(-j) * poisson_pmf(lambda, j as u32))
                .sum();
            assert!(
                (series - expected_reduction_poisson(lambda)).abs() < 1e-12,
                "series and closed form disagree for lambda={lambda}"
            );
        }
    }

    #[test]
    fn shifted_poisson_reduction_matches_series_evaluation() {
        for lambda in [0.5, 1.0, 2.0] {
            let series: f64 = (0..200)
                .map(|j| 2.0f64.powi(-(j + 1)) * poisson_pmf(lambda, j as u32))
                .sum();
            assert!(
                (series - expected_reduction_shifted_poisson(lambda)).abs() < 1e-12,
                "series and closed form disagree for lambda={lambda}"
            );
        }
    }

    #[test]
    fn poisson_pmf_is_a_distribution() {
        for lambda in [0.1, 1.0, 2.0, 5.0] {
            let total: f64 = (0..100).map(|k| poisson_pmf(lambda, k)).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "pmf does not sum to 1 for {lambda}"
            );
        }
        assert!((poisson_pmf(2.0, 0) - (-2.0f64).exp()).abs() < 1e-12);
        assert!((poisson_pmf(2.0, 1) - 2.0 * (-2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn paper_claim_999_percent_in_seven_cycles() {
        // Section 5: "the variance over the network will decrease 99.9% in
        // ln 1000 ≈ 7 cycles" with getPair_rand.
        assert_eq!(cycles_for_accuracy(rand_rate(), 1e-3).unwrap(), 7);
        // The optimal PM selector needs only 5 cycles and SEQ needs 6.
        assert_eq!(cycles_for_accuracy(PM_RATE, 1e-3).unwrap(), 5);
        assert_eq!(cycles_for_accuracy(seq_rate(), 1e-3).unwrap(), 6);
    }

    #[test]
    fn cycles_for_accuracy_edge_cases() {
        assert_eq!(cycles_for_accuracy(0.5, 1.0).unwrap(), 0);
        assert_eq!(cycles_for_accuracy(0.5, 0.5).unwrap(), 1);
        assert_eq!(cycles_for_accuracy(0.5, 0.26).unwrap(), 2);
        assert!(cycles_for_accuracy(0.0, 0.5).is_err());
        assert!(cycles_for_accuracy(1.0, 0.5).is_err());
        assert!(cycles_for_accuracy(-0.5, 0.5).is_err());
        assert!(cycles_for_accuracy(0.5, 0.0).is_err());
        assert!(cycles_for_accuracy(0.5, 1.5).is_err());
    }

    #[test]
    fn predicted_variance_ratio_decays_geometrically() {
        assert_eq!(predicted_variance_ratio(0.25, 0), 1.0);
        assert_eq!(predicted_variance_ratio(0.25, 1), 0.25);
        assert_eq!(predicted_variance_ratio(0.25, 2), 0.0625);
        assert!((predicted_variance_ratio(rand_rate(), 7) - 1e-3).abs() < 2e-4);
    }

    #[test]
    fn lemma1_reduction_scales_with_moments_and_network_size() {
        let r = lemma1_expected_reduction(4.0, 4.0, 101);
        assert!((r - 8.0 / 200.0).abs() < 1e-12);
        let larger_network = lemma1_expected_reduction(4.0, 4.0, 1001);
        assert!(larger_network < r);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn lemma1_requires_two_nodes() {
        let _ = lemma1_expected_reduction(1.0, 1.0, 1);
    }
}
