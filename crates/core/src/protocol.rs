//! The node-level push–pull exchange state machine (Figure 1 of the paper).
//!
//! The types in this module are deliberately I/O free: they describe *what* a
//! node sends and how it updates its state, while the transport — a
//! discrete-event simulator (`gossip-sim`), a threaded UDP runtime
//! (`gossip-net`) or anything else — decides *how* messages travel. This is
//! what lets the same protocol implementation be validated in simulation and
//! then deployed unchanged.

use crate::aggregate::AggregateKind;
use overlay_topology::NodeId;
use serde::{Deserialize, Serialize};

/// Identifier of an aggregation instance.
///
/// The basic protocol runs a single instance (`InstanceTag::default()`); the
/// network-size estimator of Section 4 runs one instance per elected leader,
/// tagged with the leader's node id, and the epoch-restart machinery keeps
/// instances of different epochs apart via the epoch number carried in every
/// message.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct InstanceTag(pub u64);

impl InstanceTag {
    /// Tag of the default (single) aggregation instance.
    pub const DEFAULT: InstanceTag = InstanceTag(0);

    /// Builds a tag from the leader that started the instance (used by the
    /// network-size estimator, which tags every concurrent instance with the
    /// address of its leader).
    pub fn from_leader(leader: NodeId) -> Self {
        // Offset by one so the leader-0 instance does not collide with DEFAULT.
        InstanceTag(u64::from(leader.as_u32()) + 1)
    }
}

/// A protocol message.
///
/// The exchange is push–pull: the active node sends [`GossipMessage::Push`]
/// with its current approximation, the passive node replies with
/// [`GossipMessage::Reply`] carrying its *pre-update* approximation, and both
/// then apply the aggregate function. Every message is tagged with the epoch
/// it belongs to (Section 4's restart mechanism) and the instance tag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GossipMessage {
    /// First half of the exchange, sent by the initiating (active) node.
    Push {
        /// Sender of the push.
        from: NodeId,
        /// Target of the push.
        to: NodeId,
        /// Aggregation instance this exchange belongs to.
        instance: InstanceTag,
        /// Epoch the sender is currently in.
        epoch: u64,
        /// The sender's current approximation `x_i`.
        value: f64,
    },
    /// Second half of the exchange, sent back by the passive node.
    Reply {
        /// Sender of the reply (the passive node).
        from: NodeId,
        /// Target of the reply (the original initiator).
        to: NodeId,
        /// Aggregation instance this exchange belongs to.
        instance: InstanceTag,
        /// Epoch the sender is currently in.
        epoch: u64,
        /// The passive node's approximation `x_j` *before* it applied the
        /// aggregate.
        value: f64,
    },
}

impl GossipMessage {
    /// The node this message is addressed to.
    pub fn recipient(&self) -> NodeId {
        match self {
            GossipMessage::Push { to, .. } | GossipMessage::Reply { to, .. } => *to,
        }
    }

    /// The node that sent this message.
    pub fn sender(&self) -> NodeId {
        match self {
            GossipMessage::Push { from, .. } | GossipMessage::Reply { from, .. } => *from,
        }
    }

    /// The epoch stamped on this message.
    pub fn epoch(&self) -> u64 {
        match self {
            GossipMessage::Push { epoch, .. } | GossipMessage::Reply { epoch, .. } => *epoch,
        }
    }

    /// The instance tag stamped on this message.
    pub fn instance(&self) -> InstanceTag {
        match self {
            GossipMessage::Push { instance, .. } | GossipMessage::Reply { instance, .. } => {
                *instance
            }
        }
    }
}

/// Per-instance protocol state of one node: the local attribute value `a_i`,
/// the current approximation `x_i` and book-keeping for epochs.
///
/// # Example
///
/// ```
/// use aggregate_core::protocol::AggregationInstance;
/// use aggregate_core::aggregate::AggregateKind;
///
/// // Two nodes holding 10 and 30.
/// let mut a = AggregationInstance::new(AggregateKind::Average, 10.0, 0);
/// let mut b = AggregationInstance::new(AggregateKind::Average, 30.0, 0);
///
/// // a initiates: sends its estimate, b replies with its own pre-update value.
/// let push_value = a.initiate();
/// let reply_value = b.absorb_push(push_value);
/// a.absorb_reply(reply_value);
///
/// assert_eq!(a.estimate(), 20.0);
/// assert_eq!(b.estimate(), 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationInstance {
    kind: AggregateKind,
    local_value: f64,
    state: f64,
    epoch: u64,
    exchanges: u32,
}

impl AggregationInstance {
    /// Creates an instance for `kind`, initialising the approximation from the
    /// node's local attribute value (`x_i := a_i`, the paper's time-0 state).
    pub fn new(kind: AggregateKind, local_value: f64, epoch: u64) -> Self {
        AggregationInstance {
            kind,
            local_value,
            state: kind.init_value(local_value),
            epoch,
            exchanges: 0,
        }
    }

    /// Creates an instance whose *initial state* is given explicitly rather
    /// than derived from the local value. Used by the network-size estimator,
    /// where non-leader nodes start from `0.0` regardless of their local
    /// attribute.
    pub fn with_initial_state(
        kind: AggregateKind,
        local_value: f64,
        state: f64,
        epoch: u64,
    ) -> Self {
        AggregationInstance {
            kind,
            local_value,
            state,
            epoch,
            exchanges: 0,
        }
    }

    /// The aggregate this instance computes.
    #[inline]
    pub fn kind(&self) -> AggregateKind {
        self.kind
    }

    /// The node's local attribute value `a_i`.
    pub fn local_value(&self) -> f64 {
        self.local_value
    }

    /// Updates the local attribute value. The running approximation is *not*
    /// touched — the new value takes effect when the next epoch restarts the
    /// instance, which is exactly how the paper makes the protocol adaptive.
    pub fn set_local_value(&mut self, value: f64) {
        self.local_value = value;
    }

    /// The epoch this instance is currently executing.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of exchanges this instance has completed in the current epoch.
    pub fn exchanges(&self) -> u32 {
        self.exchanges
    }

    /// The raw internal state `x_i` (before the aggregate's estimate
    /// transform). This is the value that travels in messages.
    #[inline]
    pub fn state(&self) -> f64 {
        self.state
    }

    /// The user-facing estimate of the aggregate.
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.kind.estimate_value(self.state)
    }

    /// Restarts the instance for a new epoch: the approximation is re-seeded
    /// from the local value and the exchange counter is reset.
    pub fn restart(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.state = self.kind.init_value(self.local_value);
        self.exchanges = 0;
    }

    /// Restarts the instance for a new epoch with an explicit initial state
    /// (network-size estimation restart).
    pub fn restart_with_state(&mut self, epoch: u64, state: f64) {
        self.epoch = epoch;
        self.state = state;
        self.exchanges = 0;
    }

    /// Writes back the hot fields mirrored by an external dense store (see
    /// [`crate::node::ProtocolNode::restore_hot_view`]): running state, epoch
    /// and exchange counter in one call, leaving the kind and local value
    /// untouched. Equivalent to replaying the mirrored exchanges and epoch
    /// restarts on this instance.
    pub fn restore_hot(&mut self, epoch: u64, state: f64, exchanges: u32) {
        self.epoch = epoch;
        self.state = state;
        self.exchanges = exchanges;
    }

    /// Overwrites the running approximation in place, leaving the local
    /// value, epoch and exchange counter untouched.
    ///
    /// This is the adversarial hook of the fault-injection lab
    /// (`gossip-faults`): a value-injection fault corrupts the *converging
    /// state* a malicious participant could report, not the node's true
    /// attribute — so subsequent exchanges dilute the corruption and the
    /// next epoch restart flushes it, exactly the recovery behaviour the
    /// robustness experiments measure.
    pub fn corrupt_state(&mut self, state: f64) {
        self.state = state;
    }

    /// Active side, step 1: returns the approximation to push to the peer.
    #[inline]
    pub fn initiate(&self) -> f64 {
        self.state
    }

    /// Passive side: absorbs a pushed approximation and returns the value to
    /// send back (the *pre-update* local approximation, as in Figure 1 where
    /// node `n_j` first sends `x_j` and then sets `x_j := aggregate(x_j, x_i)`).
    #[inline]
    pub fn absorb_push(&mut self, pushed: f64) -> f64 {
        let reply = self.state;
        self.state = self.kind.merge_values(self.state, pushed);
        self.exchanges += 1;
        reply
    }

    /// Active side, step 2: absorbs the reply and completes the exchange.
    #[inline]
    pub fn absorb_reply(&mut self, replied: f64) {
        self.state = self.kind.merge_values(self.state, replied);
        self.exchanges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_tag_from_leader_is_unique_per_leader_and_nonzero() {
        let a = InstanceTag::from_leader(NodeId::new(0));
        let b = InstanceTag::from_leader(NodeId::new(1));
        assert_ne!(a, b);
        assert_ne!(a, InstanceTag::DEFAULT);
        assert_ne!(b, InstanceTag::DEFAULT);
    }

    #[test]
    fn message_accessors() {
        let push = GossipMessage::Push {
            from: NodeId::new(1),
            to: NodeId::new(2),
            instance: InstanceTag(7),
            epoch: 3,
            value: 0.5,
        };
        assert_eq!(push.sender(), NodeId::new(1));
        assert_eq!(push.recipient(), NodeId::new(2));
        assert_eq!(push.epoch(), 3);
        assert_eq!(push.instance(), InstanceTag(7));

        let reply = GossipMessage::Reply {
            from: NodeId::new(2),
            to: NodeId::new(1),
            instance: InstanceTag(7),
            epoch: 3,
            value: 0.25,
        };
        assert_eq!(reply.sender(), NodeId::new(2));
        assert_eq!(reply.recipient(), NodeId::new(1));
    }

    #[test]
    fn full_push_pull_exchange_averages_both_sides() {
        let mut a = AggregationInstance::new(AggregateKind::Average, 0.0, 0);
        let mut b = AggregationInstance::new(AggregateKind::Average, 100.0, 0);
        let pushed = a.initiate();
        let replied = b.absorb_push(pushed);
        a.absorb_reply(replied);
        assert_eq!(a.estimate(), 50.0);
        assert_eq!(b.estimate(), 50.0);
        assert_eq!(a.exchanges(), 1);
        assert_eq!(b.exchanges(), 1);
    }

    #[test]
    fn exchange_preserves_pairwise_mass() {
        let mut a = AggregationInstance::new(AggregateKind::Average, 13.5, 0);
        let mut b = AggregationInstance::new(AggregateKind::Average, -7.25, 0);
        let sum_before = a.state() + b.state();
        let replied = b.absorb_push(a.initiate());
        a.absorb_reply(replied);
        let sum_after = a.state() + b.state();
        assert!((sum_before - sum_after).abs() < 1e-12);
    }

    #[test]
    fn lost_reply_keeps_passive_side_consistent() {
        // If the reply is lost, only the active node misses the update; the
        // passive node has already applied the aggregate. Mass is no longer
        // conserved exactly — this is the failure mode the robustness
        // benchmarks quantify — but each individual state stays finite and
        // within the convex hull of the inputs.
        let a = AggregationInstance::new(AggregateKind::Average, 0.0, 0);
        let mut b = AggregationInstance::new(AggregateKind::Average, 100.0, 0);
        let _lost_reply = b.absorb_push(a.initiate());
        assert_eq!(b.estimate(), 50.0);
        assert_eq!(a.estimate(), 0.0);
    }

    #[test]
    fn max_instance_converges_to_max_via_exchanges() {
        let mut a = AggregationInstance::new(AggregateKind::Maximum, 3.0, 0);
        let mut b = AggregationInstance::new(AggregateKind::Maximum, 9.0, 0);
        let replied = b.absorb_push(a.initiate());
        a.absorb_reply(replied);
        assert_eq!(a.estimate(), 9.0);
        assert_eq!(b.estimate(), 9.0);
    }

    #[test]
    fn restart_reseeds_from_local_value() {
        let mut inst = AggregationInstance::new(AggregateKind::Average, 5.0, 0);
        let replied = inst.absorb_push(25.0);
        assert_eq!(replied, 5.0);
        assert_eq!(inst.estimate(), 15.0);
        inst.set_local_value(8.0);
        // The running estimate is untouched until the epoch restart.
        assert_eq!(inst.estimate(), 15.0);
        inst.restart(1);
        assert_eq!(inst.epoch(), 1);
        assert_eq!(inst.estimate(), 8.0);
        assert_eq!(inst.exchanges(), 0);
    }

    #[test]
    fn with_initial_state_and_restart_with_state() {
        let mut inst =
            AggregationInstance::with_initial_state(AggregateKind::Average, 42.0, 1.0, 3);
        assert_eq!(inst.local_value(), 42.0);
        assert_eq!(inst.state(), 1.0);
        assert_eq!(inst.epoch(), 3);
        inst.restart_with_state(4, 0.0);
        assert_eq!(inst.state(), 0.0);
        assert_eq!(inst.epoch(), 4);
    }

    #[test]
    fn moment_instance_reports_transformed_estimate() {
        let inst = AggregationInstance::new(AggregateKind::Moment { order: 2 }, 3.0, 0);
        // Internal state is 9 (squared); the estimate is the raw second moment.
        assert_eq!(inst.state(), 9.0);
        assert_eq!(inst.estimate(), 9.0);
        assert_eq!(inst.kind(), AggregateKind::Moment { order: 2 });
    }
}
