//! Protocol configuration.

use crate::aggregate::AggregateKind;
use crate::AggregationError;
use serde::{Deserialize, Serialize};

/// What initial state a node gives to an aggregation instance it first learns
/// about from a peer (i.e. an instance that was started elsewhere while this
/// node was already running).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum LateJoinPolicy {
    /// Seed the instance from the node's own local value (the right choice for
    /// plain averaging, maxima, minima and moments: the node's value is part
    /// of the aggregate).
    #[default]
    LocalValue,
    /// Seed the instance with a fixed state. The network-size estimator uses
    /// `FixedState(0.0)`: only the leader contributes `1.0`, every other node
    /// contributes `0.0`, so the average converges to `1/N`.
    FixedState(f64),
}

/// Configuration of the anti-entropy aggregation protocol on a node.
///
/// Build it with [`ProtocolConfig::builder`]:
///
/// ```
/// use aggregate_core::config::ProtocolConfig;
/// use aggregate_core::aggregate::AggregateKind;
///
/// let config = ProtocolConfig::builder()
///     .aggregate(AggregateKind::Average)
///     .cycles_per_epoch(30)
///     .cycle_length_ms(1_000)
///     .build()?;
/// assert_eq!(config.cycles_per_epoch(), 30);
/// # Ok::<(), aggregate_core::AggregationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    aggregate: AggregateKind,
    cycles_per_epoch: u32,
    cycle_length_ms: u64,
    late_join: LateJoinPolicy,
}

impl ProtocolConfig {
    /// Starts building a configuration with the defaults: averaging, 30 cycles
    /// per epoch (the value used for Figure 4), 1 s cycle length, local-value
    /// late join.
    pub fn builder() -> ProtocolConfigBuilder {
        ProtocolConfigBuilder::default()
    }

    /// The aggregate function the default instance computes.
    pub fn aggregate(&self) -> AggregateKind {
        self.aggregate
    }

    /// Number of protocol cycles in one epoch (the paper's parameter *k*,
    /// chosen from the required accuracy via the convergence rates of
    /// Section 3).
    pub fn cycles_per_epoch(&self) -> u32 {
        self.cycles_per_epoch
    }

    /// Length of one cycle (`Δt`) in milliseconds. Only the live runtime uses
    /// wall-clock time; the simulators count abstract cycles.
    pub fn cycle_length_ms(&self) -> u64 {
        self.cycle_length_ms
    }

    /// Policy for instances first heard about from a peer.
    pub fn late_join(&self) -> LateJoinPolicy {
        self.late_join
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            aggregate: AggregateKind::Average,
            cycles_per_epoch: 30,
            cycle_length_ms: 1_000,
            late_join: LateJoinPolicy::LocalValue,
        }
    }
}

/// Builder for [`ProtocolConfig`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtocolConfigBuilder {
    aggregate: Option<AggregateKind>,
    cycles_per_epoch: Option<u32>,
    cycle_length_ms: Option<u64>,
    late_join: Option<LateJoinPolicy>,
}

impl ProtocolConfigBuilder {
    /// Sets the aggregate function (default: [`AggregateKind::Average`]).
    pub fn aggregate(mut self, aggregate: AggregateKind) -> Self {
        self.aggregate = Some(aggregate);
        self
    }

    /// Sets the number of cycles per epoch (default: 30).
    pub fn cycles_per_epoch(mut self, cycles: u32) -> Self {
        self.cycles_per_epoch = Some(cycles);
        self
    }

    /// Sets the cycle length in milliseconds (default: 1000).
    pub fn cycle_length_ms(mut self, ms: u64) -> Self {
        self.cycle_length_ms = Some(ms);
        self
    }

    /// Sets the late-join policy (default: [`LateJoinPolicy::LocalValue`]).
    pub fn late_join(mut self, policy: LateJoinPolicy) -> Self {
        self.late_join = Some(policy);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when `cycles_per_epoch` or
    /// `cycle_length_ms` is zero, or when a fixed late-join state is not
    /// finite.
    pub fn build(self) -> Result<ProtocolConfig, AggregationError> {
        let defaults = ProtocolConfig::default();
        let config = ProtocolConfig {
            aggregate: self.aggregate.unwrap_or(defaults.aggregate),
            cycles_per_epoch: self.cycles_per_epoch.unwrap_or(defaults.cycles_per_epoch),
            cycle_length_ms: self.cycle_length_ms.unwrap_or(defaults.cycle_length_ms),
            late_join: self.late_join.unwrap_or(defaults.late_join),
        };
        if config.cycles_per_epoch == 0 {
            return Err(AggregationError::invalid_config(
                "cycles_per_epoch must be positive",
            ));
        }
        if config.cycle_length_ms == 0 {
            return Err(AggregationError::invalid_config(
                "cycle_length_ms must be positive",
            ));
        }
        if let LateJoinPolicy::FixedState(state) = config.late_join {
            if !state.is_finite() {
                return Err(AggregationError::NonFiniteValue {
                    value: state,
                    what: "late join state",
                });
            }
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_settings() {
        let config = ProtocolConfig::default();
        assert_eq!(config.aggregate(), AggregateKind::Average);
        assert_eq!(config.cycles_per_epoch(), 30);
        assert_eq!(config.cycle_length_ms(), 1_000);
        assert_eq!(config.late_join(), LateJoinPolicy::LocalValue);
        let built = ProtocolConfig::builder().build().unwrap();
        assert_eq!(built, config);
    }

    #[test]
    fn builder_overrides_every_field() {
        let config = ProtocolConfig::builder()
            .aggregate(AggregateKind::Maximum)
            .cycles_per_epoch(10)
            .cycle_length_ms(250)
            .late_join(LateJoinPolicy::FixedState(0.0))
            .build()
            .unwrap();
        assert_eq!(config.aggregate(), AggregateKind::Maximum);
        assert_eq!(config.cycles_per_epoch(), 10);
        assert_eq!(config.cycle_length_ms(), 250);
        assert_eq!(config.late_join(), LateJoinPolicy::FixedState(0.0));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(ProtocolConfig::builder()
            .cycles_per_epoch(0)
            .build()
            .is_err());
        assert!(ProtocolConfig::builder()
            .cycle_length_ms(0)
            .build()
            .is_err());
        assert!(ProtocolConfig::builder()
            .late_join(LateJoinPolicy::FixedState(f64::NAN))
            .build()
            .is_err());
    }

    #[test]
    fn late_join_default_is_local_value() {
        assert_eq!(LateJoinPolicy::default(), LateJoinPolicy::LocalValue);
    }
}
