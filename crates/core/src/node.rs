//! Per-node protocol driver: epochs, instances and message handling combined.
//!
//! [`ProtocolNode`] glues together the pieces defined elsewhere in this crate —
//! [`crate::protocol::AggregationInstance`] state
//! machines, the [`crate::epoch::EpochManager`] and the
//! [`crate::config::ProtocolConfig`] — into the object a
//! runtime (simulator or live transport) drives:
//!
//! 1. once per cycle the runtime picks a peer and calls
//!    [`ProtocolNode::begin_exchange`], sending the returned messages;
//! 2. every received message goes through [`ProtocolNode::handle_message`],
//!    and any returned reply is sent back;
//! 3. at the end of each cycle the runtime calls [`ProtocolNode::end_cycle`],
//!    which advances the epoch machinery and reports converged epoch results.

use crate::config::{LateJoinPolicy, ProtocolConfig};
use crate::epoch::{EpochManager, EpochTransition};
use crate::protocol::{AggregationInstance, GossipMessage, InstanceTag};
use overlay_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Converged result of one finished epoch on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochResult {
    /// The epoch that finished.
    pub epoch: u64,
    /// Estimates of every instance that was live during the epoch, keyed by
    /// instance tag, already passed through the aggregate's estimate
    /// transform.
    pub estimates: Vec<(InstanceTag, f64)>,
    /// Whether this node participated in the epoch from its first cycle; only
    /// then is the estimate a converged, trustworthy value.
    pub full_participation: bool,
}

impl EpochResult {
    /// The estimate of the default instance, if it was live.
    pub fn default_estimate(&self) -> Option<f64> {
        self.estimates
            .iter()
            .find(|(tag, _)| *tag == InstanceTag::DEFAULT)
            .map(|(_, v)| *v)
    }
}

/// The four words of state that completely describe a *hot* node — one that
/// participates, has been in its current epoch from the first cycle, and runs
/// only the default aggregation instance. The sharded engine's
/// struct-of-arrays store keeps exactly this per node and syncs it back into
/// the full [`ProtocolNode`] only when the node leaves the hot set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotView {
    /// Running approximation of the default instance.
    pub state: f64,
    /// Epoch the node currently executes.
    pub epoch: u64,
    /// Cycles completed in the current epoch.
    pub cycle_in_epoch: u32,
    /// Exchanges the default instance has completed this epoch.
    pub exchanges: u32,
}

/// The complete protocol state of one node.
///
/// # Example
///
/// A miniature two-node network driven by hand:
///
/// ```
/// use aggregate_core::node::ProtocolNode;
/// use aggregate_core::config::ProtocolConfig;
/// use overlay_topology::NodeId;
///
/// let config = ProtocolConfig::default();
/// let mut a = ProtocolNode::new(NodeId::new(0), config, 10.0);
/// let mut b = ProtocolNode::new(NodeId::new(1), config, 20.0);
///
/// // One push–pull exchange initiated by a towards b.
/// for push in a.begin_exchange(NodeId::new(1)) {
///     if let Some(reply) = b.handle_message(push) {
///         a.handle_message(reply);
///     }
/// }
/// assert_eq!(a.estimate(), Some(15.0));
/// assert_eq!(b.estimate(), Some(15.0));
/// ```
///
/// The default aggregation instance is stored inline (every node always has
/// one); only the extra leader-led instances of the network-size estimator
/// live in the [`BTreeMap`]. In the common single-instance configuration a
/// node therefore owns no heap allocation at all, which is what lets the
/// sharded cycle engine keep millions of nodes contiguous in its arenas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[repr(C)] // hot-first field order: everything the fused exchange fast path
           // reads (epoch state, default instance, led-instance root, id)
           // lives in the leading ~96 bytes, so an exchange costs the
           // engines two cache lines per node, not three
pub struct ProtocolNode {
    epochs: EpochManager,
    default_instance: AggregationInstance,
    led_instances: BTreeMap<InstanceTag, AggregationInstance>,
    id: NodeId,
    local_value: f64,
    config: ProtocolConfig,
}

impl ProtocolNode {
    /// Creates a node present from the start of epoch 0, with the given local
    /// attribute value.
    pub fn new(id: NodeId, config: ProtocolConfig, local_value: f64) -> Self {
        ProtocolNode {
            id,
            config,
            epochs: EpochManager::new(config.cycles_per_epoch(), 0),
            local_value,
            default_instance: AggregationInstance::new(config.aggregate(), local_value, 0),
            led_instances: BTreeMap::new(),
        }
    }

    /// Creates a node that joins a running network: it was told by its contact
    /// that the next epoch is `next_epoch` and starts in `cycles_until_start`
    /// cycles, and stays passive until then (Section 4's join protocol).
    pub fn joining(
        id: NodeId,
        config: ProtocolConfig,
        local_value: f64,
        next_epoch: u64,
        cycles_until_start: u32,
    ) -> Self {
        ProtocolNode {
            id,
            config,
            epochs: EpochManager::joining(
                config.cycles_per_epoch(),
                next_epoch,
                cycles_until_start,
            ),
            local_value,
            default_instance: AggregationInstance::new(config.aggregate(), local_value, next_epoch),
            led_instances: BTreeMap::new(),
        }
    }

    /// This node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// The node's local attribute value `a_i`.
    #[inline]
    pub fn local_value(&self) -> f64 {
        self.local_value
    }

    /// Updates the node's local attribute value. Running estimates are not
    /// touched; the new value is picked up at the next epoch restart, which is
    /// how the protocol adapts to changing inputs.
    pub fn set_local_value(&mut self, value: f64) {
        self.local_value = value;
        self.default_instance.set_local_value(value);
        for instance in self.led_instances.values_mut() {
            instance.set_local_value(value);
        }
    }

    /// Current estimate of the default aggregation instance.
    #[inline]
    pub fn estimate(&self) -> Option<f64> {
        Some(self.default_instance.estimate())
    }

    /// Estimate of an arbitrary instance.
    pub fn instance_estimate(&self, tag: InstanceTag) -> Option<f64> {
        self.instance(tag).map(|i| i.estimate())
    }

    /// Read access to a specific instance.
    pub fn instance(&self, tag: InstanceTag) -> Option<&AggregationInstance> {
        if tag == InstanceTag::DEFAULT {
            Some(&self.default_instance)
        } else {
            self.led_instances.get(&tag)
        }
    }

    /// Iterates over all live instances, default instance first (the same
    /// order the old all-in-one `BTreeMap` produced, since
    /// [`InstanceTag::DEFAULT`] sorts before every leader-derived tag).
    pub fn instances(&self) -> impl Iterator<Item = (&InstanceTag, &AggregationInstance)> {
        std::iter::once((&InstanceTag::DEFAULT, &self.default_instance))
            .chain(self.led_instances.iter())
    }

    /// Whether the default instance is the node's only live instance — the
    /// precondition for the fused exchange fast path in
    /// [`crate::exchange::ExchangeCore`] (and a cheap single-line read for
    /// engines that warm node state ahead of a batch of exchanges).
    #[inline]
    pub fn has_only_default_instance(&self) -> bool {
        self.led_instances.is_empty()
    }

    /// Direct access to the default instance (fused exchange fast path).
    #[inline]
    pub(crate) fn default_instance(&self) -> &AggregationInstance {
        &self.default_instance
    }

    /// Mutable access to the default instance (fused exchange fast path).
    #[inline]
    pub(crate) fn default_instance_mut(&mut self) -> &mut AggregationInstance {
        &mut self.default_instance
    }

    /// Overwrites the default instance's running approximation — the
    /// value-injection fault of the `gossip-faults` lab, modelling a
    /// compromised node reporting an adversarial estimate. The local
    /// attribute value is untouched, so the corruption washes out over the
    /// following exchanges and disappears at the next epoch restart.
    pub fn corrupt_estimate(&mut self, value: f64) {
        self.default_instance.corrupt_state(value);
    }

    /// Overwrites the running approximation of one specific instance — the
    /// leader-capture attack of the adversary lab, where a compromised leader
    /// re-asserts a false state into the counting instance it leads. Returns
    /// `false` when the node is not running an instance with that tag (the
    /// corruption then has no target and nothing happens).
    pub fn corrupt_instance(&mut self, tag: InstanceTag, value: f64) -> bool {
        if tag == InstanceTag::DEFAULT {
            self.default_instance.corrupt_state(value);
            return true;
        }
        match self.led_instances.get_mut(&tag) {
            Some(instance) => {
                instance.corrupt_state(value);
                true
            }
            None => false,
        }
    }

    /// The epoch this node is currently executing.
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        self.epochs.current_epoch()
    }

    /// Whether the node may actively initiate exchanges (joining nodes are
    /// passive until their first epoch starts).
    #[inline]
    pub fn can_participate(&self) -> bool {
        self.epochs.can_participate()
    }

    /// Whether the node has participated in the current epoch since its first
    /// cycle.
    pub fn participated_from_epoch_start(&self) -> bool {
        self.epochs.participated_from_epoch_start()
    }

    /// Snapshot of the state a dense struct-of-arrays mirror needs to take a
    /// steady-state node out of the `ProtocolNode` representation entirely.
    ///
    /// Returns `Some` exactly when the node is *hot*: participating, present
    /// since the start of its current epoch, and running only the default
    /// instance. Such a node's per-cycle behaviour is fully described by four
    /// words — everything else (join waits, mid-epoch jumps, led
    /// size-estimation instances) stays on the cold `ProtocolNode` path.
    pub fn hot_view(&self) -> Option<HotView> {
        if self.epochs.can_participate()
            && self.epochs.participated_from_epoch_start()
            && self.led_instances.is_empty()
        {
            Some(HotView {
                state: self.default_instance.state(),
                epoch: self.epochs.current_epoch(),
                cycle_in_epoch: self.epochs.cycle_in_epoch(),
                exchanges: self.default_instance.exchanges(),
            })
        } else {
            None
        }
    }

    /// Writes a [`HotView`] back into the node, restoring the default
    /// instance's running state and the epoch position that the dense mirror
    /// advanced on the node's behalf. Only valid on a node whose last
    /// synchronised state was hot (the mirror never adopts any other kind).
    pub fn restore_hot_view(&mut self, view: HotView) {
        self.default_instance
            .restore_hot(view.epoch, view.state, view.exchanges);
        self.epochs
            .restore_position(view.epoch, view.cycle_in_epoch);
    }

    /// Starts (or restarts) an extra aggregation instance led by this node,
    /// seeded with an explicit initial state. The network-size estimator uses
    /// this with state `1.0` on the elected leader.
    pub fn start_led_instance(&mut self, tag: InstanceTag, initial_state: f64) {
        let instance = AggregationInstance::with_initial_state(
            self.config.aggregate(),
            self.local_value,
            initial_state,
            self.epochs.current_epoch(),
        );
        if tag == InstanceTag::DEFAULT {
            self.default_instance = instance;
        } else {
            self.led_instances.insert(tag, instance);
        }
    }

    /// Active half of the protocol (Figure 1's "active process"): produces the
    /// push messages for one exchange with `peer`, one per live instance.
    ///
    /// Returns an empty vector when the node is not yet allowed to
    /// participate.
    pub fn begin_exchange(&mut self, peer: NodeId) -> Vec<GossipMessage> {
        let mut pushes = Vec::new();
        self.begin_exchange_into(peer, &mut pushes);
        pushes
    }

    /// Allocation-free variant of [`ProtocolNode::begin_exchange`]: appends
    /// the push messages to a caller-owned buffer, so engines driving millions
    /// of exchanges per cycle can reuse one scratch vector.
    pub fn begin_exchange_into(&mut self, peer: NodeId, pushes: &mut Vec<GossipMessage>) {
        if !self.epochs.can_participate() || peer == self.id {
            return;
        }
        let epoch = self.epochs.current_epoch();
        pushes.extend(self.instances().map(|(tag, instance)| GossipMessage::Push {
            from: self.id,
            to: peer,
            instance: *tag,
            epoch,
            value: instance.initiate(),
        }));
    }

    /// Handles an incoming message, returning the reply to send (for pushes)
    /// or `None` (for replies and ignored messages).
    ///
    /// Stale messages (older epoch) are dropped; messages from a newer epoch
    /// first trigger the epoch jump (restarting all instances) and are then
    /// processed inside the new epoch.
    pub fn handle_message(&mut self, message: GossipMessage) -> Option<GossipMessage> {
        let epoch = message.epoch();
        if self.epochs.is_stale(epoch) {
            return None;
        }
        if let EpochTransition::Jumped { to, .. } = self.epochs.observe_remote_epoch(epoch) {
            self.restart_instances(to);
        }

        match message {
            GossipMessage::Push {
                from,
                instance: tag,
                epoch,
                value,
                ..
            } => {
                let late_join = self.config.late_join();
                let local_value = self.local_value;
                let aggregate = self.config.aggregate();
                let current_epoch = self.epochs.current_epoch();
                let instance = if tag == InstanceTag::DEFAULT {
                    &mut self.default_instance
                } else {
                    self.led_instances
                        .entry(tag)
                        .or_insert_with(|| match late_join {
                            LateJoinPolicy::LocalValue => {
                                AggregationInstance::new(aggregate, local_value, current_epoch)
                            }
                            LateJoinPolicy::FixedState(state) => {
                                AggregationInstance::with_initial_state(
                                    aggregate,
                                    local_value,
                                    state,
                                    current_epoch,
                                )
                            }
                        })
                };
                let reply_value = instance.absorb_push(value);
                Some(GossipMessage::Reply {
                    from: self.id,
                    to: from,
                    instance: tag,
                    epoch,
                    value: reply_value,
                })
            }
            GossipMessage::Reply {
                instance: tag,
                value,
                ..
            } => {
                let instance = if tag == InstanceTag::DEFAULT {
                    Some(&mut self.default_instance)
                } else {
                    self.led_instances.get_mut(&tag)
                };
                if let Some(instance) = instance {
                    instance.absorb_reply(value);
                }
                None
            }
        }
    }

    /// Marks the end of one protocol cycle. When this completes an epoch the
    /// converged [`EpochResult`] is returned and all instances restart for the
    /// new epoch (extra led instances are dropped — their leaders re-elect
    /// themselves at the start of the next epoch if required).
    pub fn end_cycle(&mut self) -> Option<EpochResult> {
        let full_participation = self.epochs.participated_from_epoch_start();
        match self.epochs.tick_cycle() {
            EpochTransition::Completed {
                finished, current, ..
            } => {
                let estimates = self
                    .instances()
                    .map(|(tag, inst)| (*tag, inst.estimate()))
                    .collect();
                self.restart_instances(current);
                Some(EpochResult {
                    epoch: finished,
                    estimates,
                    full_participation,
                })
            }
            _ => None,
        }
    }

    /// Restarts the default instance for `epoch` and drops all extra led
    /// instances (they are per-epoch by construction).
    fn restart_instances(&mut self, epoch: u64) {
        self.led_instances.clear();
        self.default_instance.set_local_value(self.local_value);
        self.default_instance.restart(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggregateKind;

    fn config_with_epoch(cycles: u32) -> ProtocolConfig {
        ProtocolConfig::builder()
            .cycles_per_epoch(cycles)
            .build()
            .unwrap()
    }

    fn exchange(a: &mut ProtocolNode, b: &mut ProtocolNode) {
        for push in a.begin_exchange(b.id()) {
            if let Some(reply) = b.handle_message(push) {
                a.handle_message(reply);
            }
        }
    }

    #[test]
    fn exchange_averages_both_nodes() {
        let config = ProtocolConfig::default();
        let mut a = ProtocolNode::new(NodeId::new(0), config, 0.0);
        let mut b = ProtocolNode::new(NodeId::new(1), config, 8.0);
        exchange(&mut a, &mut b);
        assert_eq!(a.estimate(), Some(4.0));
        assert_eq!(b.estimate(), Some(4.0));
    }

    #[test]
    fn self_exchange_is_a_no_op() {
        let config = ProtocolConfig::default();
        let mut a = ProtocolNode::new(NodeId::new(0), config, 5.0);
        assert!(a.begin_exchange(NodeId::new(0)).is_empty());
    }

    #[test]
    fn stale_epoch_messages_are_dropped() {
        let config = config_with_epoch(1);
        let mut a = ProtocolNode::new(NodeId::new(0), config, 1.0);
        let mut b = ProtocolNode::new(NodeId::new(1), config, 3.0);
        // Finish an epoch on b so that it is in epoch 1 while a's messages are
        // still tagged with epoch 0.
        b.end_cycle();
        assert_eq!(b.current_epoch(), 1);
        let pushes = a.begin_exchange(b.id());
        assert_eq!(pushes.len(), 1);
        assert!(b.handle_message(pushes[0]).is_none());
        // b's estimate is untouched.
        assert_eq!(b.estimate(), Some(3.0));
    }

    #[test]
    fn newer_epoch_messages_trigger_a_jump_and_restart() {
        let config = config_with_epoch(2);
        let mut a = ProtocolNode::new(NodeId::new(0), config, 1.0);
        let mut b = ProtocolNode::new(NodeId::new(1), config, 3.0);
        // Drag a's estimate away from its local value within epoch 0.
        exchange(&mut a, &mut b);
        assert_eq!(a.estimate(), Some(2.0));
        // Advance b to epoch 1.
        b.end_cycle();
        b.end_cycle();
        assert_eq!(b.current_epoch(), 1);
        // b initiates towards a; a must jump to epoch 1, restart from its
        // local value and then absorb the push.
        exchange(&mut b, &mut a);
        assert_eq!(a.current_epoch(), 1);
        assert!(!a.participated_from_epoch_start());
        // After restart a's state was 1.0 (its local value), b pushed 3.0.
        assert_eq!(a.estimate(), Some(2.0));
        assert_eq!(b.estimate(), Some(2.0));
    }

    #[test]
    fn end_cycle_reports_the_converged_epoch_result() {
        let config = config_with_epoch(2);
        let mut a = ProtocolNode::new(NodeId::new(0), config, 10.0);
        let mut b = ProtocolNode::new(NodeId::new(1), config, 20.0);
        exchange(&mut a, &mut b);
        assert!(a.end_cycle().is_none());
        exchange(&mut a, &mut b);
        let result = a.end_cycle().expect("second cycle completes the epoch");
        assert_eq!(result.epoch, 0);
        assert!(result.full_participation);
        assert_eq!(result.default_estimate(), Some(15.0));
        // After the epoch the default instance restarts from the local value.
        assert_eq!(a.estimate(), Some(10.0));
        assert_eq!(a.current_epoch(), 1);
    }

    #[test]
    fn local_value_changes_take_effect_at_the_next_epoch() {
        let config = config_with_epoch(1);
        let mut a = ProtocolNode::new(NodeId::new(0), config, 10.0);
        a.set_local_value(99.0);
        assert_eq!(a.estimate(), Some(10.0), "running estimate is untouched");
        a.end_cycle();
        assert_eq!(a.estimate(), Some(99.0), "restart picks up the new value");
        assert_eq!(a.local_value(), 99.0);
    }

    #[test]
    fn joining_node_stays_passive_and_ignores_the_running_epoch() {
        let config = config_with_epoch(5);
        let mut veteran = ProtocolNode::new(NodeId::new(0), config, 4.0);
        let mut newcomer = ProtocolNode::joining(NodeId::new(1), config, 100.0, 1, 3);
        assert!(!newcomer.can_participate());
        assert!(newcomer.begin_exchange(veteran.id()).is_empty());
        // Pushes from the running epoch 0 are stale for the newcomer.
        let pushes = veteran.begin_exchange(newcomer.id());
        assert!(newcomer.handle_message(pushes[0]).is_none());
        assert_eq!(newcomer.estimate(), Some(100.0));
        // A message tagged with the awaited epoch activates it.
        let mut future_peer = ProtocolNode::new(NodeId::new(2), config, 8.0);
        for _ in 0..5 {
            future_peer.end_cycle();
        }
        assert_eq!(future_peer.current_epoch(), 1);
        let pushes = future_peer.begin_exchange(newcomer.id());
        assert!(newcomer.handle_message(pushes[0]).is_some());
        assert!(newcomer.can_participate());
        assert_eq!(newcomer.estimate(), Some(54.0)); // (100 + 8) / 2
    }

    #[test]
    fn led_instances_are_gossiped_and_dropped_at_epoch_end() {
        let config = ProtocolConfig::builder()
            .cycles_per_epoch(2)
            .late_join(LateJoinPolicy::FixedState(0.0))
            .build()
            .unwrap();
        let mut leader = ProtocolNode::new(NodeId::new(0), config, 0.0);
        let mut other = ProtocolNode::new(NodeId::new(1), config, 0.0);
        let tag = InstanceTag::from_leader(leader.id());
        leader.start_led_instance(tag, 1.0);
        assert_eq!(leader.instance_estimate(tag), Some(1.0));

        exchange(&mut leader, &mut other);
        // The other node late-joined the led instance with state 0, so both
        // now hold 0.5 — the converged value for N = 2 would be 1/2.
        assert_eq!(leader.instance_estimate(tag), Some(0.5));
        assert_eq!(other.instance_estimate(tag), Some(0.5));

        // Epoch end drops the led instance but reports its estimate.
        leader.end_cycle();
        let result = leader.end_cycle().unwrap();
        assert!(result
            .estimates
            .iter()
            .any(|(t, v)| *t == tag && (*v - 0.5).abs() < 1e-12));
        assert!(leader.instance(tag).is_none());
        assert!(leader.instance(InstanceTag::DEFAULT).is_some());
    }

    #[test]
    fn replies_for_unknown_instances_are_ignored() {
        let config = ProtocolConfig::default();
        let mut a = ProtocolNode::new(NodeId::new(0), config, 1.0);
        let orphan_reply = GossipMessage::Reply {
            from: NodeId::new(9),
            to: a.id(),
            instance: InstanceTag(77),
            epoch: 0,
            value: 123.0,
        };
        assert!(a.handle_message(orphan_reply).is_none());
        assert_eq!(a.estimate(), Some(1.0));
    }

    #[test]
    fn maximum_aggregate_runs_through_the_node_layer() {
        let config = ProtocolConfig::builder()
            .aggregate(AggregateKind::Maximum)
            .build()
            .unwrap();
        let mut a = ProtocolNode::new(NodeId::new(0), config, 3.0);
        let mut b = ProtocolNode::new(NodeId::new(1), config, 11.0);
        exchange(&mut a, &mut b);
        assert_eq!(a.estimate(), Some(11.0));
        assert_eq!(b.estimate(), Some(11.0));
    }

    #[test]
    fn accessors_expose_configuration_and_instances() {
        let config = ProtocolConfig::default();
        let node = ProtocolNode::new(NodeId::new(3), config, 2.0);
        assert_eq!(node.id(), NodeId::new(3));
        assert_eq!(node.config().cycles_per_epoch(), 30);
        assert_eq!(node.instances().count(), 1);
        assert_eq!(node.instance_estimate(InstanceTag::DEFAULT), Some(2.0));
        assert_eq!(node.instance_estimate(InstanceTag(5)), None);
        assert!(node.participated_from_epoch_start());
    }
}
