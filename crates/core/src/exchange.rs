//! Engine-agnostic push–pull exchange core.
//!
//! Every runtime in this workspace — the single-threaded cycle engine, the
//! event-driven asynchronous engine and the sharded multi-threaded engine in
//! `gossip-sim`, as well as the live UDP runtime in `gossip-net` — ultimately
//! performs the same node-level step: the initiator pushes one message per
//! live instance, the peer absorbs each push and replies with its pre-update
//! approximation, and the initiator absorbs the replies (Figure 1 of the
//! paper). [`ExchangeCore`] is that step, extracted once so the engines only
//! differ in *scheduling* (who exchanges with whom, when, on which thread),
//! never in protocol semantics.
//!
//! The core is deliberately split into resumable halves —
//! [`ExchangeCore::begin`], [`ExchangeCore::respond`] and
//! [`ExchangeCore::complete`] — because the sharded engine executes the two
//! sides of a cross-shard exchange on different worker threads with a mailbox
//! hop in between. [`ExchangeCore::exchange`] fuses all three for the local
//! case and additionally takes a message-free fast path when both nodes are
//! in the common steady state (one default instance, same epoch, both
//! participating). The fast path performs bit-identical arithmetic and draws
//! loss decisions in bit-identical order, so an engine may mix fused and
//! split execution freely without perturbing results — the determinism suite
//! in `gossip-sim` pins this.
//!
//! Message loss is injected through a `FnMut() -> bool` closure so the core
//! stays independent of any particular RNG or failure model; the closure is
//! consulted once per push and once per produced reply, in message order.

use crate::aggregate::AggregateKind;
use crate::node::ProtocolNode;
use crate::protocol::GossipMessage;
use overlay_topology::NodeId;

/// Running counters over one or more exchanges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeTally {
    /// Number of exchanges that produced at least one push message.
    pub exchanges: usize,
    /// Number of messages (pushes and replies) dropped by the loss model.
    pub messages_lost: usize,
}

/// Reusable scratch buffers for [`ExchangeCore::exchange`], so engines that
/// drive millions of exchanges per cycle perform no steady-state allocation.
#[derive(Debug, Default)]
pub struct ExchangeScratch {
    pushes: Vec<GossipMessage>,
    replies: Vec<GossipMessage>,
}

impl ExchangeScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        ExchangeScratch::default()
    }
}

/// The one push–pull exchange implementation shared by every engine.
///
/// `ExchangeCore` is a stateless namespace (`Send + Sync` trivially); all
/// node state lives in the [`ProtocolNode`]s handed to each step.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeCore;

impl ExchangeCore {
    /// Active step: clears `pushes` and fills it with the initiator's push
    /// messages towards `peer`, one per live instance. Returns `true` when
    /// the exchange was actually initiated (the node may participate and has
    /// something to push).
    pub fn begin(
        initiator: &mut ProtocolNode,
        peer: NodeId,
        pushes: &mut Vec<GossipMessage>,
    ) -> bool {
        pushes.clear();
        initiator.begin_exchange_into(peer, pushes);
        !pushes.is_empty()
    }

    /// Passive step: the peer absorbs each push and produces replies.
    ///
    /// For every push the loss model is consulted once for the push itself
    /// and — when the peer produced a reply — once for the reply; surviving
    /// replies are appended to `replies` in push order. Lost messages are
    /// counted in `tally`.
    pub fn respond(
        peer: &mut ProtocolNode,
        pushes: &[GossipMessage],
        replies: &mut Vec<GossipMessage>,
        lost: &mut impl FnMut() -> bool,
        tally: &mut ExchangeTally,
    ) {
        for &push in pushes {
            if lost() {
                tally.messages_lost += 1;
                continue;
            }
            let Some(reply) = peer.handle_message(push) else {
                continue;
            };
            if lost() {
                tally.messages_lost += 1;
                continue;
            }
            replies.push(reply);
        }
    }

    /// Final step: the initiator absorbs the surviving replies.
    pub fn complete(initiator: &mut ProtocolNode, replies: &[GossipMessage]) {
        for &reply in replies {
            initiator.handle_message(reply);
        }
    }

    /// Delivers one in-flight message to a node, returning the reply to send
    /// back, if any. This is the entry point for engines that model message
    /// transit explicitly (the event-driven engine, live transports).
    pub fn deliver(node: &mut ProtocolNode, message: GossipMessage) -> Option<GossipMessage> {
        node.handle_message(message)
    }

    /// One full push–pull exchange with both nodes in hand.
    ///
    /// Equivalent to [`ExchangeCore::begin`] → [`ExchangeCore::respond`] →
    /// [`ExchangeCore::complete`] — and bit-identical to that sequence in
    /// both arithmetic and loss-draw order — but takes a message-free fast
    /// path in the common steady state: initiator and peer in the same epoch,
    /// both allowed to participate, and the initiator running only the
    /// default instance.
    pub fn exchange(
        initiator: &mut ProtocolNode,
        peer: &mut ProtocolNode,
        scratch: &mut ExchangeScratch,
        lost: &mut impl FnMut() -> bool,
        tally: &mut ExchangeTally,
    ) {
        if Self::try_fused(initiator, peer, lost, tally) {
            return;
        }
        if !Self::begin(initiator, peer.id(), &mut scratch.pushes) {
            return;
        }
        tally.exchanges += 1;
        scratch.replies.clear();
        Self::respond(peer, &scratch.pushes, &mut scratch.replies, lost, tally);
        Self::complete(initiator, &scratch.replies);
    }

    /// The fused fast path over raw state words, for engines that keep hot
    /// nodes in dense struct-of-arrays storage instead of [`ProtocolNode`]s.
    ///
    /// Performs exactly the post-precondition body of the fused path inside
    /// [`ExchangeCore::exchange`] — same arithmetic, same loss-draw order,
    /// same tallies — on `(state, exchanges)` pairs the caller has already
    /// verified to belong to two *distinct* nodes that both participate, share
    /// an epoch, and (for the initiator) run only the default instance. The
    /// determinism suite pins this bit-identical to the node-based path.
    #[inline]
    pub fn exchange_fused_raw(
        kind: AggregateKind,
        initiator_state: &mut f64,
        initiator_exchanges: &mut u32,
        peer_state: &mut f64,
        peer_exchanges: &mut u32,
        lost: &mut impl FnMut() -> bool,
        tally: &mut ExchangeTally,
    ) {
        tally.exchanges += 1;
        if lost() {
            tally.messages_lost += 1;
            return;
        }
        let pushed = *initiator_state;
        let replied = *peer_state;
        *peer_state = kind.merge_values(*peer_state, pushed);
        *peer_exchanges += 1;
        if lost() {
            tally.messages_lost += 1;
            return;
        }
        *initiator_state = kind.merge_values(*initiator_state, replied);
        *initiator_exchanges += 1;
    }

    /// The fused single-instance fast path. Returns `false` (doing nothing)
    /// when the preconditions do not hold and the caller must run the message
    /// path.
    ///
    /// Preconditions: both nodes participate, both are in the same epoch, and
    /// the initiator's only instance is the default one (the peer may carry
    /// extra led instances — only its default instance is touched, exactly as
    /// in the message path). Under these conditions the message path performs
    /// no epoch transition and no instance creation, so the exchange reduces
    /// to `initiate` → `absorb_push` → `absorb_reply` on the two default
    /// instances, with the two loss draws in the same order.
    fn try_fused(
        initiator: &mut ProtocolNode,
        peer: &mut ProtocolNode,
        lost: &mut impl FnMut() -> bool,
        tally: &mut ExchangeTally,
    ) -> bool {
        if !initiator.can_participate()
            || !peer.can_participate()
            || initiator.current_epoch() != peer.current_epoch()
            || !initiator.has_only_default_instance()
            || initiator.id() == peer.id()
        {
            return false;
        }
        tally.exchanges += 1;
        if lost() {
            tally.messages_lost += 1;
            return true;
        }
        let pushed = initiator.default_instance().initiate();
        let replied = peer.default_instance_mut().absorb_push(pushed);
        if lost() {
            tally.messages_lost += 1;
            return true;
        }
        initiator.default_instance_mut().absorb_reply(replied);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LateJoinPolicy, ProtocolConfig};
    use crate::protocol::InstanceTag;

    fn node(id: u32, value: f64) -> ProtocolNode {
        ProtocolNode::new(NodeId::new(id as usize), ProtocolConfig::default(), value)
    }

    fn no_loss() -> impl FnMut() -> bool {
        || false
    }

    #[test]
    fn fused_and_message_paths_agree_bitwise() {
        // Same initial state driven through both paths must agree exactly.
        let mut a1 = node(0, 3.25);
        let mut b1 = node(1, -1.5);
        let mut tally1 = ExchangeTally::default();
        let mut scratch = ExchangeScratch::new();
        ExchangeCore::exchange(&mut a1, &mut b1, &mut scratch, &mut no_loss(), &mut tally1);

        let mut a2 = node(0, 3.25);
        let mut b2 = node(1, -1.5);
        let mut tally2 = ExchangeTally::default();
        let mut pushes = Vec::new();
        let mut replies = Vec::new();
        assert!(ExchangeCore::begin(&mut a2, b2.id(), &mut pushes));
        tally2.exchanges += 1;
        ExchangeCore::respond(&mut b2, &pushes, &mut replies, &mut no_loss(), &mut tally2);
        ExchangeCore::complete(&mut a2, &replies);

        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(tally1, tally2);
        assert_eq!(
            a1.estimate().unwrap().to_bits(),
            a2.estimate().unwrap().to_bits()
        );
    }

    #[test]
    fn raw_fused_path_matches_node_fused_path_bitwise() {
        use crate::aggregate::AggregateKind;
        // Every loss pattern the two draws can produce, checked against the
        // node-based fused path on identical starting state.
        for pattern in [vec![false, false], vec![true], vec![false, true]] {
            let mut a = node(0, 3.25);
            let mut b = node(1, -1.5);
            let mut tally = ExchangeTally::default();
            let mut scratch = ExchangeScratch::new();
            let mut draws = pattern.clone().into_iter();
            ExchangeCore::exchange(
                &mut a,
                &mut b,
                &mut scratch,
                &mut move || draws.next().unwrap(),
                &mut tally,
            );

            let (mut sa, mut sb) = (3.25_f64, -1.5_f64);
            let (mut xa, mut xb) = (0_u32, 0_u32);
            let mut raw_tally = ExchangeTally::default();
            let mut draws = pattern.into_iter();
            ExchangeCore::exchange_fused_raw(
                AggregateKind::Average,
                &mut sa,
                &mut xa,
                &mut sb,
                &mut xb,
                &mut move || draws.next().unwrap(),
                &mut raw_tally,
            );

            assert_eq!(tally, raw_tally);
            assert_eq!(a.estimate().unwrap().to_bits(), sa.to_bits());
            assert_eq!(b.estimate().unwrap().to_bits(), sb.to_bits());
            let view_a = a.hot_view().expect("steady-state node is hot");
            let view_b = b.hot_view().expect("steady-state node is hot");
            assert_eq!(view_a.exchanges, xa);
            assert_eq!(view_b.exchanges, xb);
        }
    }

    #[test]
    fn fused_path_draws_losses_in_message_order() {
        // Drop the push: neither state moves, the reply draw never happens.
        let mut a = node(0, 0.0);
        let mut b = node(1, 10.0);
        let mut tally = ExchangeTally::default();
        let mut scratch = ExchangeScratch::new();
        let mut draws = [true].iter().copied();
        ExchangeCore::exchange(
            &mut a,
            &mut b,
            &mut scratch,
            &mut move || draws.next().expect("exactly one draw"),
            &mut tally,
        );
        assert_eq!(
            tally,
            ExchangeTally {
                exchanges: 1,
                messages_lost: 1
            }
        );
        assert_eq!(a.estimate(), Some(0.0));
        assert_eq!(b.estimate(), Some(10.0));

        // Drop only the reply: the peer has absorbed, the initiator has not.
        let mut a = node(0, 0.0);
        let mut b = node(1, 10.0);
        let mut tally = ExchangeTally::default();
        let mut draws = vec![false, true].into_iter();
        ExchangeCore::exchange(
            &mut a,
            &mut b,
            &mut scratch,
            &mut move || draws.next().unwrap(),
            &mut tally,
        );
        assert_eq!(
            tally,
            ExchangeTally {
                exchanges: 1,
                messages_lost: 1
            }
        );
        assert_eq!(a.estimate(), Some(0.0));
        assert_eq!(b.estimate(), Some(5.0));
    }

    #[test]
    fn cross_epoch_exchange_falls_back_to_the_message_path() {
        // Peer one epoch ahead: the initiator must jump and restart, which
        // only the message path implements.
        let config = ProtocolConfig::builder()
            .cycles_per_epoch(1)
            .build()
            .unwrap();
        let mut a = ProtocolNode::new(NodeId::new(0), config, 4.0);
        let mut b = ProtocolNode::new(NodeId::new(1), config, 8.0);
        b.end_cycle();
        assert_eq!(b.current_epoch(), 1);
        let mut tally = ExchangeTally::default();
        let mut scratch = ExchangeScratch::new();
        // b initiates towards a (a is behind).
        ExchangeCore::exchange(&mut b, &mut a, &mut scratch, &mut no_loss(), &mut tally);
        assert_eq!(a.current_epoch(), 1);
        assert_eq!(tally.exchanges, 1);
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn initiator_with_led_instances_uses_the_message_path() {
        let config = ProtocolConfig::builder()
            .late_join(LateJoinPolicy::FixedState(0.0))
            .build()
            .unwrap();
        let mut leader = ProtocolNode::new(NodeId::new(0), config, 0.0);
        let mut other = ProtocolNode::new(NodeId::new(1), config, 0.0);
        let tag = InstanceTag::from_leader(leader.id());
        leader.start_led_instance(tag, 1.0);
        let mut tally = ExchangeTally::default();
        let mut scratch = ExchangeScratch::new();
        ExchangeCore::exchange(
            &mut leader,
            &mut other,
            &mut scratch,
            &mut no_loss(),
            &mut tally,
        );
        // Both instances travelled: the led instance reached the other node.
        assert_eq!(other.instance_estimate(tag), Some(0.5));
        assert_eq!(tally.exchanges, 1);
    }

    #[test]
    fn passive_initiator_initiates_nothing() {
        let config = ProtocolConfig::default();
        let mut newcomer = ProtocolNode::joining(NodeId::new(0), config, 9.0, 1, 5);
        let mut veteran = node(1, 1.0);
        let mut tally = ExchangeTally::default();
        let mut scratch = ExchangeScratch::new();
        ExchangeCore::exchange(
            &mut newcomer,
            &mut veteran,
            &mut scratch,
            &mut no_loss(),
            &mut tally,
        );
        assert_eq!(tally, ExchangeTally::default());
        assert_eq!(veteran.estimate(), Some(1.0));
    }

    #[test]
    fn deliver_matches_handle_message() {
        let mut a = node(0, 2.0);
        let mut b = node(1, 6.0);
        let pushes = a.begin_exchange(b.id());
        let reply = ExchangeCore::deliver(&mut b, pushes[0]).expect("push produces a reply");
        assert!(ExchangeCore::deliver(&mut a, reply).is_none());
        assert_eq!(a.estimate(), Some(4.0));
        assert_eq!(b.estimate(), Some(4.0));
    }
}
