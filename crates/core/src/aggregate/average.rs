//! The averaging aggregate — the paper's `AGGREGATE_AVG`.

use super::Aggregate;
use serde::{Deserialize, Serialize};

/// Arithmetic averaging: both peers adopt `(x + y) / 2`.
///
/// This is the aggregate the paper analyses in depth. Its key property is
/// **mass conservation**: the elementary exchange does not change the sum of
/// the two participating estimates, therefore the global sum — and hence the
/// global average — of all estimates is invariant across the whole execution
/// (Section 3.2: "the elementary variance reduction step … does not change the
/// sum of the elements"). Convergence of every node to the true average then
/// follows from the variance decay proved in the paper.
///
/// Averaging is also the building block for derived aggregates: counting
/// (network size), sums, higher moments and variances are all computed by
/// averaging transformed values; see [`crate::derived`].
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, Average};
///
/// let avg = Average;
/// assert_eq!(avg.merge(10.0, 20.0), 15.0);
/// // mass conservation: 10 + 20 == 15 + 15
/// assert_eq!(avg.merge(10.0, 20.0) * 2.0, 30.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Average;

impl Aggregate for Average {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        // Written as l/2 + r/2 (rather than (l+r)/2) to avoid overflow for
        // estimates near f64::MAX; for ordinary magnitudes the two forms are
        // bit-identical.
        local / 2.0 + remote / 2.0
    }

    fn name(&self) -> &'static str {
        "average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn merge_is_midpoint() {
        let avg = Average;
        assert_eq!(avg.merge(0.0, 0.0), 0.0);
        assert_eq!(avg.merge(1.0, 3.0), 2.0);
        assert_eq!(avg.merge(-5.0, 5.0), 0.0);
        assert_eq!(avg.merge(2.5, 2.5), 2.5);
    }

    #[test]
    fn init_and_estimate_are_identity() {
        let avg = Average;
        assert_eq!(avg.init(7.25), 7.25);
        assert_eq!(avg.estimate(7.25), 7.25);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let avg = Average;
        let big = f64::MAX / 1.5;
        let merged = avg.merge(big, big);
        assert!(merged.is_finite());
        assert_eq!(merged, big);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Average.name(), "average");
    }

    proptest! {
        /// Mass conservation: the exchange never changes the pairwise sum.
        #[test]
        fn prop_mass_conservation(x in -1e12f64..1e12, y in -1e12f64..1e12) {
            let merged = Average.merge(x, y);
            prop_assert!((2.0 * merged - (x + y)).abs() <= 1e-3 * (1.0 + (x + y).abs()));
        }

        /// Symmetry in the arguments.
        #[test]
        fn prop_symmetry(x in -1e12f64..1e12, y in -1e12f64..1e12) {
            prop_assert_eq!(Average.merge(x, y), Average.merge(y, x));
        }

        /// The merged value always lies between the two inputs (contraction).
        #[test]
        fn prop_contraction(x in -1e9f64..1e9, y in -1e9f64..1e9) {
            let merged = Average.merge(x, y);
            let lo = x.min(y);
            let hi = x.max(y);
            prop_assert!(merged >= lo - 1e-9 && merged <= hi + 1e-9);
        }

        /// Variance of the pair never increases; it halves unless x == y.
        #[test]
        fn prop_pairwise_variance_reduction(x in -1e6f64..1e6, y in -1e6f64..1e6) {
            let merged = Average.merge(x, y);
            let mean = (x + y) / 2.0;
            let before = (x - mean).powi(2) + (y - mean).powi(2);
            let after = 2.0 * (merged - mean).powi(2);
            prop_assert!(after <= before + 1e-9);
        }
    }
}
