//! Aggregate functions: the `AGGREGATE` step of the anti-entropy protocol.
//!
//! The protocol skeleton (Figure 1 of the paper) is agnostic of what is being
//! computed: after two peers exchange their current approximations `x_i` and
//! `x_j`, both replace their approximation by `AGGREGATE(x_i, x_j)`. The choice
//! of `AGGREGATE` determines the aggregate that the network converges to:
//!
//! | function | converges to | implementation |
//! |---|---|---|
//! | `(x + y) / 2` | global average | [`Average`] |
//! | `max(x, y)` | global maximum | [`Maximum`] |
//! | `min(x, y)` | global minimum | [`Minimum`] |
//! | average of `xᵏ` | k-th raw moment | [`Moment`] |
//! | average of leader indicator | `1/N` → network size | [`CountInit`] + [`Average`] |
//! | `max(x, y)` on {0, 1} | boolean OR | [`BooleanOr`] |
//! | `min(x, y)` on {0, 1} | boolean AND | [`BooleanAnd`] |
//! | average of `ln x` | geometric mean | [`GeometricMean`] |
//!
//! Derived quantities (sums, variances, standard deviations, network size) are
//! obtained by running several instances in parallel and combining their
//! outputs; see [`crate::derived`].

mod average;
mod boolean;
mod extrema;
mod moments;

pub use average::Average;
pub use boolean::{BooleanAnd, BooleanOr};
pub use extrema::{Maximum, Minimum};
pub use moments::{GeometricMean, Moment};

use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// An aggregate function applied during the elementary anti-entropy exchange.
///
/// # Contract
///
/// Implementations must be:
///
/// * **symmetric** — `merge(x, y) == merge(y, x)`, because both peers apply the
///   function to the same unordered pair of estimates and must end up with the
///   same new estimate;
/// * **idempotent on equal inputs** — `merge(x, x) == x`, so a converged
///   network stays converged;
/// * **total-preserving or monotone** — averaging-like functions must preserve
///   the sum of the two estimates (this is what makes the protocol exact:
///   `x + y == merge(x,y) + merge(y,x)`), while extrema-like functions must be
///   monotone non-decreasing (for max) or non-increasing (for min) in both
///   arguments.
///
/// The properties are exercised by unit tests and property-based tests in this
/// crate; custom implementations should add the same tests.
pub trait Aggregate: Debug + Send + Sync {
    /// Combines the two exchanged approximations into the value adopted by
    /// *both* peers.
    fn merge(&self, local: f64, remote: f64) -> f64;

    /// Transforms a node's internal state into the user-facing estimate.
    ///
    /// The default is the identity; [`Moment`] uses it to undo its power
    /// transform and the network-size estimator inverts the average.
    fn estimate(&self, state: f64) -> f64 {
        state
    }

    /// Prepares a node's *initial* state from its local attribute value.
    ///
    /// The default is the identity. [`Moment`] raises the value to the k-th
    /// power, [`GeometricMean`] takes the logarithm.
    fn init(&self, local_value: f64) -> f64 {
        local_value
    }

    /// Short, stable, human readable name (used in reports and traces).
    fn name(&self) -> &'static str;
}

/// Enumeration of the built-in aggregate functions.
///
/// Useful when the aggregate is chosen from configuration (the simulator and
/// the benchmarks store an `AggregateKind` in their scenario descriptions);
/// [`AggregateKind::instantiate`] turns it into a boxed [`Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AggregateKind {
    /// Arithmetic average (the paper's main subject).
    Average,
    /// Maximum.
    Maximum,
    /// Minimum.
    Minimum,
    /// k-th raw moment.
    Moment {
        /// Order of the moment (k ≥ 1).
        order: u32,
    },
    /// Geometric mean.
    GeometricMean,
    /// Boolean OR over indicator values.
    BooleanOr,
    /// Boolean AND over indicator values.
    BooleanAnd,
}

impl AggregateKind {
    /// Instantiates the corresponding aggregate function.
    pub fn instantiate(self) -> Box<dyn Aggregate> {
        match self {
            AggregateKind::Average => Box::new(Average),
            AggregateKind::Maximum => Box::new(Maximum),
            AggregateKind::Minimum => Box::new(Minimum),
            AggregateKind::Moment { order } => Box::new(Moment::new(order)),
            AggregateKind::GeometricMean => Box::new(GeometricMean),
            AggregateKind::BooleanOr => Box::new(BooleanOr),
            AggregateKind::BooleanAnd => Box::new(BooleanAnd),
        }
    }

    /// Statically dispatched version of [`Aggregate::merge`].
    ///
    /// The per-node protocol state stores an `AggregateKind` (which is `Copy`)
    /// rather than a boxed trait object, so that simulations with hundreds of
    /// thousands of nodes stay allocation-free on the hot path; this helper
    /// and its siblings provide the trait's behaviour without boxing.
    pub fn merge_values(self, local: f64, remote: f64) -> f64 {
        match self {
            AggregateKind::Average => Average.merge(local, remote),
            AggregateKind::Maximum => Maximum.merge(local, remote),
            AggregateKind::Minimum => Minimum.merge(local, remote),
            AggregateKind::Moment { order } => Moment::new(order).merge(local, remote),
            AggregateKind::GeometricMean => GeometricMean.merge(local, remote),
            AggregateKind::BooleanOr => BooleanOr.merge(local, remote),
            AggregateKind::BooleanAnd => BooleanAnd.merge(local, remote),
        }
    }

    /// Statically dispatched version of [`Aggregate::init`].
    pub fn init_value(self, local_value: f64) -> f64 {
        match self {
            AggregateKind::Average => Average.init(local_value),
            AggregateKind::Maximum => Maximum.init(local_value),
            AggregateKind::Minimum => Minimum.init(local_value),
            AggregateKind::Moment { order } => Moment::new(order).init(local_value),
            AggregateKind::GeometricMean => GeometricMean.init(local_value),
            AggregateKind::BooleanOr => BooleanOr.init(local_value),
            AggregateKind::BooleanAnd => BooleanAnd.init(local_value),
        }
    }

    /// Statically dispatched version of [`Aggregate::estimate`].
    pub fn estimate_value(self, state: f64) -> f64 {
        match self {
            AggregateKind::Average => Average.estimate(state),
            AggregateKind::Maximum => Maximum.estimate(state),
            AggregateKind::Minimum => Minimum.estimate(state),
            AggregateKind::Moment { order } => Moment::new(order).estimate(state),
            AggregateKind::GeometricMean => GeometricMean.estimate(state),
            AggregateKind::BooleanOr => BooleanOr.estimate(state),
            AggregateKind::BooleanAnd => BooleanAnd.estimate(state),
        }
    }
}

/// Initialisation rule for the paper's network-size estimation (Section 4):
/// the elected leader starts from `1.0`, every other node from `0.0`; the
/// averaging protocol then converges to `1/N` at every node.
///
/// This is not an [`Aggregate`] by itself — it is combined with [`Average`] —
/// but it is kept here so the initialisation rule is documented next to the
/// functions it feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountInit;

impl CountInit {
    /// Initial state for a node: `1.0` for the leader, `0.0` otherwise.
    pub fn initial_value(leader: bool) -> f64 {
        if leader {
            1.0
        } else {
            0.0
        }
    }

    /// Converts a converged average (`≈ 1/N`) into a network-size estimate.
    ///
    /// Returns `f64::INFINITY` when the average is zero or negative (no leader
    /// was present in the epoch), which callers should treat as "unknown".
    pub fn size_estimate(average: f64) -> f64 {
        if average > 0.0 {
            1.0 / average
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> Vec<AggregateKind> {
        vec![
            AggregateKind::Average,
            AggregateKind::Maximum,
            AggregateKind::Minimum,
            AggregateKind::Moment { order: 2 },
            AggregateKind::GeometricMean,
            AggregateKind::BooleanOr,
            AggregateKind::BooleanAnd,
        ]
    }

    #[test]
    fn every_kind_instantiates_with_matching_name() {
        for kind in kinds() {
            let agg = kind.instantiate();
            assert!(!agg.name().is_empty(), "{kind:?} produced an empty name");
        }
    }

    #[test]
    fn every_builtin_aggregate_is_symmetric_and_idempotent() {
        let samples = [-3.5, -1.0, 0.5, 1.0, 2.0, 10.0];
        for kind in kinds() {
            let agg = kind.instantiate();
            for &x in &samples {
                for &y in &samples {
                    let xy = agg.merge(x, y);
                    let yx = agg.merge(y, x);
                    assert!(
                        (xy - yx).abs() < 1e-12,
                        "{:?} is not symmetric on ({x}, {y})",
                        agg.name()
                    );
                }
                let xx = agg.merge(x, x);
                assert!(
                    (xx - x).abs() < 1e-12,
                    "{:?} is not idempotent on {x}",
                    agg.name()
                );
            }
        }
    }

    #[test]
    fn static_dispatch_matches_trait_objects() {
        let samples = [(-2.0, 3.0), (0.0, 0.0), (1.5, 1.5), (10.0, -10.0)];
        for kind in kinds() {
            let boxed = kind.instantiate();
            for &(x, y) in &samples {
                assert_eq!(kind.merge_values(x, y), boxed.merge(x, y), "{kind:?} merge");
                assert_eq!(kind.init_value(x), boxed.init(x), "{kind:?} init");
                assert_eq!(
                    kind.estimate_value(x),
                    boxed.estimate(x),
                    "{kind:?} estimate"
                );
            }
        }
    }

    #[test]
    fn count_init_round_trip() {
        assert_eq!(CountInit::initial_value(true), 1.0);
        assert_eq!(CountInit::initial_value(false), 0.0);
        // 1 leader among 100 nodes -> average 0.01 -> size 100.
        assert!((CountInit::size_estimate(0.01) - 100.0).abs() < 1e-9);
        assert!(CountInit::size_estimate(0.0).is_infinite());
        assert!(CountInit::size_estimate(-0.3).is_infinite());
    }

    #[test]
    fn aggregate_trait_objects_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Aggregate>();
    }
}
