//! Extremal aggregates: maximum and minimum.

use super::Aggregate;
use serde::{Deserialize, Serialize};

/// Maximum: both peers adopt `max(x, y)`.
///
/// As the paper notes (Section 1.1), with `AGGREGATE_MAX` the spreading of the
/// true maximum over the network is exactly a push–pull epidemic broadcast, so
/// every node learns the global maximum in `O(log N)` cycles with high
/// probability. Unlike averaging, the extremal aggregates are *monotone*: a
/// node's estimate never moves away from the true extremum, and crashed nodes
/// or lost messages can only delay (never corrupt) convergence.
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, Maximum};
///
/// assert_eq!(Maximum.merge(3.0, 8.0), 8.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Maximum;

impl Aggregate for Maximum {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local.max(remote)
    }

    fn name(&self) -> &'static str {
        "maximum"
    }
}

/// Minimum: both peers adopt `min(x, y)`.
///
/// The mirror image of [`Maximum`]; useful e.g. for finding the smallest free
/// capacity or the earliest timestamp in the system.
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, Minimum};
///
/// assert_eq!(Minimum.merge(3.0, 8.0), 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Minimum;

impl Aggregate for Minimum {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local.min(remote)
    }

    fn name(&self) -> &'static str {
        "minimum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn max_and_min_basic_cases() {
        assert_eq!(Maximum.merge(-1.0, 1.0), 1.0);
        assert_eq!(Maximum.merge(5.0, 5.0), 5.0);
        assert_eq!(Minimum.merge(-1.0, 1.0), -1.0);
        assert_eq!(Minimum.merge(5.0, 5.0), 5.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Maximum.name(), "maximum");
        assert_eq!(Minimum.name(), "minimum");
    }

    #[test]
    fn init_and_estimate_are_identity() {
        assert_eq!(Maximum.init(2.0), 2.0);
        assert_eq!(Minimum.estimate(-3.0), -3.0);
    }

    proptest! {
        /// Idempotence: merging a value with itself leaves it unchanged.
        #[test]
        fn prop_idempotent(x in -1e12f64..1e12) {
            prop_assert_eq!(Maximum.merge(x, x), x);
            prop_assert_eq!(Minimum.merge(x, x), x);
        }

        /// Symmetry and selection: the result is always one of the inputs.
        #[test]
        fn prop_symmetric_selection(x in -1e12f64..1e12, y in -1e12f64..1e12) {
            let mx = Maximum.merge(x, y);
            prop_assert_eq!(mx, Maximum.merge(y, x));
            prop_assert!(mx == x || mx == y);
            prop_assert!(mx >= x && mx >= y);

            let mn = Minimum.merge(x, y);
            prop_assert_eq!(mn, Minimum.merge(y, x));
            prop_assert!(mn == x || mn == y);
            prop_assert!(mn <= x && mn <= y);
        }

        /// Associativity: order of pairwise merging never matters, which is
        /// what makes extrema insensitive to the gossip exchange schedule.
        #[test]
        fn prop_associative(x in -1e9f64..1e9, y in -1e9f64..1e9, z in -1e9f64..1e9) {
            prop_assert_eq!(
                Maximum.merge(Maximum.merge(x, y), z),
                Maximum.merge(x, Maximum.merge(y, z))
            );
            prop_assert_eq!(
                Minimum.merge(Minimum.merge(x, y), z),
                Minimum.merge(x, Minimum.merge(y, z))
            );
        }
    }
}
