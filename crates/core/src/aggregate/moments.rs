//! Moment-based aggregates: raw moments and the geometric mean.

use super::Aggregate;
use serde::{Deserialize, Serialize};

/// k-th raw moment: averages `xᵏ` instead of `x`.
///
/// The paper points out (Section 1.1) that "being able to calculate the
/// average already makes it possible to calculate any moments (using averages
/// of different powers of the value set)". `Moment::new(k)` does exactly that:
/// [`Aggregate::init`] raises the local value to the k-th power and the
/// protocol then averages those powers, so the converged state is the k-th raw
/// moment `E[xᵏ]` of the value set.
///
/// [`Aggregate::estimate`] reports the raw moment itself; combining the second
/// moment with the plain average yields the variance, see
/// [`crate::derived::variance_from_moments`].
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, Moment};
///
/// let second = Moment::new(2);
/// assert_eq!(second.init(3.0), 9.0);
/// assert_eq!(second.merge(9.0, 25.0), 17.0); // still plain averaging of states
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Moment {
    order: u32,
}

impl Moment {
    /// Creates the aggregate for the `order`-th raw moment.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`; the zeroth moment is identically 1 and carries
    /// no information.
    pub fn new(order: u32) -> Self {
        assert!(order >= 1, "moment order must be at least 1");
        Moment { order }
    }

    /// The order of this moment.
    pub fn order(&self) -> u32 {
        self.order
    }
}

impl Aggregate for Moment {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local / 2.0 + remote / 2.0
    }

    fn init(&self, local_value: f64) -> f64 {
        local_value.powi(self.order as i32)
    }

    fn name(&self) -> &'static str {
        "moment"
    }
}

/// Geometric mean: averages `ln x` and exponentiates the result.
///
/// Only meaningful for strictly positive value sets; non-positive local values
/// are mapped to `ln` of a tiny positive constant so the protocol stays
/// numerically defined (documented behaviour rather than a panic, because a
/// single bad value should not crash an entire overlay).
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, GeometricMean};
///
/// let g = GeometricMean;
/// let state_a = g.init(1.0);
/// let state_b = g.init(100.0);
/// let merged = g.merge(state_a, state_b);
/// let estimate = g.estimate(merged);
/// assert!((estimate - 10.0).abs() < 1e-9); // sqrt(1 * 100)
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeometricMean;

/// Smallest value substituted for non-positive inputs of the geometric mean.
const GEOMEAN_FLOOR: f64 = 1e-300;

impl Aggregate for GeometricMean {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local / 2.0 + remote / 2.0
    }

    fn init(&self, local_value: f64) -> f64 {
        local_value.max(GEOMEAN_FLOOR).ln()
    }

    fn estimate(&self, state: f64) -> f64 {
        state.exp()
    }

    fn name(&self) -> &'static str {
        "geometric-mean"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn moment_init_raises_to_power() {
        assert_eq!(Moment::new(1).init(4.0), 4.0);
        assert_eq!(Moment::new(2).init(4.0), 16.0);
        assert_eq!(Moment::new(3).init(-2.0), -8.0);
        assert_eq!(Moment::new(2).order(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zeroth_moment_is_rejected() {
        let _ = Moment::new(0);
    }

    #[test]
    fn moment_merge_is_plain_averaging() {
        let m = Moment::new(4);
        assert_eq!(m.merge(2.0, 4.0), 3.0);
        assert_eq!(m.estimate(3.0), 3.0);
    }

    #[test]
    fn geometric_mean_round_trip() {
        let g = GeometricMean;
        let estimate = g.estimate(g.init(42.0));
        assert!((estimate - 42.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_of_two_values() {
        let g = GeometricMean;
        let merged = g.merge(g.init(2.0), g.init(8.0));
        assert!((g.estimate(merged) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_handles_non_positive_inputs() {
        let g = GeometricMean;
        let state = g.init(0.0);
        assert!(state.is_finite());
        let state = g.init(-5.0);
        assert!(state.is_finite());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Moment::new(2).name(), "moment");
        assert_eq!(GeometricMean.name(), "geometric-mean");
    }

    proptest! {
        /// Both moment and geometric-mean states are merged by exact averaging,
        /// so mass conservation carries over to them.
        #[test]
        fn prop_state_mass_conservation(x in -1e9f64..1e9, y in -1e9f64..1e9) {
            let m = Moment::new(3);
            prop_assert!((2.0 * m.merge(x, y) - (x + y)).abs() < 1e-6 * (1.0 + (x + y).abs()));
            let g = GeometricMean;
            prop_assert!((2.0 * g.merge(x, y) - (x + y)).abs() < 1e-6 * (1.0 + (x + y).abs()));
        }

        /// The geometric mean of two positive numbers lies between them.
        #[test]
        fn prop_geomean_between_inputs(a in 1e-6f64..1e6, b in 1e-6f64..1e6) {
            let g = GeometricMean;
            let est = g.estimate(g.merge(g.init(a), g.init(b)));
            let lo = a.min(b) * (1.0 - 1e-9);
            let hi = a.max(b) * (1.0 + 1e-9);
            prop_assert!(est >= lo && est <= hi);
        }

        /// Even moments are non-negative for any input.
        #[test]
        fn prop_even_moment_nonnegative(x in -1e6f64..1e6) {
            prop_assert!(Moment::new(2).init(x) >= 0.0);
            prop_assert!(Moment::new(4).init(x) >= 0.0);
        }
    }
}
