//! Boolean aggregates over indicator values.

use super::Aggregate;
use serde::{Deserialize, Serialize};

/// Boolean OR: over indicator values in `{0, 1}`, both peers adopt the
/// maximum, so a single `1` anywhere in the network spreads to everyone.
///
/// This is the "is there any node with property P?" query expressed as an
/// aggregate; operationally it behaves exactly like an epidemic broadcast of
/// the bit, which the paper identifies as the well-studied special case of
/// `AGGREGATE_MAX`.
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, BooleanOr};
///
/// assert_eq!(BooleanOr.merge(0.0, 1.0), 1.0);
/// assert_eq!(BooleanOr.init(0.2), 1.0); // any non-zero value counts as true
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BooleanOr;

impl Aggregate for BooleanOr {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local.max(remote)
    }

    fn init(&self, local_value: f64) -> f64 {
        if local_value != 0.0 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "boolean-or"
    }
}

/// Boolean AND: over indicator values in `{0, 1}`, both peers adopt the
/// minimum, so a single `0` anywhere in the network spreads to everyone.
///
/// # Example
///
/// ```
/// use aggregate_core::aggregate::{Aggregate, BooleanAnd};
///
/// assert_eq!(BooleanAnd.merge(1.0, 0.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BooleanAnd;

impl Aggregate for BooleanAnd {
    fn merge(&self, local: f64, remote: f64) -> f64 {
        local.min(remote)
    }

    fn init(&self, local_value: f64) -> f64 {
        if local_value != 0.0 {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "boolean-and"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_truth_table() {
        assert_eq!(BooleanOr.merge(0.0, 0.0), 0.0);
        assert_eq!(BooleanOr.merge(0.0, 1.0), 1.0);
        assert_eq!(BooleanOr.merge(1.0, 0.0), 1.0);
        assert_eq!(BooleanOr.merge(1.0, 1.0), 1.0);
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(BooleanAnd.merge(0.0, 0.0), 0.0);
        assert_eq!(BooleanAnd.merge(0.0, 1.0), 0.0);
        assert_eq!(BooleanAnd.merge(1.0, 0.0), 0.0);
        assert_eq!(BooleanAnd.merge(1.0, 1.0), 1.0);
    }

    #[test]
    fn init_coerces_to_indicator() {
        assert_eq!(BooleanOr.init(0.0), 0.0);
        assert_eq!(BooleanOr.init(3.7), 1.0);
        assert_eq!(BooleanOr.init(-2.0), 1.0);
        assert_eq!(BooleanAnd.init(0.0), 0.0);
        assert_eq!(BooleanAnd.init(0.0001), 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BooleanOr.name(), "boolean-or");
        assert_eq!(BooleanAnd.name(), "boolean-and");
    }

    #[test]
    fn estimates_are_identity() {
        assert_eq!(BooleanOr.estimate(1.0), 1.0);
        assert_eq!(BooleanAnd.estimate(0.0), 0.0);
    }
}
