//! Network size estimation by anti-entropy counting (Section 4 of the paper).
//!
//! The idea: "if exactly one of the values stored by nodes is equal to 1 and
//! all the others are equal to 0, then the average is exactly 1/N so N can be
//! calculated directly." To avoid a single point of failure, *multiple* nodes
//! may concurrently start such counting instances — each node elects itself
//! leader at the beginning of an epoch with a small probability — and every
//! instance is tagged with its leader's identity so the exchanges never mix.
//!
//! This module provides the leader-election policies, the glue that installs a
//! counting instance on a [`ProtocolNode`] and the combination of concurrent
//! instances into a single size estimate.

use crate::aggregate::CountInit;
use crate::config::{LateJoinPolicy, ProtocolConfig};
use crate::node::{EpochResult, ProtocolNode};
use crate::protocol::InstanceTag;
use crate::AggregationError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Leader-election policy: with what probability a node starts its own
/// counting instance at the beginning of an epoch.
///
/// The paper bounds the number of concurrent instances by letting each node
/// become a leader "with a sufficiently small probability that can also depend
/// on the previous approximation of network size".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LeaderPolicy {
    /// Fixed probability per node per epoch.
    Fixed {
        /// Election probability (must lie in `[0, 1]`).
        probability: f64,
    },
    /// Adaptive probability `target_leaders / previous_size_estimate`, so that
    /// on average a constant number of leaders is elected regardless of the
    /// (estimated) network size. Falls back to `fallback_probability` when no
    /// previous estimate is available (e.g. the very first epoch).
    Adaptive {
        /// Desired expected number of concurrent instances.
        target_leaders: f64,
        /// Probability used while no previous size estimate exists.
        fallback_probability: f64,
    },
}

impl LeaderPolicy {
    /// The election probability for a node, given the previous size estimate
    /// (if any).
    pub fn probability(&self, previous_estimate: Option<f64>) -> f64 {
        match *self {
            LeaderPolicy::Fixed { probability } => probability.clamp(0.0, 1.0),
            LeaderPolicy::Adaptive {
                target_leaders,
                fallback_probability,
            } => match previous_estimate {
                Some(estimate) if estimate.is_finite() && estimate >= 1.0 => {
                    (target_leaders / estimate).clamp(0.0, 1.0)
                }
                _ => fallback_probability.clamp(0.0, 1.0),
            },
        }
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`AggregationError::InvalidConfig`] when a probability is
    /// outside `[0, 1]` or a target is not positive and finite.
    pub fn validate(&self) -> Result<(), AggregationError> {
        match *self {
            LeaderPolicy::Fixed { probability } => {
                if !(0.0..=1.0).contains(&probability) || !probability.is_finite() {
                    return Err(AggregationError::invalid_config(format!(
                        "leader probability {probability} outside [0, 1]"
                    )));
                }
            }
            LeaderPolicy::Adaptive {
                target_leaders,
                fallback_probability,
            } => {
                if target_leaders <= 0.0 || !target_leaders.is_finite() {
                    return Err(AggregationError::invalid_config(format!(
                        "target leader count {target_leaders} must be positive"
                    )));
                }
                if !(0.0..=1.0).contains(&fallback_probability) || !fallback_probability.is_finite()
                {
                    return Err(AggregationError::invalid_config(format!(
                        "fallback probability {fallback_probability} outside [0, 1]"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for LeaderPolicy {
    fn default() -> Self {
        // A handful of concurrent instances regardless of network size.
        LeaderPolicy::Adaptive {
            target_leaders: 4.0,
            fallback_probability: 0.01,
        }
    }
}

/// Returns the [`ProtocolConfig`] appropriate for network-size estimation:
/// averaging aggregate and, crucially, a `FixedState(0.0)` late-join policy so
/// that every node other than the leader contributes `0` to a counting
/// instance it first hears about from a peer.
pub fn size_estimation_config(cycles_per_epoch: u32) -> Result<ProtocolConfig, AggregationError> {
    ProtocolConfig::builder()
        .cycles_per_epoch(cycles_per_epoch)
        .late_join(LateJoinPolicy::FixedState(0.0))
        .build()
}

/// Runs the per-epoch leader election on `node`: with the policy's probability
/// the node starts a counting instance tagged with its own identity and seeded
/// with `1.0`. Returns `true` if the node became a leader.
///
/// Call this at the beginning of every epoch, after the previous epoch's
/// instances have been dropped.
pub fn elect_leader<R: Rng + ?Sized>(
    node: &mut ProtocolNode,
    policy: LeaderPolicy,
    previous_estimate: Option<f64>,
    rng: &mut R,
) -> bool {
    if !node.can_participate() {
        return false;
    }
    let p = policy.probability(previous_estimate);
    if p > 0.0 && rng.gen_bool(p) {
        node.start_led_instance(
            InstanceTag::from_leader(node.id()),
            CountInit::initial_value(true),
        );
        true
    } else {
        false
    }
}

/// Combines the converged states of the counting instances a node observed
/// during an epoch into one network-size estimate.
///
/// Every instance individually converges to `1/N`; averaging the instance
/// states first and inverting afterwards pools their information and halves
/// the estimator's variance compared to inverting a single instance. Instances
/// the node never heard about simply do not appear in its list.
///
/// Returns `None` when the node observed no counting instance or when the
/// pooled average is non-positive.
pub fn combine_size_estimates(instance_states: &[f64]) -> Option<f64> {
    if instance_states.is_empty() {
        return None;
    }
    let mean = instance_states.iter().sum::<f64>() / instance_states.len() as f64;
    let estimate = CountInit::size_estimate(mean);
    if estimate.is_finite() {
        Some(estimate)
    } else {
        None
    }
}

/// Extracts a node's network-size estimate from a finished [`EpochResult`].
///
/// Only counting instances (non-default tags) are considered, and only results
/// from nodes that participated in the full epoch are meaningful; partial
/// participants return `None`, matching Figure 4's methodology ("converged
/// estimates are reported at the end of each epoch … by all nodes that
/// participated in the full epoch").
pub fn size_estimate_from_epoch(result: &EpochResult) -> Option<f64> {
    if !result.full_participation {
        return None;
    }
    let states: Vec<f64> = result
        .estimates
        .iter()
        .filter(|(tag, _)| *tag != InstanceTag::DEFAULT)
        .map(|(_, value)| *value)
        .collect();
    combine_size_estimates(&states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_topology::NodeId;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(13)
    }

    #[test]
    fn fixed_policy_probability_is_clamped() {
        assert_eq!(
            LeaderPolicy::Fixed { probability: 0.25 }.probability(None),
            0.25
        );
        assert_eq!(
            LeaderPolicy::Fixed { probability: 7.0 }.probability(Some(10.0)),
            1.0
        );
    }

    #[test]
    fn adaptive_policy_scales_with_previous_estimate() {
        let policy = LeaderPolicy::Adaptive {
            target_leaders: 5.0,
            fallback_probability: 0.02,
        };
        assert_eq!(policy.probability(None), 0.02);
        assert!((policy.probability(Some(1_000.0)) - 0.005).abs() < 1e-12);
        assert_eq!(policy.probability(Some(0.0)), 0.02);
        assert_eq!(policy.probability(Some(f64::INFINITY)), 0.02);
        assert_eq!(policy.probability(Some(2.0)), 1.0);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(LeaderPolicy::Fixed { probability: 0.5 }.validate().is_ok());
        assert!(LeaderPolicy::Fixed { probability: -0.1 }
            .validate()
            .is_err());
        assert!(LeaderPolicy::Fixed { probability: 1.5 }.validate().is_err());
        assert!(LeaderPolicy::Adaptive {
            target_leaders: 0.0,
            fallback_probability: 0.1
        }
        .validate()
        .is_err());
        assert!(LeaderPolicy::Adaptive {
            target_leaders: 3.0,
            fallback_probability: 1.5
        }
        .validate()
        .is_err());
        assert!(LeaderPolicy::default().validate().is_ok());
    }

    #[test]
    fn elect_leader_installs_a_counting_instance() {
        let config = size_estimation_config(30).unwrap();
        let mut node = ProtocolNode::new(NodeId::new(7), config, 3.0);
        let mut r = rng();
        let became_leader = elect_leader(
            &mut node,
            LeaderPolicy::Fixed { probability: 1.0 },
            None,
            &mut r,
        );
        assert!(became_leader);
        let tag = InstanceTag::from_leader(NodeId::new(7));
        assert_eq!(node.instance_estimate(tag), Some(1.0));
    }

    #[test]
    fn elect_leader_respects_probability_zero_and_passivity() {
        let config = size_estimation_config(30).unwrap();
        let mut r = rng();
        let mut node = ProtocolNode::new(NodeId::new(1), config, 0.0);
        assert!(!elect_leader(
            &mut node,
            LeaderPolicy::Fixed { probability: 0.0 },
            None,
            &mut r
        ));
        let mut joining = ProtocolNode::joining(NodeId::new(2), config, 0.0, 1, 10);
        assert!(!elect_leader(
            &mut joining,
            LeaderPolicy::Fixed { probability: 1.0 },
            None,
            &mut r
        ));
    }

    #[test]
    fn combine_size_estimates_pools_instances() {
        // Two instances, both converged to exactly 1/100.
        assert!((combine_size_estimates(&[0.01, 0.01]).unwrap() - 100.0).abs() < 1e-9);
        // One converged slightly high, one slightly low: pooling averages them.
        let est = combine_size_estimates(&[0.009, 0.011]).unwrap();
        assert!((est - 100.0).abs() < 1.5);
        assert!(combine_size_estimates(&[]).is_none());
        assert!(combine_size_estimates(&[0.0]).is_none());
        assert!(combine_size_estimates(&[-0.1, 0.1]).is_none());
    }

    #[test]
    fn size_estimate_from_epoch_filters_partial_participants() {
        let full = EpochResult {
            epoch: 4,
            estimates: vec![
                (InstanceTag::DEFAULT, 5.0),
                (InstanceTag(3), 0.02),
                (InstanceTag(9), 0.02),
            ],
            full_participation: true,
        };
        assert!((size_estimate_from_epoch(&full).unwrap() - 50.0).abs() < 1e-9);

        let partial = EpochResult {
            full_participation: false,
            ..full.clone()
        };
        assert!(size_estimate_from_epoch(&partial).is_none());

        let no_counting_instances = EpochResult {
            epoch: 4,
            estimates: vec![(InstanceTag::DEFAULT, 5.0)],
            full_participation: true,
        };
        assert!(size_estimate_from_epoch(&no_counting_instances).is_none());
    }

    #[test]
    fn two_node_network_estimates_its_size() {
        // End-to-end miniature: leader + one other node, enough exchanges to
        // converge, then the epoch result yields N ≈ 2.
        let config = size_estimation_config(4).unwrap();
        let mut leader = ProtocolNode::new(NodeId::new(0), config, 0.0);
        let mut other = ProtocolNode::new(NodeId::new(1), config, 0.0);
        let mut r = rng();
        assert!(elect_leader(
            &mut leader,
            LeaderPolicy::Fixed { probability: 1.0 },
            None,
            &mut r
        ));
        for _ in 0..3 {
            for push in leader.begin_exchange(other.id()) {
                if let Some(reply) = other.handle_message(push) {
                    leader.handle_message(reply);
                }
            }
            leader.end_cycle();
            other.end_cycle();
        }
        // Fourth cycle completes the epoch.
        for push in leader.begin_exchange(other.id()) {
            if let Some(reply) = other.handle_message(push) {
                leader.handle_message(reply);
            }
        }
        let result = leader.end_cycle().unwrap();
        let estimate = size_estimate_from_epoch(&result).unwrap();
        assert!(
            (estimate - 2.0).abs() < 1e-6,
            "estimate {estimate} should be 2"
        );
    }
}
