//! # aggregate-core
//!
//! Anti-entropy (push–pull gossip) aggregation for large overlay networks — a
//! faithful, production-quality implementation of
//! *"Epidemic-Style Proactive Aggregation in Large Overlay Networks"*
//! (M. Jelasity & A. Montresor, ICDCS 2004).
//!
//! Every node holds a numeric attribute and a running approximation of a
//! global aggregate (average, extremum, moment, count, …). Periodically each
//! node exchanges its approximation with a random neighbour and both adopt the
//! value of an aggregate function applied to the pair. The result is a
//! protocol that is:
//!
//! * **proactive** — every node knows the aggregate continuously, no query
//!   phase is needed;
//! * **democratic** — there is no bottleneck node; load is uniform;
//! * **exponentially fast** — the variance of the approximations shrinks by a
//!   constant factor per cycle (1/4 for the optimal pair selection, ≈ 0.303
//!   for the deployable sequential protocol, 1/e for fully random selection).
//!
//! ## Crate layout
//!
//! | module | contents |
//! |---|---|
//! | [`aggregate`] | the `AGGREGATE` functions: average, min/max, moments, booleans |
//! | [`selectors`] | the `GETPAIR` strategies: PM, RAND, SEQ, PMRAND |
//! | [`sampler`] | pluggable peer sampling: uniform-complete, static overlays, live NEWSCAST |
//! | [`effects`] | injected runtime effects: clocks and labelled entropy streams |
//! | [`avg`] | the whole-network `AVG` algorithm (Figure 2) and its per-cycle reports |
//! | [`theory`] | closed-form convergence rates (Section 3) |
//! | [`protocol`] | node-level push–pull state machine and wire messages (Figure 1) |
//! | [`epoch`] | restart/termination/join machinery (Section 4) |
//! | [`node`] | [`node::ProtocolNode`]: epochs + instances + message handling |
//! | [`size_estimation`] | network size estimation by anti-entropy counting (Section 4) |
//! | [`derived`] | variances, sums, counts derived from converged instances |
//! | [`config`] | protocol configuration builder |
//!
//! ## Quick start
//!
//! Compute the average of a value vector the way the paper's simulations do:
//!
//! ```
//! use aggregate_core::avg::{run_avg, mean};
//! use aggregate_core::selectors::SequentialSelector;
//! use overlay_topology::CompleteTopology;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), aggregate_core::AggregationError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! let n = 1_000;
//! let mut values: Vec<f64> = (0..n).map(|i| i as f64).collect();
//! let true_average = mean(&values);
//!
//! let topology = CompleteTopology::new(n);
//! let mut selector = SequentialSelector::new();
//! let reports = run_avg(&mut values, &topology, &mut selector, &mut rng, 30)?;
//!
//! // After 30 cycles every node's estimate is essentially the true average,
//! // and each cycle reduced the variance by roughly 1/(2√e) ≈ 0.303.
//! assert!(values.iter().all(|v| (v - true_average).abs() < 1e-3));
//! assert!(reports[0].reduction_factor().unwrap() < 0.4);
//! # Ok(())
//! # }
//! ```
//!
//! For the distributed (per-node, message-passing) form of the same protocol
//! see [`node::ProtocolNode`]; for simulation engines, churn models and the
//! paper's experiments see the `gossip-sim` and `gossip-bench` crates of this
//! workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod avg;
pub mod config;
pub mod derived;
pub mod effects;
pub mod epoch;
mod error;
pub mod exchange;
pub mod node;
pub mod protocol;
pub mod redundancy;
pub mod sampler;
pub mod selectors;
pub mod size_estimation;
pub mod theory;

pub use aggregate::{Aggregate, AggregateKind};
pub use config::{LateJoinPolicy, ProtocolConfig};
pub use effects::{Clock, EntropySource, SeedSequence, SystemClock, VirtualClock};
pub use error::AggregationError;
pub use exchange::{ExchangeCore, ExchangeScratch, ExchangeTally};
pub use node::{EpochResult, HotView, ProtocolNode};
pub use protocol::{AggregationInstance, GossipMessage, InstanceTag};
pub use redundancy::{
    merge_estimates, redundant_size_estimate_from_epoch, MergePolicy, RedundancyConfig, ReportError,
};
pub use sampler::{PeerSampler, SamplerConfig, SamplerDirectory, UniformSampler};
pub use selectors::{PairSelector, SelectorKind};

#[cfg(test)]
mod crate_level_tests {
    use super::*;

    #[test]
    fn public_types_implement_debug() {
        fn assert_debug<T: std::fmt::Debug>() {}
        assert_debug::<AggregateKind>();
        assert_debug::<SelectorKind>();
        assert_debug::<ProtocolConfig>();
        assert_debug::<ProtocolNode>();
        assert_debug::<GossipMessage>();
        assert_debug::<AggregationError>();
        assert_debug::<InstanceTag>();
    }

    #[test]
    fn key_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ExchangeCore>();
        assert_send_sync::<ExchangeScratch>();
        assert_send_sync::<ProtocolNode>();
        assert_send_sync::<GossipMessage>();
        assert_send_sync::<AggregationError>();
        assert_send_sync::<ProtocolConfig>();
    }
}
