//! `GETPAIR_SEQ`: every node initiates once per cycle, in a fixed order.

use super::PairSelector;
use overlay_topology::{NodeId, Topology};
use rand::RngCore;

/// The paper's `GETPAIR_SEQ`: iterate over the node set in a fixed order and
/// let each node pick one uniformly random neighbour (Section 3.3.3).
///
/// This is the selection strategy that the *deployable* protocol of Figure 1
/// realises — "each node has to pick a neighbor periodically in regular
/// intervals and perform the variance reduction step with the neighbor" — and
/// the one both the simulator and the live runtime of this project use by
/// default.
///
/// Per cycle a node participates once as the initiator plus a Poisson(1)
/// number of times as the responder, so `φ = 1 + Poisson(1)` and the
/// theoretical per-cycle variance reduction is `1/(2√e) ≈ 0.303`, derived in
/// the paper through the `GETPAIR_PMRAND` proxy.
///
/// # Example
///
/// ```
/// use aggregate_core::selectors::{PairSelector, SequentialSelector};
/// use overlay_topology::CompleteTopology;
/// use rand::SeedableRng;
///
/// let topo = CompleteTopology::new(4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut selector = SequentialSelector::new();
/// selector.begin_cycle(&topo, &mut rng);
/// // The initiators of the four slots are nodes 0, 1, 2, 3 in order.
/// for expected_initiator in 0..4 {
///     let (initiator, _) = selector.next_pair(&topo, &mut rng).unwrap();
///     assert_eq!(initiator.index(), expected_initiator);
/// }
/// ```
#[derive(Debug, Default, Clone)]
pub struct SequentialSelector {
    cursor: usize,
}

impl SequentialSelector {
    /// Creates a new sequential selector starting at node 0.
    pub fn new() -> Self {
        SequentialSelector { cursor: 0 }
    }
}

impl PairSelector for SequentialSelector {
    fn begin_cycle(&mut self, _topology: &dyn Topology, _rng: &mut dyn RngCore) {
        self.cursor = 0;
    }

    fn next_pair(
        &mut self,
        topology: &dyn Topology,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, NodeId)> {
        let n = topology.len();
        if n == 0 {
            return None;
        }
        // Each slot belongs to exactly one initiator; wrap around so the
        // selector also works when driven for more than N calls per cycle.
        let initiator = NodeId::new(self.cursor % n);
        self.cursor += 1;
        let responder = topology.random_neighbor(initiator, rng)?;
        Some((initiator, responder))
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::contact_counts;
    use crate::theory;
    use overlay_topology::{generators, CompleteTopology, Graph};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn every_node_initiates_exactly_once_per_cycle() {
        let topo = CompleteTopology::new(200);
        let mut r = rng();
        let mut selector = SequentialSelector::new();
        selector.begin_cycle(&topo, &mut r);
        let mut initiations = vec![0u32; 200];
        for _ in 0..200 {
            let (initiator, responder) = selector.next_pair(&topo, &mut r).unwrap();
            initiations[initiator.index()] += 1;
            assert_ne!(initiator, responder);
        }
        assert!(initiations.iter().all(|&c| c == 1));
    }

    #[test]
    fn begin_cycle_resets_the_iteration_order() {
        let topo = CompleteTopology::new(10);
        let mut r = rng();
        let mut selector = SequentialSelector::new();
        selector.begin_cycle(&topo, &mut r);
        let _ = selector.next_pair(&topo, &mut r);
        let _ = selector.next_pair(&topo, &mut r);
        selector.begin_cycle(&topo, &mut r);
        let (initiator, _) = selector.next_pair(&topo, &mut r).unwrap();
        assert_eq!(initiator, NodeId::new(0));
    }

    #[test]
    fn contact_distribution_matches_one_plus_poisson_one() {
        let topo = CompleteTopology::new(2_000);
        let mut r = rng();
        let mut selector = SequentialSelector::new();
        let mut reduction_sum = 0.0;
        let mut contact_sum = 0u64;
        let mut min_contacts = u32::MAX;
        let mut samples = 0usize;
        for _ in 0..20 {
            let counts = contact_counts(&mut selector, &topo, &mut r);
            for &c in &counts {
                reduction_sum += 2.0f64.powi(-(c as i32));
                contact_sum += u64::from(c);
                min_contacts = min_contacts.min(c);
                samples += 1;
            }
        }
        // Every node is selected at least once (as initiator).
        assert!(min_contacts >= 1);
        // Mean contacts per cycle is 2 (one initiation + one expected response).
        let mean = contact_sum as f64 / samples as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean contacts {mean}");
        // E(2^-φ) ≈ 1/(2√e).
        let mean_reduction = reduction_sum / samples as f64;
        assert!(
            (mean_reduction - theory::seq_rate()).abs() < 0.01,
            "empirical E(2^-φ) = {mean_reduction}, expected ≈ {}",
            theory::seq_rate()
        );
    }

    #[test]
    fn isolated_nodes_yield_empty_slots_but_do_not_block_the_cycle() {
        let mut graph = Graph::with_nodes(4);
        graph.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        // Nodes 2 and 3 are isolated.
        let mut r = rng();
        let mut selector = SequentialSelector::new();
        selector.begin_cycle(&graph, &mut r);
        let mut produced = 0;
        for _ in 0..4 {
            if selector.next_pair(&graph, &mut r).is_some() {
                produced += 1;
            }
        }
        assert_eq!(produced, 2, "only the two connected nodes can initiate");
    }

    #[test]
    fn pairs_follow_overlay_edges() {
        let mut r = rng();
        let graph = generators::random_regular(100, 20, &mut r).unwrap();
        let mut selector = SequentialSelector::new();
        selector.begin_cycle(&graph, &mut r);
        for _ in 0..100 {
            let (a, b) = selector.next_pair(&graph, &mut r).unwrap();
            assert!(graph.contains_edge(a, b));
        }
    }

    #[test]
    fn empty_topology_returns_none() {
        let mut r = rng();
        let mut selector = SequentialSelector::new();
        assert!(selector
            .next_pair(&CompleteTopology::new(0), &mut r)
            .is_none());
    }
}
