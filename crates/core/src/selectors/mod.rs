//! Pair selection strategies — the paper's `GETPAIR` implementations.
//!
//! The theoretical core of the paper (Section 3) analyses the in-place vector
//! algorithm `AVG` (Figure 2), which is driven by a `GETPAIR` oracle returning
//! the pair of nodes that performs the next elementary variance-reduction
//! step. The convergence rate depends only on the distribution of `φ`, the
//! number of times a node is selected during one cycle (N calls):
//!
//! | selector | paper name | per-cycle variance reduction `E(2^-φ)` |
//! |---|---|---|
//! | [`PerfectMatchingSelector`] | `GETPAIR_PM` | 1/4 (optimal) |
//! | [`RandomEdgeSelector`] | `GETPAIR_RAND` | 1/e ≈ 0.368 |
//! | [`SequentialSelector`] | `GETPAIR_SEQ` | ≈ 1/(2√e) ≈ 0.303 |
//! | [`PmRandSelector`] | `GETPAIR_PMRAND` | 1/(2√e) (analysis proxy for SEQ) |
//!
//! All selectors are *value blind*: they never look at the numbers stored at
//! the nodes, only at the overlay topology, exactly as required by the paper's
//! model ("the returned pair cannot be determined (or affected) by some global
//! property of the value vector").

mod perfect_matching;
mod pmrand;
mod random_edge;
mod sequential;

pub use perfect_matching::PerfectMatchingSelector;
pub use pmrand::PmRandSelector;
pub use random_edge::RandomEdgeSelector;
pub use sequential::SequentialSelector;

use crate::theory;
use overlay_topology::{NodeId, Topology};
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// A `GETPAIR` implementation: produces the pairs on which the elementary
/// variance-reduction steps are performed.
///
/// One *cycle* of the AVG algorithm consists of [`PairSelector::begin_cycle`]
/// followed by exactly `N` calls to [`PairSelector::next_pair`] (where `N` is
/// the number of nodes). A call may return `None` when no valid pair exists
/// for that slot (for instance the sequential selector hit an isolated node);
/// the driver simply skips such slots.
pub trait PairSelector: Debug {
    /// Resets per-cycle state. Must be called before the first
    /// [`PairSelector::next_pair`] of every cycle.
    fn begin_cycle(&mut self, topology: &dyn Topology, rng: &mut dyn RngCore);

    /// Returns the next pair of distinct nodes to exchange, or `None` if this
    /// slot cannot produce a valid pair.
    fn next_pair(
        &mut self,
        topology: &dyn Topology,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, NodeId)>;

    /// Short, stable, human readable name (used in reports and traces).
    fn name(&self) -> &'static str;
}

/// Enumeration of the built-in pair-selection strategies, for use in
/// serialisable experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum SelectorKind {
    /// `GETPAIR_PM` — non-overlapping perfect matchings; the optimal reference.
    PerfectMatching,
    /// `GETPAIR_RAND` — uniformly random edges.
    RandomEdge,
    /// `GETPAIR_SEQ` — every node initiates exactly once per cycle, in a fixed
    /// order; this is the practically deployable protocol.
    Sequential,
    /// `GETPAIR_PMRAND` — first half of the cycle behaves like PM, the second
    /// half like RAND; the analytical proxy the paper uses for SEQ.
    PmRand,
}

impl SelectorKind {
    /// Instantiates the corresponding selector.
    pub fn instantiate(self) -> Box<dyn PairSelector> {
        match self {
            SelectorKind::PerfectMatching => Box::new(PerfectMatchingSelector::new()),
            SelectorKind::RandomEdge => Box::new(RandomEdgeSelector::new()),
            SelectorKind::Sequential => Box::new(SequentialSelector::new()),
            SelectorKind::PmRand => Box::new(PmRandSelector::new()),
        }
    }

    /// The closed-form per-cycle variance-reduction factor the paper derives
    /// for this selector (Section 3.3), i.e. the expected value `E(2^-φ)`.
    pub fn theoretical_rate(self) -> f64 {
        match self {
            SelectorKind::PerfectMatching => theory::PM_RATE,
            SelectorKind::RandomEdge => theory::rand_rate(),
            SelectorKind::Sequential | SelectorKind::PmRand => theory::seq_rate(),
        }
    }

    /// All built-in selector kinds, in the order used by reports.
    pub fn all() -> [SelectorKind; 4] {
        [
            SelectorKind::PerfectMatching,
            SelectorKind::RandomEdge,
            SelectorKind::Sequential,
            SelectorKind::PmRand,
        ]
    }

    /// The paper's name for the selector (`getPair_pm`, `getPair_rand`, …).
    pub fn paper_name(self) -> &'static str {
        match self {
            SelectorKind::PerfectMatching => "getPair_pm",
            SelectorKind::RandomEdge => "getPair_rand",
            SelectorKind::Sequential => "getPair_seq",
            SelectorKind::PmRand => "getPair_pmrand",
        }
    }
}

impl std::fmt::Display for SelectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Counts how many times each node participates in the pairs produced during
/// one cycle — the random variable `φ` of Theorem 1.
///
/// Helper shared by tests and benchmarks that validate selector behaviour
/// against the distributions assumed in the paper (φ ≡ 2 for PM, Poisson(2)
/// for RAND, 1 + Poisson(1) for SEQ).
pub fn contact_counts(
    selector: &mut dyn PairSelector,
    topology: &dyn Topology,
    rng: &mut dyn RngCore,
) -> Vec<u32> {
    let n = topology.len();
    let mut counts = vec![0u32; n];
    selector.begin_cycle(topology, rng);
    for _ in 0..n {
        if let Some((a, b)) = selector.next_pair(topology, rng) {
            counts[a.index()] += 1;
            counts[b.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_topology::CompleteTopology;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn kinds_instantiate_with_expected_names() {
        assert_eq!(
            SelectorKind::PerfectMatching.instantiate().name(),
            "perfect-matching"
        );
        assert_eq!(SelectorKind::RandomEdge.instantiate().name(), "random-edge");
        assert_eq!(SelectorKind::Sequential.instantiate().name(), "sequential");
        assert_eq!(SelectorKind::PmRand.instantiate().name(), "pm-rand");
    }

    #[test]
    fn theoretical_rates_match_the_paper() {
        assert!((SelectorKind::PerfectMatching.theoretical_rate() - 0.25).abs() < 1e-12);
        assert!((SelectorKind::RandomEdge.theoretical_rate() - 0.367_879_441).abs() < 1e-6);
        assert!((SelectorKind::Sequential.theoretical_rate() - 0.303_265_33).abs() < 1e-6);
        assert_eq!(
            SelectorKind::Sequential.theoretical_rate(),
            SelectorKind::PmRand.theoretical_rate()
        );
    }

    #[test]
    fn paper_names_and_display() {
        assert_eq!(SelectorKind::RandomEdge.to_string(), "getPair_rand");
        assert_eq!(SelectorKind::Sequential.paper_name(), "getPair_seq");
        assert_eq!(SelectorKind::all().len(), 4);
    }

    #[test]
    fn contact_counts_sum_to_twice_the_pairs() {
        let topo = CompleteTopology::new(100);
        let mut r = rng();
        for kind in SelectorKind::all() {
            let mut selector = kind.instantiate();
            let counts = contact_counts(selector.as_mut(), &topo, &mut r);
            let total: u32 = counts.iter().sum();
            assert_eq!(
                total % 2,
                0,
                "{kind:?}: every pair contributes exactly two contacts"
            );
            assert!(total > 0, "{kind:?} produced no pairs at all");
        }
    }

    #[test]
    fn selectors_are_usable_as_trait_objects() {
        let topo = CompleteTopology::new(10);
        let mut r = rng();
        let mut selectors: Vec<Box<dyn PairSelector>> = SelectorKind::all()
            .iter()
            .map(|k| k.instantiate())
            .collect();
        for s in &mut selectors {
            s.begin_cycle(&topo, &mut r);
            let pair = s.next_pair(&topo, &mut r);
            if let Some((a, b)) = pair {
                assert_ne!(a, b);
            }
        }
    }
}
