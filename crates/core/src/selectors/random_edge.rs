//! `GETPAIR_RAND`: uniformly random edges.

use super::PairSelector;
use overlay_topology::{NodeId, Topology};
use rand::RngCore;

/// The paper's `GETPAIR_RAND`: every call returns an edge of the overlay drawn
/// uniformly at random, independently of all previous calls.
///
/// Over one cycle (N calls) the number of exchanges a given node participates
/// in is well approximated by a Poisson(2) random variable, giving the
/// per-cycle variance-reduction factor `E(2^-φ) = 1/e ≈ 0.368`
/// (Section 3.3.2). In a deployment this corresponds to every node waiting an
/// exponentially distributed time before initiating an exchange, which the
/// paper mentions as the natural distributed realisation.
///
/// # Example
///
/// ```
/// use aggregate_core::selectors::{PairSelector, RandomEdgeSelector};
/// use overlay_topology::CompleteTopology;
/// use rand::SeedableRng;
///
/// let topo = CompleteTopology::new(10);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut selector = RandomEdgeSelector::new();
/// selector.begin_cycle(&topo, &mut rng);
/// let (a, b) = selector.next_pair(&topo, &mut rng).unwrap();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct RandomEdgeSelector;

impl RandomEdgeSelector {
    /// Creates a new random-edge selector.
    pub fn new() -> Self {
        RandomEdgeSelector
    }
}

impl PairSelector for RandomEdgeSelector {
    fn begin_cycle(&mut self, _topology: &dyn Topology, _rng: &mut dyn RngCore) {
        // Stateless: nothing to reset.
    }

    fn next_pair(
        &mut self,
        topology: &dyn Topology,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, NodeId)> {
        topology.random_edge(rng)
    }

    fn name(&self) -> &'static str {
        "random-edge"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::contact_counts;
    use crate::theory;
    use overlay_topology::{generators, CompleteTopology};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn pairs_are_valid_edges() {
        let mut r = rng();
        let graph = generators::random_regular(50, 6, &mut r).unwrap();
        let mut selector = RandomEdgeSelector::new();
        selector.begin_cycle(&graph, &mut r);
        for _ in 0..500 {
            let (a, b) = selector.next_pair(&graph, &mut r).unwrap();
            assert_ne!(a, b);
            assert!(graph.contains_edge(a, b));
        }
    }

    #[test]
    fn contact_distribution_approximates_poisson_two() {
        // Average number of contacts per node over a cycle must be 2, and the
        // empirical mean of 2^-φ must be close to 1/e (the paper's rate).
        let topo = CompleteTopology::new(2_000);
        let mut r = rng();
        let mut selector = RandomEdgeSelector::new();
        let mut total_contacts = 0u64;
        let mut reduction_sum = 0.0;
        let mut samples = 0usize;
        for _ in 0..20 {
            let counts = contact_counts(&mut selector, &topo, &mut r);
            for &c in &counts {
                total_contacts += u64::from(c);
                reduction_sum += 2.0f64.powi(-(c as i32));
                samples += 1;
            }
        }
        let mean_contacts = total_contacts as f64 / samples as f64;
        assert!(
            (mean_contacts - 2.0).abs() < 0.05,
            "mean contacts {mean_contacts} should be ≈ 2"
        );
        let mean_reduction = reduction_sum / samples as f64;
        assert!(
            (mean_reduction - theory::rand_rate()).abs() < 0.01,
            "empirical E(2^-φ) = {mean_reduction}, expected ≈ {}",
            theory::rand_rate()
        );
    }

    #[test]
    fn zero_variance_of_poisson_is_not_assumed() {
        // Sanity: unlike PM, the counts are NOT all equal to 2.
        let topo = CompleteTopology::new(500);
        let mut r = rng();
        let mut selector = RandomEdgeSelector::new();
        let counts = contact_counts(&mut selector, &topo, &mut r);
        assert!(counts.iter().any(|&c| c != 2));
    }

    #[test]
    fn empty_topologies_yield_no_pairs() {
        let mut r = rng();
        let mut selector = RandomEdgeSelector::new();
        assert!(selector
            .next_pair(&CompleteTopology::new(1), &mut r)
            .is_none());
        let isolated = overlay_topology::Graph::with_nodes(5);
        assert!(selector.next_pair(&isolated, &mut r).is_none());
    }
}
