//! `GETPAIR_PM`: non-overlapping perfect matchings (the optimal reference).

use super::PairSelector;
use overlay_topology::{NodeId, Topology};
use rand::seq::SliceRandom;
use rand::RngCore;
use std::collections::VecDeque;

/// The paper's `GETPAIR_PM`: pairs are taken from precomputed perfect
/// matchings, so within one cycle every node participates in **exactly two**
/// exchanges (`φ ≡ 2`), which Lemma 2 shows is the optimum — a per-cycle
/// variance reduction of exactly 1/4.
///
/// As the paper notes, this strategy "cannot be mapped to an efficient
/// distributed P2P protocol because it requires global knowledge of the
/// system"; it is implemented here purely as the reference point for the
/// convergence benchmarks (E1) and for validating Theorem 1.
///
/// # Behaviour per topology
///
/// * On (near-)complete topologies the selector builds a random perfect
///   matching from a shuffled permutation, and when it runs out it builds a
///   *second* matching guaranteed to share no pair with the first (the
///   "rotated" pairing of the same permutation), exactly as prescribed in
///   Section 3.3.1.
/// * On sparse topologies a random *maximal* matching is built greedily along
///   existing edges; nodes that cannot be matched are skipped (their slot
///   returns `None`). This keeps the selector usable on arbitrary graphs,
///   albeit without the optimality guarantee, which only holds for complete
///   overlays anyway.
#[derive(Debug, Default)]
pub struct PerfectMatchingSelector {
    /// Pairs remaining in the current matching.
    queue: VecDeque<(NodeId, NodeId)>,
    /// The shuffled permutation behind the current matching (complete-topology
    /// path only); reused to derive the second, disjoint matching.
    permutation: Vec<NodeId>,
    /// Whether the next refill should use the rotated (second) matching.
    use_rotation: bool,
}

impl PerfectMatchingSelector {
    /// Creates a new perfect-matching selector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Treats the topology as complete if every node's degree is `n - 1`
    /// (checked on a small sample to stay O(1)).
    fn topology_is_complete(topology: &dyn Topology) -> bool {
        let n = topology.len();
        if n < 2 {
            return false;
        }
        let probes = [0usize, n / 2, n - 1];
        probes
            .iter()
            .all(|&i| topology.degree(NodeId::new(i)) == n - 1)
    }

    fn refill_complete(&mut self, topology: &dyn Topology, rng: &mut dyn RngCore) {
        let n = topology.len();
        if !self.use_rotation || self.permutation.len() != n {
            // Fresh permutation → first matching: (p0,p1), (p2,p3), …
            self.permutation = (0..n).map(NodeId::new).collect();
            self.permutation.shuffle(rng);
            self.queue = self
                .permutation
                .chunks_exact(2)
                .map(|c| (c[0], c[1]))
                .collect();
            self.use_rotation = true;
        } else {
            // Second matching from the same permutation, shifted by one:
            // (p1,p2), (p3,p4), …, (p_{n-1}, p0). For even n this is a perfect
            // matching sharing no pair with the first one.
            let p = &self.permutation;
            let n = p.len();
            let mut pairs = VecDeque::with_capacity(n / 2);
            let mut i = 1;
            while i + 1 < n {
                pairs.push_back((p[i], p[i + 1]));
                i += 2;
            }
            if n % 2 == 0 && n >= 2 {
                pairs.push_back((p[n - 1], p[0]));
            }
            self.queue = pairs;
            self.use_rotation = false;
        }
    }

    fn refill_sparse(&mut self, topology: &dyn Topology, rng: &mut dyn RngCore) {
        let n = topology.len();
        let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        order.shuffle(rng);
        let mut matched = vec![false; n];
        let mut pairs = VecDeque::with_capacity(n / 2);
        for &node in &order {
            if matched[node.index()] {
                continue;
            }
            // Try a few random neighbours, then fall back to scanning the
            // neighbour list for any unmatched one.
            let mut partner = None;
            for _ in 0..8 {
                if let Some(candidate) = topology.random_neighbor(node, rng) {
                    if !matched[candidate.index()] {
                        partner = Some(candidate);
                        break;
                    }
                }
            }
            if partner.is_none() {
                partner = topology
                    .neighbors(node)
                    .into_iter()
                    .find(|c| !matched[c.index()]);
            }
            if let Some(p) = partner {
                matched[node.index()] = true;
                matched[p.index()] = true;
                pairs.push_back((node, p));
            }
        }
        self.queue = pairs;
    }

    fn refill(&mut self, topology: &dyn Topology, rng: &mut dyn RngCore) {
        if Self::topology_is_complete(topology) {
            self.refill_complete(topology, rng);
        } else {
            self.refill_sparse(topology, rng);
        }
    }
}

impl PairSelector for PerfectMatchingSelector {
    fn begin_cycle(&mut self, _topology: &dyn Topology, _rng: &mut dyn RngCore) {
        // Matchings deliberately survive across cycle boundaries: the paper's
        // definition only requires that pairs are served matching-by-matching.
        // Restarting here would be equally valid; keeping the queue avoids
        // discarding half-used matchings when N is odd.
    }

    fn next_pair(
        &mut self,
        topology: &dyn Topology,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, NodeId)> {
        if topology.len() < 2 {
            return None;
        }
        if self.queue.is_empty() {
            self.refill(topology, rng);
        }
        self.queue.pop_front()
    }

    fn name(&self) -> &'static str {
        "perfect-matching"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::contact_counts;
    use overlay_topology::{generators, CompleteTopology};
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn every_node_contacted_exactly_twice_per_cycle_on_complete_topology() {
        // This is the φ ≡ 2 property that makes PM optimal (rate 1/4).
        let topo = CompleteTopology::new(100);
        let mut r = rng();
        let mut selector = PerfectMatchingSelector::new();
        for _ in 0..5 {
            let counts = contact_counts(&mut selector, &topo, &mut r);
            assert!(
                counts.iter().all(|&c| c == 2),
                "expected every node to be selected exactly twice, got {counts:?}"
            );
        }
    }

    #[test]
    fn consecutive_matchings_share_no_pair() {
        let topo = CompleteTopology::new(20);
        let mut r = rng();
        let mut selector = PerfectMatchingSelector::new();
        selector.begin_cycle(&topo, &mut r);
        let mut first = HashSet::new();
        for _ in 0..10 {
            let (a, b) = selector.next_pair(&topo, &mut r).unwrap();
            first.insert(if a < b { (a, b) } else { (b, a) });
        }
        for _ in 0..10 {
            let (a, b) = selector.next_pair(&topo, &mut r).unwrap();
            let key = if a < b { (a, b) } else { (b, a) };
            assert!(
                !first.contains(&key),
                "pair {key:?} appeared in two consecutive matchings"
            );
        }
    }

    #[test]
    fn pairs_are_always_distinct_nodes() {
        let topo = CompleteTopology::new(50);
        let mut r = rng();
        let mut selector = PerfectMatchingSelector::new();
        selector.begin_cycle(&topo, &mut r);
        for _ in 0..200 {
            let (a, b) = selector.next_pair(&topo, &mut r).unwrap();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn sparse_topology_uses_only_existing_edges() {
        let mut r = rng();
        let graph = generators::random_regular(60, 6, &mut r).unwrap();
        let mut selector = PerfectMatchingSelector::new();
        selector.begin_cycle(&graph, &mut r);
        for _ in 0..120 {
            if let Some((a, b)) = selector.next_pair(&graph, &mut r) {
                assert!(
                    graph.contains_edge(a, b),
                    "pair {a}-{b} is not an edge of the overlay"
                );
            }
        }
    }

    #[test]
    fn sparse_topology_matchings_touch_each_node_at_most_once() {
        let mut r = rng();
        let graph = generators::random_regular(40, 4, &mut r).unwrap();
        let mut selector = PerfectMatchingSelector::new();
        // Force a refill and inspect exactly one matching.
        selector.refill(&graph, &mut r);
        let mut seen = HashSet::new();
        while let Some((a, b)) = selector.queue.pop_front() {
            assert!(seen.insert(a), "node {a} matched twice in one matching");
            assert!(seen.insert(b), "node {b} matched twice in one matching");
        }
    }

    #[test]
    fn degenerate_topologies_produce_no_pairs() {
        let mut r = rng();
        let mut selector = PerfectMatchingSelector::new();
        assert!(selector
            .next_pair(&CompleteTopology::new(0), &mut r)
            .is_none());
        assert!(selector
            .next_pair(&CompleteTopology::new(1), &mut r)
            .is_none());
    }

    #[test]
    fn star_topology_matches_hub_with_one_leaf() {
        let mut r = rng();
        let star = generators::star(9);
        let mut selector = PerfectMatchingSelector::new();
        let counts = contact_counts(&mut selector, &star, &mut r);
        // The hub can only be matched once per matching; the selector must
        // never pair two leaves together.
        assert!(counts[0] >= 1);
        for leaf in 1..9 {
            assert!(counts[leaf] <= counts[0] + 1);
        }
    }
}
