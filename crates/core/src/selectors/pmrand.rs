//! `GETPAIR_PMRAND`: perfect matching for the first half of the cycle, random
//! edges for the second half.

use super::{PairSelector, PerfectMatchingSelector, RandomEdgeSelector};
use overlay_topology::{NodeId, Topology};
use rand::RngCore;

/// The paper's `GETPAIR_PMRAND` (Section 3.3.3): during the first `N/2` calls
/// of a cycle it behaves like [`PerfectMatchingSelector`], during the
/// remaining calls like [`RandomEdgeSelector`].
///
/// The selector is not meant for deployment; the paper introduces it because
/// its per-node contact count has the same `1 + Poisson(1)` distribution as
/// `GETPAIR_SEQ` while still satisfying the assumptions of Theorem 1, which
/// yields the `1/(2√e)` convergence rate that is then transferred to the
/// practical sequential protocol. It is implemented here so that the
/// substitution step of the analysis can itself be validated empirically
/// (benchmark E1 compares SEQ and PMRAND side by side).
#[derive(Debug, Default)]
pub struct PmRandSelector {
    pm: PerfectMatchingSelector,
    rand: RandomEdgeSelector,
    calls_in_cycle: usize,
    topology_len: usize,
}

impl PmRandSelector {
    /// Creates a new PM+RAND composite selector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PairSelector for PmRandSelector {
    fn begin_cycle(&mut self, topology: &dyn Topology, rng: &mut dyn RngCore) {
        self.calls_in_cycle = 0;
        self.topology_len = topology.len();
        self.pm.begin_cycle(topology, rng);
        self.rand.begin_cycle(topology, rng);
    }

    fn next_pair(
        &mut self,
        topology: &dyn Topology,
        rng: &mut dyn RngCore,
    ) -> Option<(NodeId, NodeId)> {
        let half = self.topology_len.max(topology.len()) / 2;
        let use_pm = self.calls_in_cycle < half;
        self.calls_in_cycle += 1;
        if use_pm {
            self.pm.next_pair(topology, rng)
        } else {
            self.rand.next_pair(topology, rng)
        }
    }

    fn name(&self) -> &'static str {
        "pm-rand"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selectors::contact_counts;
    use crate::theory;
    use overlay_topology::CompleteTopology;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn every_node_contacted_at_least_once_via_the_pm_half() {
        let topo = CompleteTopology::new(400);
        let mut r = rng();
        let mut selector = PmRandSelector::new();
        let counts = contact_counts(&mut selector, &topo, &mut r);
        assert!(
            counts.iter().all(|&c| c >= 1),
            "the PM half guarantees one contact per node"
        );
    }

    #[test]
    fn contact_distribution_matches_one_plus_poisson_one() {
        let topo = CompleteTopology::new(2_000);
        let mut r = rng();
        let mut selector = PmRandSelector::new();
        let mut reduction_sum = 0.0;
        let mut contact_sum = 0u64;
        let mut samples = 0usize;
        for _ in 0..20 {
            let counts = contact_counts(&mut selector, &topo, &mut r);
            for &c in &counts {
                reduction_sum += 2.0f64.powi(-(c as i32));
                contact_sum += u64::from(c);
                samples += 1;
            }
        }
        let mean = contact_sum as f64 / samples as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean contacts {mean}");
        let mean_reduction = reduction_sum / samples as f64;
        assert!(
            (mean_reduction - theory::seq_rate()).abs() < 0.01,
            "empirical E(2^-φ) = {mean_reduction}, expected ≈ {}",
            theory::seq_rate()
        );
    }

    #[test]
    fn pairs_are_distinct_nodes() {
        let topo = CompleteTopology::new(64);
        let mut r = rng();
        let mut selector = PmRandSelector::new();
        selector.begin_cycle(&topo, &mut r);
        for _ in 0..64 {
            let (a, b) = selector.next_pair(&topo, &mut r).unwrap();
            assert_ne!(a, b);
        }
    }

    #[test]
    fn begin_cycle_restarts_the_pm_phase() {
        let topo = CompleteTopology::new(10);
        let mut r = rng();
        let mut selector = PmRandSelector::new();
        selector.begin_cycle(&topo, &mut r);
        for _ in 0..10 {
            let _ = selector.next_pair(&topo, &mut r);
        }
        // Start a fresh cycle; first half must again be matching-driven, so
        // the first five slots must contact ten distinct nodes.
        selector.begin_cycle(&topo, &mut r);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            let (a, b) = selector.next_pair(&topo, &mut r).unwrap();
            assert!(seen.insert(a));
            assert!(seen.insert(b));
        }
    }
}
