//! Redundant concurrent instances: the paper's defense against malicious
//! participants.
//!
//! Section 4's robustness discussion proposes running *multiple* concurrent
//! aggregation instances and "reporting the median" so that a minority of
//! compromised instances cannot move the result: with `k` instances and
//! `f < k/2` of them captured, the median is always bracketed by honest
//! values. This module holds the policy half of that defense — how many
//! instances to run and how to merge their reports — while the engines own
//! the election half (picking `k` distinct leaders per epoch from a labelled
//! seed stream).
//!
//! Merging is deliberately boring and total: sorting uses
//! [`f64::total_cmp`], so NaN inputs cannot poison a comparison, and every
//! degenerate input (no instances, non-finite reports, over-aggressive
//! trimming) returns a typed [`ReportError`] instead of panicking.

use crate::aggregate::CountInit;
use crate::node::EpochResult;
use crate::protocol::InstanceTag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How the per-instance reports of one epoch are merged into the defended
/// estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MergePolicy {
    /// Report the median of the instance estimates (the paper's proposal).
    /// With `f < k/2` captured instances the median is bracketed by honest
    /// reports, so the error is bounded by the spread of the honest
    /// instances — see `merge_estimates`.
    Median,
    /// Drop the `trim` smallest and `trim` largest reports, then average the
    /// rest. Matches the median's breakdown point when `trim = ⌊k/2⌋ - ...`
    /// is chosen against the expected number of captured instances, while
    /// pooling more honest instances than the bare median.
    TrimmedMean {
        /// Number of reports removed from *each* end before averaging.
        trim: usize,
    },
}

impl fmt::Display for MergePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MergePolicy::Median => f.write_str("median"),
            MergePolicy::TrimmedMean { trim } => write!(f, "trimmed-mean(trim={trim})"),
        }
    }
}

/// Configuration of the redundant-instance defense: run `instances` parallel
/// counting instances per epoch (each with its own elected leader drawn from
/// an independent labelled seed stream) and merge their reports with
/// `merge`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedundancyConfig {
    /// Number of concurrent instances per epoch (`k`); must be ≥ 1.
    pub instances: usize,
    /// How the per-instance estimates are merged.
    pub merge: MergePolicy,
}

impl RedundancyConfig {
    /// The classic defense: `k` instances, median reporting.
    pub fn median_of(instances: usize) -> Self {
        RedundancyConfig {
            instances,
            merge: MergePolicy::Median,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ReportError::NoInstances`] when `instances` is zero, and
    /// [`ReportError::OverTrimmed`] when the trimmed mean would discard
    /// every report even with all `k` instances present.
    pub fn validate(&self) -> Result<(), ReportError> {
        if self.instances == 0 {
            return Err(ReportError::NoInstances);
        }
        if let MergePolicy::TrimmedMean { trim } = self.merge {
            if 2 * trim >= self.instances {
                return Err(ReportError::OverTrimmed {
                    trim,
                    reports: self.instances,
                });
            }
        }
        Ok(())
    }
}

/// A degenerate instance set that cannot be merged into an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportError {
    /// No instance reports at all (no leaders elected, or the node never
    /// heard of any counting instance).
    NoInstances,
    /// A report was NaN or infinite — an instance state that inverted to a
    /// non-finite size estimate.
    NonFiniteReport,
    /// The trimmed mean would discard every report (`2·trim ≥ reports`).
    OverTrimmed {
        /// Reports removed from each end.
        trim: usize,
        /// Reports available.
        reports: usize,
    },
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ReportError::NoInstances => f.write_str("no instance reports to merge"),
            ReportError::NonFiniteReport => f.write_str("instance report is not finite"),
            ReportError::OverTrimmed { trim, reports } => write!(
                f,
                "trimming {trim} from each end of {reports} reports leaves nothing to average"
            ),
        }
    }
}

impl std::error::Error for ReportError {}

/// Merges per-instance estimates into one defended report under `policy`.
///
/// Sorting uses [`f64::total_cmp`] so the merge is total, but non-finite
/// reports are still rejected up front: a NaN that sorted to one end would
/// silently eat a trim slot, and an infinite report is an estimator failure
/// the caller must see, not average away.
///
/// The defended guarantee (pinned in `tests/byzantine.rs`): with `k` reports
/// of which `f < ⌈k/2⌉` are adversarial, the median lies between the minimum
/// and maximum *honest* report — equivalently, the adversary can shift the
/// median by no more than the amplitude of the (⌈k/2⌉)-th order statistic of
/// the honest set.
///
/// # Errors
///
/// [`ReportError::NoInstances`] on an empty slice,
/// [`ReportError::NonFiniteReport`] on any NaN/infinite report, and
/// [`ReportError::OverTrimmed`] when `2·trim ≥ len`.
pub fn merge_estimates(reports: &[f64], policy: MergePolicy) -> Result<f64, ReportError> {
    if reports.is_empty() {
        return Err(ReportError::NoInstances);
    }
    if reports.iter().any(|value| !value.is_finite()) {
        return Err(ReportError::NonFiniteReport);
    }
    let mut sorted = reports.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    match policy {
        MergePolicy::Median => {
            let n = sorted.len();
            if n % 2 == 1 {
                Ok(sorted[n / 2])
            } else {
                // Even k: mean of the two middle reports. Still safe under
                // f < k/2 — at most k/2 - 1 adversarial extremes leave both
                // middle positions honest.
                Ok((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
            }
        }
        MergePolicy::TrimmedMean { trim } => {
            let n = sorted.len();
            if 2 * trim >= n {
                return Err(ReportError::OverTrimmed { trim, reports: n });
            }
            let kept = &sorted[trim..n - trim];
            Ok(kept.iter().sum::<f64>() / kept.len() as f64)
        }
    }
}

/// Extracts the *defended* network-size estimate from a finished
/// [`EpochResult`]: each counting instance (non-default tag) is inverted to
/// its own size estimate, and the per-instance estimates are merged under
/// `policy`.
///
/// This is the redundant counterpart of
/// [`crate::size_estimation::size_estimate_from_epoch`], which pools the
/// instance *states* by averaging — optimal when every instance is honest,
/// but a single captured instance moves that average arbitrarily. Merging
/// the per-instance *estimates* by median keeps a minority of captured
/// instances from moving the report at all.
///
/// # Errors
///
/// [`ReportError::NoInstances`] when the node did not participate in the
/// full epoch or observed no counting instance, plus the
/// [`merge_estimates`] errors.
pub fn redundant_size_estimate_from_epoch(
    result: &EpochResult,
    policy: MergePolicy,
) -> Result<f64, ReportError> {
    if !result.full_participation {
        return Err(ReportError::NoInstances);
    }
    let reports: Vec<f64> = result
        .estimates
        .iter()
        .filter(|(tag, _)| *tag != InstanceTag::DEFAULT)
        .map(|(_, state)| CountInit::size_estimate(*state))
        .collect();
    merge_estimates(&reports, policy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_counts() {
        assert_eq!(merge_estimates(&[3.0], MergePolicy::Median), Ok(3.0));
        assert_eq!(
            merge_estimates(&[9.0, 1.0, 5.0], MergePolicy::Median),
            Ok(5.0)
        );
        assert_eq!(
            merge_estimates(&[4.0, 1.0, 2.0, 3.0], MergePolicy::Median),
            Ok(2.5)
        );
    }

    #[test]
    fn median_ignores_a_minority_of_outliers() {
        // k = 5, f = 2 wildly adversarial reports: the median stays honest.
        let reports = [100.0, 101.0, 99.0, 1e12, -1e12];
        assert_eq!(merge_estimates(&reports, MergePolicy::Median), Ok(100.0));
    }

    #[test]
    fn trimmed_mean_drops_extremes_then_averages() {
        let reports = [100.0, 104.0, 96.0, 1e9, 0.0];
        let merged = merge_estimates(&reports, MergePolicy::TrimmedMean { trim: 1 }).unwrap();
        assert!((merged - 100.0).abs() < 1e-9, "merged {merged}");
        // trim = 0 degenerates to the plain mean.
        assert_eq!(
            merge_estimates(&[1.0, 3.0], MergePolicy::TrimmedMean { trim: 0 }),
            Ok(2.0)
        );
    }

    #[test]
    fn degenerate_inputs_return_typed_errors() {
        assert_eq!(
            merge_estimates(&[], MergePolicy::Median),
            Err(ReportError::NoInstances)
        );
        assert_eq!(
            merge_estimates(&[1.0, f64::NAN], MergePolicy::Median),
            Err(ReportError::NonFiniteReport)
        );
        assert_eq!(
            merge_estimates(&[1.0, f64::INFINITY], MergePolicy::TrimmedMean { trim: 0 }),
            Err(ReportError::NonFiniteReport)
        );
        assert_eq!(
            merge_estimates(&[1.0, 2.0], MergePolicy::TrimmedMean { trim: 1 }),
            Err(ReportError::OverTrimmed {
                trim: 1,
                reports: 2
            })
        );
        for error in [
            ReportError::NoInstances,
            ReportError::NonFiniteReport,
            ReportError::OverTrimmed {
                trim: 2,
                reports: 4,
            },
        ] {
            assert!(!error.to_string().is_empty());
        }
    }

    #[test]
    fn config_validation() {
        assert!(RedundancyConfig::median_of(5).validate().is_ok());
        assert_eq!(
            RedundancyConfig::median_of(0).validate(),
            Err(ReportError::NoInstances)
        );
        assert!(RedundancyConfig {
            instances: 5,
            merge: MergePolicy::TrimmedMean { trim: 2 }
        }
        .validate()
        .is_ok());
        assert_eq!(
            RedundancyConfig {
                instances: 4,
                merge: MergePolicy::TrimmedMean { trim: 2 }
            }
            .validate(),
            Err(ReportError::OverTrimmed {
                trim: 2,
                reports: 4
            })
        );
        assert_eq!(MergePolicy::Median.to_string(), "median");
        assert_eq!(
            MergePolicy::TrimmedMean { trim: 1 }.to_string(),
            "trimmed-mean(trim=1)"
        );
    }

    #[test]
    fn epoch_extraction_inverts_each_instance_before_merging() {
        // Three counting instances at 10k nodes; one captured (state pushed
        // far above 1/N, collapsing its estimate). The median survives.
        let result = EpochResult {
            epoch: 2,
            estimates: vec![
                (InstanceTag::DEFAULT, 42.0),
                (InstanceTag(1), 1.0 / 10_000.0),
                (InstanceTag(2), 1.02 / 10_000.0),
                (InstanceTag(3), 0.05), // captured: claims N = 20
            ],
            full_participation: true,
        };
        let defended = redundant_size_estimate_from_epoch(&result, MergePolicy::Median).unwrap();
        assert!((defended - 10_000.0).abs() < 250.0, "defended {defended}");

        let partial = EpochResult {
            full_participation: false,
            ..result.clone()
        };
        assert_eq!(
            redundant_size_estimate_from_epoch(&partial, MergePolicy::Median),
            Err(ReportError::NoInstances)
        );
        let no_instances = EpochResult {
            epoch: 2,
            estimates: vec![(InstanceTag::DEFAULT, 42.0)],
            full_participation: true,
        };
        assert_eq!(
            redundant_size_estimate_from_epoch(&no_instances, MergePolicy::Median),
            Err(ReportError::NoInstances)
        );
    }

    #[test]
    fn median_shift_is_bounded_by_the_middle_order_statistic() {
        // The pinned bound from the issue: f malicious of k reports shift
        // the median by no more than the (⌈k/2⌉)-th honest order statistic's
        // amplitude. Exhaustively check k = 5, f = 2 with adversarial
        // reports on both sides.
        let honest = [98.0, 100.0, 103.0];
        for adversarial in [[1e6, 2e6], [-1e6, 1e6], [0.0, 0.0]] {
            let mut reports = honest.to_vec();
            reports.extend_from_slice(&adversarial);
            let merged = merge_estimates(&reports, MergePolicy::Median).unwrap();
            let lo = honest.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = honest.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(
                (lo..=hi).contains(&merged),
                "median {merged} escaped honest range [{lo}, {hi}]"
            );
        }
    }
}
