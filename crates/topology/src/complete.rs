//! Virtual complete topology.

use crate::{sampling, NodeId, Topology};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// A *virtual* complete graph over `n` nodes.
///
/// The paper's theoretical analysis (Section 3.3) assumes the overlay is the
/// complete graph: "whenever a random neighbor has to be selected, it can be
/// considered as sampling the whole set of nodes". Materialising the
/// `N·(N−1)/2` edges for `N = 100 000` (Figure 3) would require tens of
/// gigabytes, so this type answers every [`Topology`] query arithmetically
/// instead of storing adjacency lists.
///
/// # Example
///
/// ```
/// use overlay_topology::{CompleteTopology, NodeId, Topology};
/// use rand::SeedableRng;
///
/// let topo = CompleteTopology::new(100_000);
/// assert_eq!(topo.degree(NodeId::new(0)), 99_999);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let peer = topo.random_neighbor(NodeId::new(42), &mut rng).unwrap();
/// assert_ne!(peer, NodeId::new(42));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompleteTopology {
    nodes: usize,
}

impl CompleteTopology {
    /// Creates a complete topology over `nodes` nodes.
    pub const fn new(nodes: usize) -> Self {
        CompleteTopology { nodes }
    }
}

impl Topology for CompleteTopology {
    fn len(&self) -> usize {
        self.nodes
    }

    fn degree(&self, node: NodeId) -> usize {
        assert!(
            node.index() < self.nodes,
            "node {node} out of range for complete topology of {} nodes",
            self.nodes
        );
        self.nodes - 1
    }

    fn random_neighbor(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        if self.nodes < 2 || node.index() >= self.nodes {
            return None;
        }
        // Draw from 0..n-1 and skip over the node itself: uniform over the
        // other n-1 nodes with a single RNG call.
        let raw = rng.gen_range(0..self.nodes - 1);
        let neighbor = if raw >= node.index() { raw + 1 } else { raw };
        Some(NodeId::new(neighbor))
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.nodes)
            .filter(|&i| i != node.index())
            .map(NodeId::new)
            .collect()
    }

    fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        a != b && a.index() < self.nodes && b.index() < self.nodes
    }

    fn random_edge(&self, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)> {
        if self.nodes < 2 {
            return None;
        }
        let (a, b) = sampling::sample_distinct_pair(self.nodes, rng)?;
        Some((NodeId::new(a), NodeId::new(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn len_and_degree() {
        let t = CompleteTopology::new(10);
        assert_eq!(t.len(), 10);
        for i in 0..10 {
            assert_eq!(t.degree(NodeId::new(i)), 9);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degree_panics_out_of_range() {
        let t = CompleteTopology::new(3);
        let _ = t.degree(NodeId::new(3));
    }

    #[test]
    fn random_neighbor_never_returns_self_and_covers_everyone() {
        let t = CompleteTopology::new(8);
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let nb = t.random_neighbor(NodeId::new(3), &mut r).unwrap();
            assert_ne!(nb, NodeId::new(3));
            assert!(nb.index() < 8);
            seen.insert(nb);
        }
        assert_eq!(seen.len(), 7, "all other nodes should eventually be drawn");
    }

    #[test]
    fn random_neighbor_uniformity_chi_square_sanity() {
        // With n=5 and node 0, the 4 possible neighbours should be roughly
        // equally likely. We only assert loose bounds (not a strict test).
        let t = CompleteTopology::new(5);
        let mut r = rng();
        let mut counts = [0usize; 5];
        let draws = 20_000;
        for _ in 0..draws {
            let nb = t.random_neighbor(NodeId::new(0), &mut r).unwrap();
            counts[nb.index()] += 1;
        }
        assert_eq!(counts[0], 0);
        for &c in &counts[1..] {
            let expected = draws as f64 / 4.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "count {c} deviates too much from {expected}"
            );
        }
    }

    #[test]
    fn degenerate_sizes_have_no_neighbors_or_edges() {
        let mut r = rng();
        for n in [0usize, 1] {
            let t = CompleteTopology::new(n);
            assert!(t.random_edge(&mut r).is_none());
            if n == 1 {
                assert!(t.random_neighbor(NodeId::new(0), &mut r).is_none());
                assert!(t.neighbors(NodeId::new(0)).is_empty());
            }
        }
    }

    #[test]
    fn neighbors_lists_everyone_else() {
        let t = CompleteTopology::new(4);
        let nb = t.neighbors(NodeId::new(2));
        assert_eq!(nb, vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn contains_edge_semantics() {
        let t = CompleteTopology::new(4);
        assert!(t.contains_edge(NodeId::new(0), NodeId::new(3)));
        assert!(!t.contains_edge(NodeId::new(1), NodeId::new(1)));
        assert!(!t.contains_edge(NodeId::new(0), NodeId::new(4)));
    }

    #[test]
    fn random_edge_returns_distinct_valid_nodes() {
        let t = CompleteTopology::new(6);
        let mut r = rng();
        for _ in 0..200 {
            let (a, b) = t.random_edge(&mut r).unwrap();
            assert_ne!(a, b);
            assert!(a.index() < 6 && b.index() < 6);
        }
    }

    #[test]
    fn out_of_range_node_has_no_neighbor() {
        let t = CompleteTopology::new(3);
        let mut r = rng();
        assert!(t.random_neighbor(NodeId::new(7), &mut r).is_none());
    }
}
