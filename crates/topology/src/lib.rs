//! # overlay-topology
//!
//! Overlay network topologies for epidemic-style aggregation protocols.
//!
//! This crate is the topology substrate of the reproduction of *"Epidemic-Style
//! Proactive Aggregation in Large Overlay Networks"* (Jelasity & Montresor,
//! ICDCS 2004). The paper analyses the anti-entropy averaging protocol on two
//! kinds of overlays:
//!
//! * the **complete graph**, where every node may talk to every other node, and
//! * **k-regular random graphs** (the paper uses a fixed view size of 20),
//!   which approximate what a peer-sampling / membership service provides.
//!
//! Beyond those two, the crate ships the generators a practitioner needs to
//! study the protocol on more realistic structures: Erdős–Rényi random graphs,
//! rings, two-dimensional lattices, Watts–Strogatz small worlds, Barabási–Albert
//! scale-free graphs and stars.
//!
//! ## Design
//!
//! The central abstraction is the [`Topology`] trait: the aggregation protocol
//! only ever asks *"give me a uniformly random neighbour of node `i`"*, so the
//! trait is deliberately tiny and object safe. Two families of implementations
//! exist:
//!
//! * [`Graph`] — an explicit adjacency-list graph, produced by the generators in
//!   [`generators`];
//! * [`CompleteTopology`] — a *virtual* complete graph that never materialises
//!   its `N·(N−1)/2` edges, so experiments with `N = 100 000` nodes (Figure 3 of
//!   the paper) stay cheap.
//!
//! ## Example
//!
//! ```
//! use overlay_topology::{generators, NodeId, Topology};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), overlay_topology::TopologyError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! // The overlay used throughout the paper's Figure 3: 20-regular random graph.
//! let graph = generators::random_regular(1_000, 20, &mut rng)?;
//! assert_eq!(graph.len(), 1_000);
//! assert!(graph.is_connected());
//!
//! let neighbour = graph.random_neighbor(NodeId::new(0), &mut rng);
//! assert!(neighbour.is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod complete;
mod connectivity;
mod degree;
mod error;
mod graph;
mod id;
mod sampling;
mod view;

pub mod generators;

pub use builder::{BuiltTopology, TopologyBuilder, TopologyKind};
pub use complete::CompleteTopology;
pub use connectivity::{bfs_distances, connected_components, estimate_diameter};
pub use degree::DegreeStats;
pub use error::TopologyError;
pub use graph::Graph;
pub use id::NodeId;
pub use sampling::{sample_distinct_pair, sample_nodes_without_replacement};
pub use view::ViewTopology;

use rand::RngCore;

/// An overlay topology: the neighbourhood structure over which the gossip
/// protocol selects communication partners.
///
/// The aggregation protocol of the paper only relies on two operations:
/// *"how many nodes are there"* and *"pick a uniformly random neighbour of
/// node `i`"*. Keeping the trait this small makes it cheap to provide virtual
/// implementations (such as [`CompleteTopology`]) and dynamic ones (such as a
/// peer-sampling service).
///
/// The trait is object safe; random number generators are passed as
/// `&mut dyn RngCore` so that implementations can be used behind `dyn Topology`.
pub trait Topology {
    /// Number of nodes in the overlay.
    fn len(&self) -> usize;

    /// Returns `true` if the overlay contains no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Degree (number of neighbours) of `node`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `node` is out of range.
    fn degree(&self, node: NodeId) -> usize;

    /// Draws a uniformly random neighbour of `node`, or `None` if the node is
    /// isolated.
    fn random_neighbor(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId>;

    /// Returns the materialised neighbour list of `node`.
    ///
    /// For virtual topologies (e.g. the complete graph) this allocates a vector
    /// of size `degree(node)`; prefer [`Topology::random_neighbor`] in hot
    /// paths.
    fn neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// Returns `true` if the undirected edge `{a, b}` is part of the overlay.
    fn contains_edge(&self, a: NodeId, b: NodeId) -> bool;

    /// Draws an edge uniformly at random from the overlay, or `None` if the
    /// overlay has no edges.
    ///
    /// Uniformity is over *edges*, not over nodes: in irregular graphs
    /// high-degree vertices appear in proportionally more edges. This is the
    /// sampling primitive behind the paper's `GETPAIR_RAND`.
    fn random_edge(&self, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)>;
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn trait_is_object_safe() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let complete = CompleteTopology::new(10);
        let graph = generators::ring(10);
        let topologies: Vec<Box<dyn Topology>> = vec![Box::new(complete), Box::new(graph)];
        for topo in &topologies {
            assert_eq!(topo.len(), 10);
            assert!(!topo.is_empty());
            assert!(topo.random_neighbor(NodeId::new(3), &mut rng).is_some());
        }
    }

    #[test]
    fn is_empty_default_follows_len() {
        let empty = CompleteTopology::new(0);
        assert!(empty.is_empty());
        let nonempty = CompleteTopology::new(2);
        assert!(!nonempty.is_empty());
    }
}
