//! Degree statistics.

use crate::{Graph, Topology};
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's degree sequence.
///
/// Used by the benchmarks and by tests asserting structural properties of the
/// generators (for instance that `random_regular(n, 20, …)` really is
/// 20-regular, the overlay the paper simulates).
///
/// # Example
///
/// ```
/// use overlay_topology::{DegreeStats, Graph};
///
/// let g = Graph::complete(5);
/// let stats = DegreeStats::from_graph(&g);
/// assert_eq!(stats.min, 4);
/// assert_eq!(stats.max, 4);
/// assert_eq!(stats.mean, 4.0);
/// assert_eq!(stats.isolated, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
    /// Number of isolated (degree-zero) nodes.
    pub isolated: usize,
}

impl DegreeStats {
    /// Computes degree statistics for `graph`.
    ///
    /// Returns all-zero statistics for the empty graph.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.len();
        if n == 0 {
            return DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                variance: 0.0,
                isolated: 0,
            };
        }
        let degrees: Vec<usize> = graph.node_ids().map(|id| graph.degree(id)).collect();
        let min = *degrees.iter().min().expect("non-empty"); // lint-allow(unwrap): the n == 0 case returned early above
        let max = *degrees.iter().max().expect("non-empty"); // lint-allow(unwrap): the n == 0 case returned early above
        let isolated = degrees.iter().filter(|&&d| d == 0).count();
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        let variance = degrees
            .iter()
            .map(|&d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / n as f64;
        DegreeStats {
            min,
            max,
            mean,
            variance,
            isolated,
        }
    }

    /// Returns `true` if every node has exactly degree `k`.
    pub fn is_regular_with_degree(&self, k: usize) -> bool {
        self.min == k && self.max == k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn empty_graph_stats_are_zero() {
        let stats = DegreeStats::from_graph(&Graph::with_nodes(0));
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 0);
        assert_eq!(stats.mean, 0.0);
        assert_eq!(stats.variance, 0.0);
        assert_eq!(stats.isolated, 0);
    }

    #[test]
    fn counts_isolated_nodes() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let stats = DegreeStats::from_graph(&g);
        assert_eq!(stats.isolated, 2);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 1);
        assert!((stats.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_graph_stats() {
        // hub 0 connected to 1..=4
        let mut g = Graph::with_nodes(5);
        for i in 1..5 {
            g.add_edge(NodeId::new(0), NodeId::new(i)).unwrap();
        }
        let stats = DegreeStats::from_graph(&g);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 4);
        assert!((stats.mean - 1.6).abs() < 1e-12);
        // degrees: 4,1,1,1,1; mean 1.6; variance = (5.76 + 4*0.36)/5 = 1.44
        assert!((stats.variance - 1.44).abs() < 1e-12);
    }

    #[test]
    fn regular_detection() {
        let g = Graph::complete(6);
        let stats = DegreeStats::from_graph(&g);
        assert!(stats.is_regular_with_degree(5));
        assert!(!stats.is_regular_with_degree(4));
        assert_eq!(stats.variance, 0.0);
    }
}
