//! High-level topology builder used by the simulator and the benchmarks.

use crate::{generators, CompleteTopology, Graph, Topology, TopologyError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Declarative description of an overlay topology.
///
/// `TopologyKind` is what experiment configurations store (it is `serde`
/// serialisable); [`TopologyBuilder`] turns it into a concrete [`Topology`]
/// once a node count and an RNG are available. The two kinds used by the
/// paper's evaluation are [`TopologyKind::Complete`] and
/// [`TopologyKind::RandomRegular`] with `degree = 20`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TopologyKind {
    /// Fully connected overlay (virtual, no materialised edges).
    Complete,
    /// Random regular graph with the given degree (the paper's "view size").
    RandomRegular {
        /// Node degree (view size).
        degree: usize,
    },
    /// Erdős–Rényi `G(n, p)` random graph.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// Ring (cycle) topology.
    Ring,
    /// Two-dimensional torus lattice; `rows × cols` must equal the node count.
    Lattice {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Watts–Strogatz small-world graph.
    SmallWorld {
        /// Base (even) degree of the ring lattice.
        degree: usize,
        /// Rewiring probability.
        beta: f64,
    },
    /// Barabási–Albert scale-free graph.
    ScaleFree {
        /// Number of edges attached by each new node.
        attachment: usize,
    },
    /// Star topology with node 0 as hub.
    Star,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Complete => write!(f, "complete"),
            TopologyKind::RandomRegular { degree } => write!(f, "{degree}-regular random"),
            TopologyKind::ErdosRenyi { p } => write!(f, "erdos-renyi(p={p})"),
            TopologyKind::Ring => write!(f, "ring"),
            TopologyKind::Lattice { rows, cols } => write!(f, "lattice({rows}x{cols})"),
            TopologyKind::SmallWorld { degree, beta } => {
                write!(f, "small-world(k={degree}, beta={beta})")
            }
            TopologyKind::ScaleFree { attachment } => write!(f, "scale-free(m={attachment})"),
            TopologyKind::Star => write!(f, "star"),
        }
    }
}

/// Materialised topology produced by [`TopologyBuilder::build`].
///
/// The enum avoids boxing in the common case while still letting callers treat
/// every variant uniformly through the [`Topology`] trait (which it
/// implements by delegation).
#[derive(Debug, Clone)]
pub enum BuiltTopology {
    /// A virtual complete graph.
    Complete(CompleteTopology),
    /// An explicit graph.
    Graph(Graph),
}

impl Topology for BuiltTopology {
    fn len(&self) -> usize {
        match self {
            BuiltTopology::Complete(t) => t.len(),
            BuiltTopology::Graph(g) => g.len(),
        }
    }

    fn degree(&self, node: crate::NodeId) -> usize {
        match self {
            BuiltTopology::Complete(t) => t.degree(node),
            BuiltTopology::Graph(g) => g.degree(node),
        }
    }

    fn random_neighbor(
        &self,
        node: crate::NodeId,
        rng: &mut dyn rand::RngCore,
    ) -> Option<crate::NodeId> {
        match self {
            BuiltTopology::Complete(t) => t.random_neighbor(node, rng),
            BuiltTopology::Graph(g) => g.random_neighbor(node, rng),
        }
    }

    fn neighbors(&self, node: crate::NodeId) -> Vec<crate::NodeId> {
        match self {
            BuiltTopology::Complete(t) => t.neighbors(node),
            BuiltTopology::Graph(g) => g.neighbors(node),
        }
    }

    fn contains_edge(&self, a: crate::NodeId, b: crate::NodeId) -> bool {
        match self {
            BuiltTopology::Complete(t) => t.contains_edge(a, b),
            BuiltTopology::Graph(g) => g.contains_edge(a, b),
        }
    }

    fn random_edge(&self, rng: &mut dyn rand::RngCore) -> Option<(crate::NodeId, crate::NodeId)> {
        match self {
            BuiltTopology::Complete(t) => t.random_edge(rng),
            BuiltTopology::Graph(g) => g.random_edge(rng),
        }
    }
}

/// Builder turning a [`TopologyKind`] plus a node count into a concrete
/// topology.
///
/// # Example
///
/// ```
/// use overlay_topology::{TopologyBuilder, TopologyKind, Topology};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let topo = TopologyBuilder::new(TopologyKind::RandomRegular { degree: 20 })
///     .nodes(1_000)
///     .build(&mut rng)?;
/// assert_eq!(topo.len(), 1_000);
/// # Ok::<(), overlay_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyBuilder {
    kind: TopologyKind,
    nodes: usize,
}

impl TopologyBuilder {
    /// Creates a builder for the given topology kind with zero nodes.
    pub fn new(kind: TopologyKind) -> Self {
        TopologyBuilder { kind, nodes: 0 }
    }

    /// Sets the number of nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Returns the configured topology kind.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Propagates generator errors (invalid degree, invalid probability,
    /// lattice dimension mismatch, generation failure).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<BuiltTopology, TopologyError> {
        let n = self.nodes;
        Ok(match self.kind {
            TopologyKind::Complete => BuiltTopology::Complete(CompleteTopology::new(n)),
            TopologyKind::RandomRegular { degree } => {
                BuiltTopology::Graph(generators::random_regular(n, degree, rng)?)
            }
            TopologyKind::ErdosRenyi { p } => {
                BuiltTopology::Graph(generators::erdos_renyi(n, p, rng)?)
            }
            TopologyKind::Ring => BuiltTopology::Graph(generators::ring(n)),
            TopologyKind::Lattice { rows, cols } => {
                if rows * cols != n {
                    return Err(TopologyError::InvalidParameter {
                        reason: format!(
                            "lattice dimensions {rows}x{cols} do not match node count {n}"
                        ),
                    });
                }
                BuiltTopology::Graph(generators::lattice2d(rows, cols)?)
            }
            TopologyKind::SmallWorld { degree, beta } => {
                BuiltTopology::Graph(generators::watts_strogatz(n, degree, beta, rng)?)
            }
            TopologyKind::ScaleFree { attachment } => {
                BuiltTopology::Graph(generators::barabasi_albert(n, attachment, rng)?)
            }
            TopologyKind::Star => BuiltTopology::Graph(generators::star(n)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(55)
    }

    #[test]
    fn builds_every_kind() {
        let mut r = rng();
        let kinds = [
            TopologyKind::Complete,
            TopologyKind::RandomRegular { degree: 4 },
            TopologyKind::ErdosRenyi { p: 0.1 },
            TopologyKind::Ring,
            TopologyKind::Lattice { rows: 10, cols: 10 },
            TopologyKind::SmallWorld {
                degree: 4,
                beta: 0.2,
            },
            TopologyKind::ScaleFree { attachment: 2 },
            TopologyKind::Star,
        ];
        for kind in kinds {
            let topo = TopologyBuilder::new(kind).nodes(100).build(&mut r).unwrap();
            assert_eq!(topo.len(), 100, "kind {kind} built wrong node count");
            assert!(
                topo.random_neighbor(NodeId::new(1), &mut r).is_some(),
                "kind {kind} produced an isolated node 1"
            );
        }
    }

    #[test]
    fn lattice_dimension_mismatch_is_rejected() {
        let mut r = rng();
        let err = TopologyBuilder::new(TopologyKind::Lattice { rows: 3, cols: 3 })
            .nodes(10)
            .build(&mut r)
            .unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter { .. }));
    }

    #[test]
    fn generator_errors_propagate() {
        let mut r = rng();
        let err = TopologyBuilder::new(TopologyKind::RandomRegular { degree: 100 })
            .nodes(10)
            .build(&mut r)
            .unwrap_err();
        assert!(matches!(err, TopologyError::InvalidDegree { .. }));
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(TopologyKind::Complete.to_string(), "complete");
        assert_eq!(
            TopologyKind::RandomRegular { degree: 20 }.to_string(),
            "20-regular random"
        );
        assert_eq!(TopologyKind::Ring.to_string(), "ring");
        assert_eq!(TopologyKind::Star.to_string(), "star");
        assert!(TopologyKind::SmallWorld {
            degree: 4,
            beta: 0.1
        }
        .to_string()
        .contains("small-world"));
    }

    #[test]
    fn built_topology_delegates_trait_methods() {
        let mut r = rng();
        let complete = TopologyBuilder::new(TopologyKind::Complete)
            .nodes(5)
            .build(&mut r)
            .unwrap();
        assert_eq!(complete.degree(NodeId::new(0)), 4);
        assert!(complete.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(complete.neighbors(NodeId::new(0)).len(), 4);
        assert!(complete.random_edge(&mut r).is_some());

        let ring = TopologyBuilder::new(TopologyKind::Ring)
            .nodes(5)
            .build(&mut r)
            .unwrap();
        assert_eq!(ring.degree(NodeId::new(0)), 2);
        assert!(ring.random_edge(&mut r).is_some());
    }

    #[test]
    fn kind_accessor_returns_configuration() {
        let b = TopologyBuilder::new(TopologyKind::Star).nodes(3);
        assert_eq!(b.kind(), TopologyKind::Star);
    }
}
