//! Sampling primitives shared by topologies and generators.

use rand::{Rng, RngCore};

/// Draws an unordered pair of *distinct* indices uniformly from `0..n`.
///
/// Returns `None` if `n < 2`. The pair is returned with the smaller index
/// first so that callers can use it directly as a normalised undirected edge.
///
/// # Example
///
/// ```
/// use overlay_topology::sample_distinct_pair;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let (a, b) = sample_distinct_pair(10, &mut rng).unwrap();
/// assert!(a < b);
/// assert!(b < 10);
/// ```
pub fn sample_distinct_pair(n: usize, rng: &mut dyn RngCore) -> Option<(usize, usize)> {
    if n < 2 {
        return None;
    }
    let first = rng.gen_range(0..n);
    let mut second = rng.gen_range(0..n - 1);
    if second >= first {
        second += 1;
    }
    Some(if first < second {
        (first, second)
    } else {
        (second, first)
    })
}

/// Draws `k` distinct indices uniformly without replacement from `0..n`.
///
/// Uses Floyd's algorithm, which needs `O(k)` memory and `O(k)` RNG calls, so
/// it stays cheap even when `n` is very large (e.g. sampling 20 contacts out
/// of a 100 000-node overlay).
///
/// Returns `None` if `k > n`.
///
/// # Example
///
/// ```
/// use overlay_topology::sample_nodes_without_replacement;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let picks = sample_nodes_without_replacement(1_000, 20, &mut rng).unwrap();
/// assert_eq!(picks.len(), 20);
/// ```
pub fn sample_nodes_without_replacement(
    n: usize,
    k: usize,
    rng: &mut dyn RngCore,
) -> Option<Vec<usize>> {
    if k > n {
        return None;
    }
    // Robert Floyd's sampling algorithm.
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(2024)
    }

    #[test]
    fn distinct_pair_is_distinct_and_ordered() {
        let mut r = rng();
        for _ in 0..500 {
            let (a, b) = sample_distinct_pair(7, &mut r).unwrap();
            assert!(a < b);
            assert!(b < 7);
        }
    }

    #[test]
    fn distinct_pair_requires_two_elements() {
        let mut r = rng();
        assert!(sample_distinct_pair(0, &mut r).is_none());
        assert!(sample_distinct_pair(1, &mut r).is_none());
        assert_eq!(sample_distinct_pair(2, &mut r), Some((0, 1)));
    }

    #[test]
    fn distinct_pair_covers_all_pairs() {
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..2000 {
            seen.insert(sample_distinct_pair(5, &mut r).unwrap());
        }
        // C(5,2) = 10 unordered pairs.
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn distinct_pair_is_roughly_uniform() {
        let mut r = rng();
        let n = 4; // 6 pairs
        let draws = 30_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..draws {
            *counts
                .entry(sample_distinct_pair(n, &mut r).unwrap())
                .or_insert(0usize) += 1;
        }
        let expected = draws as f64 / 6.0;
        for (&pair, &count) in &counts {
            assert!(
                (count as f64 - expected).abs() < expected * 0.1,
                "pair {pair:?} count {count} deviates from expected {expected}"
            );
        }
    }

    #[test]
    fn without_replacement_returns_distinct_in_range() {
        let mut r = rng();
        for _ in 0..100 {
            let picks = sample_nodes_without_replacement(50, 12, &mut r).unwrap();
            assert_eq!(picks.len(), 12);
            let set: HashSet<_> = picks.iter().copied().collect();
            assert_eq!(set.len(), 12, "picks must be distinct");
            assert!(picks.iter().all(|&p| p < 50));
        }
    }

    #[test]
    fn without_replacement_edge_cases() {
        let mut r = rng();
        assert_eq!(sample_nodes_without_replacement(5, 0, &mut r), Some(vec![]));
        assert!(sample_nodes_without_replacement(3, 4, &mut r).is_none());
        let all = sample_nodes_without_replacement(4, 4, &mut r).unwrap();
        let set: HashSet<_> = all.into_iter().collect();
        assert_eq!(set, (0..4).collect());
    }

    #[test]
    fn without_replacement_each_element_equally_likely() {
        // Sampling 2 from 5: every element should be included with probability 2/5.
        let mut r = rng();
        let draws = 25_000;
        let mut counts = [0usize; 5];
        for _ in 0..draws {
            for p in sample_nodes_without_replacement(5, 2, &mut r).unwrap() {
                counts[p] += 1;
            }
        }
        let expected = draws as f64 * 2.0 / 5.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.08,
                "count {c} deviates from expected {expected}"
            );
        }
    }
}
