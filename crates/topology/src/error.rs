//! Error type for topology construction.

use std::error::Error;
use std::fmt;

/// Errors reported while constructing or validating an overlay topology.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The requested degree is impossible for the requested node count
    /// (for instance `degree >= nodes`, or `nodes * degree` odd for a regular
    /// graph).
    InvalidDegree {
        /// Number of nodes requested.
        nodes: usize,
        /// Degree requested.
        degree: usize,
        /// Human readable explanation of the constraint that was violated.
        reason: &'static str,
    },
    /// A probability parameter was outside the closed interval `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A generator exhausted its retry budget without producing a valid graph
    /// (e.g. the pairing model for random regular graphs kept producing
    /// self-loops or duplicate edges).
    GenerationFailed {
        /// Number of attempts made before giving up.
        attempts: usize,
        /// Description of the generator that failed.
        generator: &'static str,
    },
    /// A node identifier referenced a node outside the graph.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// The requested parameter combination is not supported
    /// (e.g. a lattice whose side lengths do not multiply to the node count).
    InvalidParameter {
        /// Human readable explanation.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidDegree {
                nodes,
                degree,
                reason,
            } => write!(f, "invalid degree {degree} for {nodes} nodes: {reason}"),
            TopologyError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            TopologyError::GenerationFailed {
                attempts,
                generator,
            } => write!(f, "{generator} generator failed after {attempts} attempts"),
            TopologyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
            TopologyError::InvalidParameter { reason } => {
                write!(f, "invalid parameter: {reason}")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TopologyError::InvalidDegree {
            nodes: 10,
            degree: 10,
            reason: "degree must be smaller than the number of nodes",
        };
        let msg = e.to_string();
        assert!(msg.contains("10 nodes"));
        assert!(msg.contains("degree 10"));

        let e = TopologyError::InvalidProbability { value: 1.5 };
        assert!(e.to_string().contains("1.5"));

        let e = TopologyError::GenerationFailed {
            attempts: 100,
            generator: "random regular",
        };
        assert!(e.to_string().contains("100 attempts"));

        let e = TopologyError::NodeOutOfRange { node: 7, nodes: 5 };
        assert!(e.to_string().contains("node 7"));

        let e = TopologyError::InvalidParameter {
            reason: "rows*cols != nodes".to_string(),
        };
        assert!(e.to_string().contains("rows*cols"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TopologyError>();
    }

    #[test]
    fn errors_compare_equal_by_value() {
        let a = TopologyError::InvalidProbability { value: 0.5 };
        let b = TopologyError::InvalidProbability { value: 0.5 };
        assert_eq!(a, b);
    }
}
