//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact identifier for a node of the overlay network.
///
/// Nodes are numbered densely from `0` to `N − 1`; the identifier is a thin
/// newtype around `u32`, which comfortably covers the network sizes studied in
/// the paper (up to 100 000 nodes) and far beyond, while keeping adjacency
/// lists half the size of a `usize`-based representation.
///
/// # Example
///
/// ```
/// use overlay_topology::NodeId;
///
/// let id = NodeId::new(41);
/// assert_eq!(id.index(), 41);
/// assert_eq!(format!("{id}"), "n41");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    pub fn new(index: usize) -> Self {
        // lint-allow(unwrap): documented `# Panics` contract of NodeId::new
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Creates a node identifier from a raw `u32` value.
    pub const fn from_u32(raw: u32) -> Self {
        NodeId(raw)
    }

    /// Returns the identifier as a dense `usize` index, suitable for indexing
    /// per-node state vectors.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(raw: u32) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn new_and_index_round_trip() {
        for raw in [0usize, 1, 17, 99_999, u32::MAX as usize] {
            assert_eq!(NodeId::new(raw).index(), raw);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn new_panics_on_overflow() {
        let _ = NodeId::new(u32::MAX as usize + 1);
    }

    #[test]
    fn conversions_are_consistent() {
        let id = NodeId::from(7u32);
        assert_eq!(u32::from(id), 7);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id, NodeId::from_u32(7));
        assert_eq!(id.as_u32(), 7);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(10) > NodeId::new(9));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        let id = NodeId::new(3);
        assert_eq!(format!("{id}"), "n3");
        assert_eq!(format!("{id:?}"), "NodeId(3)");
    }

    #[test]
    fn usable_as_hash_key() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn serde_round_trip_via_debug_shape() {
        // serde is derived; a cheap smoke test that the impls exist and agree.
        fn assert_serialize<T: serde::Serialize>() {}
        fn assert_deserialize<T: for<'de> serde::Deserialize<'de>>() {}
        assert_serialize::<NodeId>();
        assert_deserialize::<NodeId>();
    }
}
