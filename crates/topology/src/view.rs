//! Dynamic, view-based topology.

use crate::{NodeId, Topology};
use rand::{Rng, RngCore};

/// A topology defined by per-node *views* (directed neighbour lists) that can
/// be updated at run time.
///
/// The paper assumes that "each node has a non-empty set of neighbors"
/// maintained by some membership protocol (its references [5, 7, 9]). The
/// `peer-sampling` crate implements such a protocol (newscast); `ViewTopology`
/// is the bridge type: it holds the current partial views of every node and
/// exposes them through the [`Topology`] trait so that the aggregation
/// protocol and the simulator can consume membership-provided neighbourhoods
/// exactly like static graphs.
///
/// Views are *directed*: node `i` listing `j` does not imply `j` lists `i`.
/// This mirrors how gossip membership protocols work in practice; the
/// anti-entropy exchange itself is still symmetric once a partner is chosen.
///
/// # Example
///
/// ```
/// use overlay_topology::{NodeId, Topology, ViewTopology};
/// use rand::SeedableRng;
///
/// let mut views = ViewTopology::new(3);
/// views.set_view(NodeId::new(0), vec![NodeId::new(1), NodeId::new(2)]);
/// views.set_view(NodeId::new(1), vec![NodeId::new(0)]);
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// assert!(views.random_neighbor(NodeId::new(0), &mut rng).is_some());
/// assert!(views.random_neighbor(NodeId::new(2), &mut rng).is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewTopology {
    views: Vec<Vec<NodeId>>,
}

impl ViewTopology {
    /// Creates a view topology over `nodes` nodes with empty views.
    pub fn new(nodes: usize) -> Self {
        ViewTopology {
            views: vec![Vec::new(); nodes],
        }
    }

    /// Replaces the view of `node`.
    ///
    /// Entries pointing at the node itself or outside the node range are
    /// silently dropped, so a membership protocol can hand over its raw view.
    ///
    /// # Panics
    ///
    /// Panics if `node` itself is out of range.
    pub fn set_view(&mut self, node: NodeId, view: Vec<NodeId>) {
        let n = self.views.len();
        assert!(node.index() < n, "node {node} out of range");
        self.views[node.index()] = view
            .into_iter()
            .filter(|peer| peer.index() < n && *peer != node)
            .collect();
    }

    /// Returns the current view of `node` as a slice.
    pub fn view(&self, node: NodeId) -> &[NodeId] {
        &self.views[node.index()]
    }

    /// Adds a single entry to the view of `node` (ignoring self references,
    /// duplicates and out-of-range peers).
    pub fn add_to_view(&mut self, node: NodeId, peer: NodeId) {
        let n = self.views.len();
        if node.index() >= n || peer.index() >= n || node == peer {
            return;
        }
        let view = &mut self.views[node.index()];
        if !view.contains(&peer) {
            view.push(peer);
        }
    }
}

impl Topology for ViewTopology {
    fn len(&self) -> usize {
        self.views.len()
    }

    fn degree(&self, node: NodeId) -> usize {
        self.views[node.index()].len()
    }

    fn random_neighbor(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let view = &self.views[node.index()];
        if view.is_empty() {
            None
        } else {
            Some(view[rng.gen_range(0..view.len())])
        }
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.views[node.index()].clone()
    }

    fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a.index() >= self.len() || b.index() >= self.len() {
            return false;
        }
        self.views[a.index()].contains(&b) || self.views[b.index()].contains(&a)
    }

    fn random_edge(&self, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)> {
        let total: usize = self.views.iter().map(|v| v.len()).sum();
        if total == 0 {
            return None;
        }
        // Pick a directed view entry uniformly; this weights nodes by out-degree,
        // which is the natural analogue of uniform edge selection for views.
        let mut idx = rng.gen_range(0..total);
        for (node, view) in self.views.iter().enumerate() {
            if idx < view.len() {
                return Some((NodeId::new(node), view[idx]));
            }
            idx -= view.len();
        }
        unreachable!("index bounded by total view size")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    #[test]
    fn set_view_filters_invalid_entries() {
        let mut t = ViewTopology::new(3);
        t.set_view(
            NodeId::new(0),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(9)],
        );
        assert_eq!(t.view(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(t.degree(NodeId::new(0)), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_view_panics_for_unknown_node() {
        let mut t = ViewTopology::new(2);
        t.set_view(NodeId::new(5), vec![]);
    }

    #[test]
    fn add_to_view_ignores_duplicates_and_self() {
        let mut t = ViewTopology::new(3);
        t.add_to_view(NodeId::new(0), NodeId::new(1));
        t.add_to_view(NodeId::new(0), NodeId::new(1));
        t.add_to_view(NodeId::new(0), NodeId::new(0));
        t.add_to_view(NodeId::new(0), NodeId::new(7));
        assert_eq!(t.view(NodeId::new(0)), &[NodeId::new(1)]);
    }

    #[test]
    fn random_neighbor_draws_from_view_only() {
        let mut t = ViewTopology::new(5);
        t.set_view(NodeId::new(2), vec![NodeId::new(0), NodeId::new(4)]);
        let mut r = rng();
        for _ in 0..100 {
            let nb = t.random_neighbor(NodeId::new(2), &mut r).unwrap();
            assert!(nb == NodeId::new(0) || nb == NodeId::new(4));
        }
        assert!(t.random_neighbor(NodeId::new(1), &mut r).is_none());
    }

    #[test]
    fn contains_edge_is_true_for_either_direction() {
        let mut t = ViewTopology::new(3);
        t.add_to_view(NodeId::new(0), NodeId::new(1));
        assert!(t.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(t.contains_edge(NodeId::new(1), NodeId::new(0)));
        assert!(!t.contains_edge(NodeId::new(1), NodeId::new(2)));
        assert!(!t.contains_edge(NodeId::new(1), NodeId::new(9)));
    }

    #[test]
    fn random_edge_respects_views() {
        let mut t = ViewTopology::new(4);
        t.add_to_view(NodeId::new(0), NodeId::new(1));
        t.add_to_view(NodeId::new(2), NodeId::new(3));
        let mut r = rng();
        for _ in 0..50 {
            let (from, to) = t.random_edge(&mut r).unwrap();
            assert!(t.view(from).contains(&to));
        }
    }

    #[test]
    fn random_edge_of_empty_views_is_none() {
        let t = ViewTopology::new(4);
        let mut r = rng();
        assert!(t.random_edge(&mut r).is_none());
    }
}
