//! Random regular graphs (the paper's "k-reg. random" overlay).

use crate::{Graph, NodeId, Topology, TopologyError};
use rand::Rng;

/// Maximum number of pairing attempts before the generator gives up.
const MAX_ATTEMPTS: usize = 200;

/// Maximum number of consecutive rejected stub pairs within one attempt before
/// the attempt is abandoned (the matching is "stuck", e.g. only stubs of
/// already-adjacent nodes remain).
const MAX_CONSECUTIVE_REJECTIONS: usize = 5_000;

/// Generates a random `degree`-regular graph over `nodes` vertices using the
/// configuration (pairing / stub-matching) model with rejection of self-loops
/// and multi-edges.
///
/// This is the overlay behind the paper's "20-reg. random" curves in
/// Figure 3: every node knows exactly `degree` uniformly random other nodes.
/// For the degrees of interest (constant, ≥ 3) the produced graphs are
/// connected with overwhelming probability; the generator retries the pairing
/// until a simple graph is obtained, and callers that additionally require
/// connectivity can check [`Graph::is_connected`] (the crate's tests do).
///
/// # Errors
///
/// * [`TopologyError::InvalidDegree`] when `degree >= nodes` or when
///   `nodes * degree` is odd (no such graph exists).
/// * [`TopologyError::GenerationFailed`] when no simple pairing was found in
///   the retry budget (practically impossible for `degree ≪ nodes`).
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, DegreeStats};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(20);
/// let g = generators::random_regular(500, 20, &mut rng)?;
/// assert!(DegreeStats::from_graph(&g).is_regular_with_degree(20));
/// # Ok::<(), overlay_topology::TopologyError>(())
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    nodes: usize,
    degree: usize,
    rng: &mut R,
) -> Result<Graph, TopologyError> {
    if degree == 0 {
        return Ok(Graph::with_nodes(nodes));
    }
    if degree >= nodes {
        return Err(TopologyError::InvalidDegree {
            nodes,
            degree,
            reason: "degree must be smaller than the number of nodes",
        });
    }
    if (nodes * degree) % 2 != 0 {
        return Err(TopologyError::InvalidDegree {
            nodes,
            degree,
            reason: "nodes * degree must be even for a regular graph to exist",
        });
    }

    for _attempt in 0..MAX_ATTEMPTS {
        if let Some(graph) = try_stub_matching(nodes, degree, rng) {
            return Ok(graph);
        }
    }
    Err(TopologyError::GenerationFailed {
        attempts: MAX_ATTEMPTS,
        generator: "random regular (stub matching)",
    })
}

/// One attempt of Steger–Wormald style stub matching: repeatedly draw two
/// random free stubs and connect them if the resulting edge is simple. Returns
/// `None` when the matching gets stuck (only invalid pairs remain), which for
/// `degree ≪ nodes` is rare.
fn try_stub_matching<R: Rng + ?Sized>(nodes: usize, degree: usize, rng: &mut R) -> Option<Graph> {
    let mut graph = Graph::with_nodes_and_degree(nodes, degree);
    // Free stubs: each node appears `degree` times.
    let mut stubs: Vec<u32> = Vec::with_capacity(nodes * degree);
    for node in 0..nodes {
        for _ in 0..degree {
            stubs.push(node as u32);
        }
    }

    let mut rejections = 0usize;
    while !stubs.is_empty() {
        let i = rng.gen_range(0..stubs.len());
        let j = rng.gen_range(0..stubs.len());
        let (a, b) = (stubs[i], stubs[j]);
        let edge_ok =
            i != j && a != b && !graph.contains_edge(NodeId::from_u32(a), NodeId::from_u32(b));
        if !edge_ok {
            rejections += 1;
            if rejections > MAX_CONSECUTIVE_REJECTIONS {
                return None;
            }
            continue;
        }
        rejections = 0;
        graph.add_edge_unchecked(NodeId::from_u32(a), NodeId::from_u32(b));
        // Remove both stubs; pop the larger index first so the smaller one
        // remains valid.
        let (hi, lo) = if i > j { (i, j) } else { (j, i) };
        stubs.swap_remove(hi);
        stubs.swap_remove(lo);
    }
    Some(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegreeStats, Topology};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn produces_exactly_regular_graphs() {
        let mut r = rng();
        for (n, k) in [(10, 3), (100, 4), (51, 2), (64, 20)] {
            let g = random_regular(n, k, &mut r).unwrap();
            assert_eq!(g.len(), n);
            assert!(
                DegreeStats::from_graph(&g).is_regular_with_degree(k),
                "graph with n={n}, k={k} is not {k}-regular"
            );
            assert_eq!(g.num_edges(), n * k / 2);
        }
    }

    #[test]
    fn zero_degree_yields_empty_edge_set() {
        let mut r = rng();
        let g = random_regular(10, 0, &mut r).unwrap();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn rejects_degree_not_less_than_nodes() {
        let mut r = rng();
        let err = random_regular(5, 5, &mut r).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidDegree { .. }));
    }

    #[test]
    fn rejects_odd_stub_count() {
        let mut r = rng();
        let err = random_regular(5, 3, &mut r).unwrap_err();
        assert!(matches!(
            err,
            TopologyError::InvalidDegree {
                nodes: 5,
                degree: 3,
                ..
            }
        ));
    }

    #[test]
    fn graphs_contain_no_self_loops_or_duplicates() {
        let mut r = rng();
        let g = random_regular(200, 6, &mut r).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (a, b) in g.edges() {
            assert_ne!(a, b, "self loop found");
            assert!(seen.insert((a, b)), "duplicate edge {a}-{b}");
        }
    }

    #[test]
    fn typical_paper_configuration_is_connected() {
        // n=1000, k=20 as in the paper; a 20-regular random graph of this size
        // is connected with probability astronomically close to 1.
        let mut r = rng();
        let g = random_regular(1_000, 20, &mut r).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn degree_three_graphs_are_usually_connected() {
        let mut r = rng();
        let mut connected = 0;
        for _ in 0..10 {
            if random_regular(100, 3, &mut r).unwrap().is_connected() {
                connected += 1;
            }
        }
        assert!(
            connected >= 9,
            "3-regular random graphs should almost always be connected"
        );
    }

    #[test]
    fn distinct_seeds_give_distinct_graphs() {
        let g1 = random_regular(100, 4, &mut rand::rngs::StdRng::seed_from_u64(1)).unwrap();
        let g2 = random_regular(100, 4, &mut rand::rngs::StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(g1, g2);
    }
}
