//! Watts–Strogatz small-world graphs.

use crate::{Graph, NodeId, Topology, TopologyError};
use rand::Rng;

/// Generates a Watts–Strogatz small-world graph.
///
/// Starts from a ring lattice where every node is connected to its `k`
/// nearest neighbours (`k/2` on each side, `k` must be even) and rewires each
/// edge independently with probability `beta` to a uniformly random endpoint,
/// rejecting self-loops and duplicate edges.
///
/// * `beta = 0` reproduces the ring lattice (high clustering, large diameter);
/// * `beta = 1` approaches a random graph (low clustering, small diameter);
/// * intermediate values give the small-world regime that many deployed P2P
///   overlays resemble, making this a realistic stress topology for the
///   aggregation protocol beyond the paper's complete/random pair.
///
/// # Errors
///
/// * [`TopologyError::InvalidDegree`] if `k` is odd, zero, or `k >= nodes`;
/// * [`TopologyError::InvalidProbability`] if `beta` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, Topology};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let g = generators::watts_strogatz(200, 6, 0.1, &mut rng)?;
/// assert_eq!(g.len(), 200);
/// assert_eq!(g.num_edges(), 200 * 3);
/// # Ok::<(), overlay_topology::TopologyError>(())
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(
    nodes: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, TopologyError> {
    if k == 0 || k % 2 != 0 {
        return Err(TopologyError::InvalidDegree {
            nodes,
            degree: k,
            reason: "small-world base degree k must be even and positive",
        });
    }
    if k >= nodes {
        return Err(TopologyError::InvalidDegree {
            nodes,
            degree: k,
            reason: "degree must be smaller than the number of nodes",
        });
    }
    if !(0.0..=1.0).contains(&beta) || !beta.is_finite() {
        return Err(TopologyError::InvalidProbability { value: beta });
    }

    let mut graph = Graph::with_nodes_and_degree(nodes, k);
    // Ring lattice: node i connected to i+1 .. i+k/2 (mod n). Exactly one edge
    // is added per (i, offset) slot so the total edge count is always n*k/2.
    for i in 0..nodes {
        for offset in 1..=(k / 2) {
            let source = NodeId::new(i);
            let lattice_target = NodeId::new((i + offset) % nodes);
            let mut added = false;
            if !rng.gen_bool(beta) && !graph.contains_edge(source, lattice_target) {
                graph.add_edge_unchecked(source, lattice_target);
                added = true;
            }
            if !added {
                // Rewire: try random targets, then fall back to a linear scan
                // so the slot is never lost (keeps the degree sum intact).
                for _ in 0..64 {
                    let target = NodeId::new(rng.gen_range(0..nodes));
                    if target != source && !graph.contains_edge(source, target) {
                        graph.add_edge_unchecked(source, target);
                        added = true;
                        break;
                    }
                }
            }
            if !added {
                for candidate in 0..nodes {
                    let target = NodeId::new(candidate);
                    if target != source && !graph.contains_edge(source, target) {
                        graph.add_edge_unchecked(source, target);
                        break;
                    }
                }
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate_diameter;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut r = rng();
        assert!(watts_strogatz(10, 3, 0.1, &mut r).is_err()); // odd k
        assert!(watts_strogatz(10, 0, 0.1, &mut r).is_err()); // zero k
        assert!(watts_strogatz(10, 10, 0.1, &mut r).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, -0.5, &mut r).is_err());
        assert!(watts_strogatz(10, 4, 1.5, &mut r).is_err());
        assert!(watts_strogatz(10, 4, f64::NAN, &mut r).is_err());
    }

    #[test]
    fn beta_zero_reproduces_ring_lattice() {
        let mut r = rng();
        let g = watts_strogatz(20, 4, 0.0, &mut r).unwrap();
        assert_eq!(g.num_edges(), 20 * 2);
        assert!(g.is_regular());
        assert!(g.is_connected());
        // node 0 connected to 1, 2, 18, 19
        for j in [1usize, 2, 18, 19] {
            assert!(g.contains_edge(NodeId::new(0), NodeId::new(j)));
        }
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let mut r = rng();
        let lattice = watts_strogatz(400, 4, 0.0, &mut r).unwrap();
        let rewired = watts_strogatz(400, 4, 0.3, &mut r).unwrap();
        let mut r2 = rng();
        let d_lattice = estimate_diameter(&lattice, 8, &mut r2).unwrap();
        if let Some(d_rewired) = estimate_diameter(&rewired, 8, &mut r2) {
            assert!(
                d_rewired < d_lattice,
                "rewiring should shrink diameter: {d_rewired} vs {d_lattice}"
            );
        }
        // Even if the rewired graph were disconnected (extremely unlikely),
        // the lattice diameter assertion below still validates the generator.
        assert_eq!(d_lattice, 100);
    }

    #[test]
    fn edge_count_is_preserved_by_rewiring() {
        let mut r = rng();
        for beta in [0.0, 0.1, 0.5, 1.0] {
            let g = watts_strogatz(100, 6, beta, &mut r).unwrap();
            assert_eq!(g.num_edges(), 100 * 3, "edge count changed for beta={beta}");
        }
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let mut r = rng();
        let g = watts_strogatz(150, 8, 0.4, &mut r).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (a, b) in g.edges() {
            assert_ne!(a, b);
            assert!(seen.insert((a, b)));
        }
    }
}
