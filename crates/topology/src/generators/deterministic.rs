//! Deterministic reference topologies: ring, 2-D lattice, star.

use crate::{Graph, NodeId, TopologyError};

/// Builds a ring (cycle graph) over `nodes` vertices.
///
/// Rings are the slowest-mixing connected topology and therefore a useful
/// stress test for the aggregation protocol: variance still converges, but at
/// a rate far below the paper's complete-graph bounds.
///
/// Degenerate inputs are handled gracefully: `nodes < 2` produces a graph with
/// no edges, `nodes == 2` a single edge.
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, Topology};
///
/// let ring = generators::ring(8);
/// assert_eq!(ring.num_edges(), 8);
/// assert!(ring.is_regular());
/// ```
pub fn ring(nodes: usize) -> Graph {
    let mut g = Graph::with_nodes_and_degree(nodes, 2);
    if nodes == 2 {
        g.add_edge_unchecked(NodeId::new(0), NodeId::new(1));
        return g;
    }
    if nodes < 2 {
        return g;
    }
    for i in 0..nodes {
        let j = (i + 1) % nodes;
        g.add_edge_unchecked(NodeId::new(i), NodeId::new(j));
    }
    g
}

/// Builds a two-dimensional `rows × cols` torus lattice (each node has four
/// neighbours: up, down, left, right, with wrap-around).
///
/// # Errors
///
/// Returns [`TopologyError::InvalidParameter`] when either dimension is zero
/// or when a dimension is smaller than 3 (wrap-around would create duplicate
/// edges).
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, Topology};
///
/// let lattice = generators::lattice2d(5, 4).unwrap();
/// assert_eq!(lattice.len(), 20);
/// assert!(lattice.is_regular());
/// assert_eq!(lattice.num_edges(), 2 * 20); // 4-regular
/// ```
pub fn lattice2d(rows: usize, cols: usize) -> Result<Graph, TopologyError> {
    if rows < 3 || cols < 3 {
        return Err(TopologyError::InvalidParameter {
            reason: format!("torus lattice requires both dimensions >= 3, got {rows}x{cols}"),
        });
    }
    let nodes = rows * cols;
    let mut g = Graph::with_nodes_and_degree(nodes, 4);
    let id = |r: usize, c: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            // Right neighbour and down neighbour; wrap-around covers the rest.
            g.add_edge_unchecked(id(r, c), id(r, (c + 1) % cols));
            g.add_edge_unchecked(id(r, c), id((r + 1) % rows, c));
        }
    }
    Ok(g)
}

/// Builds a star graph: node `0` is the hub, all other nodes are leaves.
///
/// The star is the extreme case of a performance bottleneck: every exchange
/// must involve the hub. It is the counter-example motivating the paper's
/// claim that anti-entropy aggregation has "no performance bottlenecks" on
/// random topologies.
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, NodeId, Topology};
///
/// let star = generators::star(5);
/// assert_eq!(star.degree(NodeId::new(0)), 4);
/// assert_eq!(star.degree(NodeId::new(3)), 1);
/// ```
pub fn star(nodes: usize) -> Graph {
    let mut g = Graph::with_nodes(nodes);
    for leaf in 1..nodes {
        g.add_edge_unchecked(NodeId::new(0), NodeId::new(leaf));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_diameter, DegreeStats, Topology};
    use rand::SeedableRng;

    #[test]
    fn ring_structure() {
        let g = ring(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.is_connected());
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(5)));
        assert!(g.contains_edge(NodeId::new(0), NodeId::new(1)));
        assert!(!g.contains_edge(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn ring_degenerate_sizes() {
        assert_eq!(ring(0).num_edges(), 0);
        assert_eq!(ring(1).num_edges(), 0);
        let pair = ring(2);
        assert_eq!(pair.num_edges(), 1);
        let triangle = ring(3);
        assert_eq!(triangle.num_edges(), 3);
        assert!(triangle.is_connected());
    }

    #[test]
    fn lattice_is_four_regular_torus() {
        let g = lattice2d(4, 5).unwrap();
        let stats = DegreeStats::from_graph(&g);
        assert!(stats.is_regular_with_degree(4));
        assert!(g.is_connected());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let diameter = estimate_diameter(&g, 20, &mut rng).unwrap();
        // Torus diameter = floor(rows/2) + floor(cols/2) = 2 + 2.
        assert_eq!(diameter, 4);
    }

    #[test]
    fn lattice_rejects_thin_dimensions() {
        assert!(lattice2d(2, 5).is_err());
        assert!(lattice2d(5, 0).is_err());
        assert!(lattice2d(0, 0).is_err());
    }

    #[test]
    fn star_structure() {
        let g = star(10);
        assert_eq!(g.num_edges(), 9);
        assert!(g.is_connected());
        for leaf in 1..10 {
            assert_eq!(g.degree(NodeId::new(leaf)), 1);
            assert!(g.contains_edge(NodeId::new(0), NodeId::new(leaf)));
        }
    }

    #[test]
    fn star_degenerate_sizes() {
        assert_eq!(star(0).num_edges(), 0);
        assert_eq!(star(1).num_edges(), 0);
        assert_eq!(star(2).num_edges(), 1);
    }
}
