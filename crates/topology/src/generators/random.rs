//! Erdős–Rényi `G(n, p)` random graphs.

use crate::{Graph, NodeId, TopologyError};
use rand::Rng;

/// Generates an Erdős–Rényi random graph `G(nodes, p)`: every unordered pair
/// of nodes is connected independently with probability `p`.
///
/// Implementation note: instead of flipping a coin for each of the
/// `n·(n−1)/2` pairs, the generator skips geometrically between selected
/// pairs, so the cost is proportional to the number of *edges produced*. This
/// keeps sparse graphs over 10⁵ nodes cheap.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidProbability`] when `p` is outside `[0, 1]`
/// or not finite.
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, Topology};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let g = generators::erdos_renyi(1_000, 0.01, &mut rng)?;
/// // Expected number of edges: p * n(n-1)/2 ≈ 4995.
/// assert!(g.num_edges() > 4_000 && g.num_edges() < 6_000);
/// # Ok::<(), overlay_topology::TopologyError>(())
/// ```
pub fn erdos_renyi<R: Rng + ?Sized>(
    nodes: usize,
    p: f64,
    rng: &mut R,
) -> Result<Graph, TopologyError> {
    if !(0.0..=1.0).contains(&p) || !p.is_finite() {
        return Err(TopologyError::InvalidProbability { value: p });
    }
    let mut graph = Graph::with_nodes(nodes);
    if nodes < 2 || p == 0.0 {
        return Ok(graph);
    }
    if (p - 1.0).abs() < f64::EPSILON {
        return Ok(Graph::complete(nodes));
    }

    // Batagelj–Brandes skipping: iterate a virtual index over all pairs and
    // jump ahead by a geometric(p) distributed number of positions.
    let log_one_minus_p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n = nodes as i64;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_one_minus_p).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            graph.add_edge_unchecked(NodeId::new(w as usize), NodeId::new(v as usize));
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn rejects_invalid_probabilities() {
        let mut r = rng();
        for p in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            assert!(
                erdos_renyi(10, p, &mut r).is_err(),
                "p={p} should be rejected"
            );
        }
    }

    #[test]
    fn p_zero_gives_empty_graph_and_p_one_gives_complete() {
        let mut r = rng();
        assert_eq!(erdos_renyi(20, 0.0, &mut r).unwrap().num_edges(), 0);
        let complete = erdos_renyi(20, 1.0, &mut r).unwrap();
        assert_eq!(complete.num_edges(), 20 * 19 / 2);
    }

    #[test]
    fn edge_count_matches_expectation() {
        let mut r = rng();
        let n = 2_000usize;
        let p = 0.005;
        let g = erdos_renyi(n, p, &mut r).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let observed = g.num_edges() as f64;
        assert!(
            (observed - expected).abs() < 0.15 * expected,
            "observed {observed} edges, expected about {expected}"
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let mut r = rng();
        let g = erdos_renyi(300, 0.05, &mut r).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (a, b) in g.edges() {
            assert_ne!(a, b);
            assert!(seen.insert((a, b)));
        }
    }

    #[test]
    fn supersparse_and_tiny_graphs() {
        let mut r = rng();
        assert_eq!(erdos_renyi(0, 0.5, &mut r).unwrap().len(), 0);
        assert_eq!(erdos_renyi(1, 0.5, &mut r).unwrap().num_edges(), 0);
    }

    #[test]
    fn dense_p_above_connectivity_threshold_is_connected() {
        // p = 3 ln n / n is comfortably above the ln n / n threshold.
        let mut r = rng();
        let n = 500usize;
        let p = 3.0 * (n as f64).ln() / n as f64;
        let g = erdos_renyi(n, p, &mut r).unwrap();
        assert!(g.is_connected());
    }
}
