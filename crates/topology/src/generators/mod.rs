//! Graph generators.
//!
//! The paper evaluates the protocol on the **complete graph** (see
//! [`crate::CompleteTopology`]) and on **k-regular random graphs** with a fixed
//! view size of 20 ([`random_regular`]). The remaining generators are provided
//! so that downstream users can study the protocol on the overlay structures
//! that real membership services or applications produce:
//!
//! * [`erdos_renyi`] — classic `G(n, p)` random graphs;
//! * [`ring`], [`lattice2d`], [`star`] — deterministic reference structures;
//! * [`watts_strogatz`] — small-world graphs (high clustering, low diameter);
//! * [`barabasi_albert`] — scale-free graphs with hub nodes, the worst case for
//!   correlation accumulation discussed in Section 3.3 of the paper.
//!
//! All random generators take a caller-provided RNG so experiments remain
//! reproducible under a fixed seed.

mod deterministic;
mod random;
mod regular;
mod scale_free;
mod small_world;

pub use deterministic::{lattice2d, ring, star};
pub use random::erdos_renyi;
pub use regular::random_regular;
pub use scale_free::barabasi_albert;
pub use small_world::watts_strogatz;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegreeStats, Topology};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(4242)
    }

    #[test]
    fn every_random_generator_is_reproducible_under_a_fixed_seed() {
        let g1 = random_regular(200, 8, &mut rng()).unwrap();
        let g2 = random_regular(200, 8, &mut rng()).unwrap();
        assert_eq!(g1, g2);

        let g1 = erdos_renyi(200, 0.05, &mut rng()).unwrap();
        let g2 = erdos_renyi(200, 0.05, &mut rng()).unwrap();
        assert_eq!(g1, g2);

        let g1 = watts_strogatz(200, 6, 0.1, &mut rng()).unwrap();
        let g2 = watts_strogatz(200, 6, 0.1, &mut rng()).unwrap();
        assert_eq!(g1, g2);

        let g1 = barabasi_albert(200, 3, &mut rng()).unwrap();
        let g2 = barabasi_albert(200, 3, &mut rng()).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn paper_topology_twenty_regular_graph_is_regular_and_connected() {
        // The exact overlay used for Figure 3's "20-reg. random" curves.
        let g = random_regular(2_000, 20, &mut rng()).unwrap();
        let stats = DegreeStats::from_graph(&g);
        assert!(stats.is_regular_with_degree(20));
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 2_000 * 20 / 2);
    }

    #[test]
    fn generators_produce_expected_node_counts() {
        let mut r = rng();
        assert_eq!(ring(17).len(), 17);
        assert_eq!(star(9).len(), 9);
        assert_eq!(lattice2d(4, 6).unwrap().len(), 24);
        assert_eq!(erdos_renyi(50, 0.2, &mut r).unwrap().len(), 50);
        assert_eq!(watts_strogatz(50, 4, 0.2, &mut r).unwrap().len(), 50);
        assert_eq!(barabasi_albert(50, 2, &mut r).unwrap().len(), 50);
    }
}
