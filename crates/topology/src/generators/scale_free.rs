//! Barabási–Albert preferential-attachment (scale-free) graphs.

use crate::{Graph, NodeId, TopologyError};
use rand::Rng;

/// Generates a Barabási–Albert scale-free graph by preferential attachment.
///
/// The construction starts from a small complete seed of `m + 1` nodes; every
/// subsequent node attaches to `m` existing nodes chosen with probability
/// proportional to their current degree (implemented with the classic
/// repeated-endpoint trick: sampling a uniformly random endpoint of a
/// uniformly random existing edge is degree-proportional).
///
/// Scale-free overlays are the worst realistic case for gossip averaging: hub
/// nodes participate in many exchanges per cycle, so correlations accumulate
/// faster than on the random regular graphs analysed in the paper. The
/// ablation benchmarks use this generator to quantify that gap.
///
/// # Errors
///
/// Returns [`TopologyError::InvalidDegree`] if `m == 0` or `m + 1 >= nodes`.
///
/// # Example
///
/// ```
/// use overlay_topology::{generators, Topology};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let g = generators::barabasi_albert(500, 3, &mut rng)?;
/// assert_eq!(g.len(), 500);
/// assert!(g.is_connected());
/// # Ok::<(), overlay_topology::TopologyError>(())
/// ```
pub fn barabasi_albert<R: Rng + ?Sized>(
    nodes: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, TopologyError> {
    if m == 0 {
        return Err(TopologyError::InvalidDegree {
            nodes,
            degree: m,
            reason: "attachment parameter m must be positive",
        });
    }
    if m + 1 >= nodes {
        return Err(TopologyError::InvalidDegree {
            nodes,
            degree: m,
            reason: "need at least m + 2 nodes for preferential attachment",
        });
    }

    let seed = m + 1;
    let mut graph = Graph::with_nodes_and_degree(nodes, 2 * m);
    // Degree-proportional sampling pool: every edge contributes both endpoints.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * nodes * m);

    for i in 0..seed {
        for j in (i + 1)..seed {
            graph.add_edge_unchecked(NodeId::new(i), NodeId::new(j));
            endpoint_pool.push(i as u32);
            endpoint_pool.push(j as u32);
        }
    }

    let mut targets: Vec<u32> = Vec::with_capacity(m);
    for new_node in seed..nodes {
        targets.clear();
        // Draw m distinct degree-proportional targets.
        let mut guard = 0usize;
        while targets.len() < m {
            let candidate = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if !targets.contains(&candidate) {
                targets.push(candidate);
            }
            guard += 1;
            if guard > 100 * m {
                // Practically unreachable: fall back to uniform selection to
                // guarantee termination.
                let fallback = rng.gen_range(0..new_node) as u32;
                if !targets.contains(&fallback) {
                    targets.push(fallback);
                }
            }
        }
        for &target in &targets {
            graph.add_edge_unchecked(NodeId::new(new_node), NodeId::from_u32(target));
            endpoint_pool.push(new_node as u32);
            endpoint_pool.push(target);
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DegreeStats, Topology};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut r = rng();
        assert!(barabasi_albert(10, 0, &mut r).is_err());
        assert!(barabasi_albert(4, 3, &mut r).is_err());
        assert!(barabasi_albert(3, 2, &mut r).is_err());
    }

    #[test]
    fn node_and_edge_counts_match_the_model() {
        let mut r = rng();
        let (n, m) = (300usize, 3usize);
        let g = barabasi_albert(n, m, &mut r).unwrap();
        assert_eq!(g.len(), n);
        // seed complete graph edges + m per added node
        let expected_edges = (m + 1) * m / 2 + (n - m - 1) * m;
        assert_eq!(g.num_edges(), expected_edges);
    }

    #[test]
    fn graphs_are_connected() {
        let mut r = rng();
        for (n, m) in [(50, 1), (200, 2), (500, 4)] {
            assert!(barabasi_albert(n, m, &mut r).unwrap().is_connected());
        }
    }

    #[test]
    fn produces_hubs_with_much_larger_than_average_degree() {
        let mut r = rng();
        let g = barabasi_albert(2_000, 2, &mut r).unwrap();
        let stats = DegreeStats::from_graph(&g);
        assert!(
            stats.max as f64 > 5.0 * stats.mean,
            "expected hub nodes, max degree {} vs mean {}",
            stats.max,
            stats.mean
        );
        assert!(stats.min >= 2);
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let mut r = rng();
        let g = barabasi_albert(400, 3, &mut r).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (a, b) in g.edges() {
            assert_ne!(a, b);
            assert!(seen.insert((a, b)));
        }
    }
}
