//! Explicit adjacency-list graphs.

use crate::{NodeId, Topology, TopologyError};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};

/// An undirected simple graph stored as adjacency lists plus an edge list.
///
/// `Graph` is the workhorse representation behind every generator in
/// [`crate::generators`]. It keeps both adjacency lists (for neighbour
/// sampling, the hot path of the gossip protocol) and a flat edge list (for
/// uniform random *edge* sampling, needed by the `GETPAIR_RAND` strategy of
/// the paper).
///
/// The structure is append-only: nodes are fixed at construction time and
/// edges can only be added. Removal of nodes under churn is modelled one level
/// up (in the simulator) by masking dead nodes, which matches the paper's
/// model where a failed node simply stops being selected.
///
/// # Example
///
/// ```
/// use overlay_topology::{Graph, NodeId, Topology};
///
/// let mut g = Graph::with_nodes(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.contains_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(!g.contains_edge(NodeId::new(0), NodeId::new(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Creates a graph with `nodes` isolated vertices and no edges.
    pub fn with_nodes(nodes: usize) -> Self {
        Graph {
            adjacency: vec![Vec::new(); nodes],
            edges: Vec::new(),
        }
    }

    /// Creates a graph with `nodes` vertices, pre-allocating adjacency lists
    /// of capacity `expected_degree` (a small optimisation for generators that
    /// know the target degree in advance).
    pub fn with_nodes_and_degree(nodes: usize, expected_degree: usize) -> Self {
        Graph {
            adjacency: (0..nodes)
                .map(|_| Vec::with_capacity(expected_degree))
                .collect(),
            edges: Vec::with_capacity(nodes * expected_degree / 2),
        }
    }

    /// Number of edges in the graph.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over all edges as `(smaller, larger)` pairs in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over all node identifiers, `0..len()`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adjacency.len()).map(NodeId::new)
    }

    /// Adds the undirected edge `{a, b}`.
    ///
    /// Self-loops and duplicate edges are rejected with
    /// [`TopologyError::InvalidParameter`]; out-of-range endpoints are rejected
    /// with [`TopologyError::NodeOutOfRange`].
    ///
    /// # Errors
    ///
    /// Returns an error when the edge is a self-loop, already present, or one
    /// of the endpoints does not exist.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        let n = self.adjacency.len();
        for endpoint in [a, b] {
            if endpoint.index() >= n {
                return Err(TopologyError::NodeOutOfRange {
                    node: endpoint.index(),
                    nodes: n,
                });
            }
        }
        if a == b {
            return Err(TopologyError::InvalidParameter {
                reason: format!("self-loop on node {a} is not allowed"),
            });
        }
        if self.contains_edge(a, b) {
            return Err(TopologyError::InvalidParameter {
                reason: format!("edge {a}-{b} already present"),
            });
        }
        self.add_edge_unchecked(a, b);
        Ok(())
    }

    /// Adds the undirected edge `{a, b}` without checking for duplicates or
    /// self-loops. Intended for generators that guarantee validity themselves.
    pub(crate) fn add_edge_unchecked(&mut self, a: NodeId, b: NodeId) {
        self.adjacency[a.index()].push(b);
        self.adjacency[b.index()].push(a);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.edges.push((lo, hi));
    }

    /// Returns the neighbour list of `node` as a slice (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors_slice(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Returns `true` if every node has the same degree `k`.
    pub fn is_regular(&self) -> bool {
        match self.adjacency.first() {
            None => true,
            Some(first) => {
                let k = first.len();
                self.adjacency.iter().all(|adj| adj.len() == k)
            }
        }
    }

    /// Returns `true` if the graph is connected (an empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        crate::connectivity::is_connected(self)
    }

    /// Returns per-degree statistics for the graph.
    pub fn degree_stats(&self) -> crate::DegreeStats {
        crate::DegreeStats::from_graph(self)
    }

    /// Produces a complete graph over `nodes` vertices with explicit edges.
    ///
    /// This materialises `nodes·(nodes−1)/2` edges, so it is only suitable for
    /// small networks (tests, examples). For large complete overlays use
    /// [`crate::CompleteTopology`], which is virtual.
    pub fn complete(nodes: usize) -> Self {
        let mut g = Graph::with_nodes_and_degree(nodes, nodes.saturating_sub(1));
        for i in 0..nodes {
            for j in (i + 1)..nodes {
                g.add_edge_unchecked(NodeId::new(i), NodeId::new(j));
            }
        }
        g
    }

    /// Rewires the graph into a random permutation of node labels, preserving
    /// structure. Useful in tests that must show label-invariance of the
    /// protocol.
    pub fn relabelled<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let n = self.len();
        let mut permutation: Vec<usize> = (0..n).collect();
        permutation.shuffle(rng);
        let mut g = Graph::with_nodes(n);
        for (a, b) in self.edges() {
            g.add_edge_unchecked(
                NodeId::new(permutation[a.index()]),
                NodeId::new(permutation[b.index()]),
            );
        }
        g
    }
}

impl Topology for Graph {
    fn len(&self) -> usize {
        self.adjacency.len()
    }

    fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    fn random_neighbor(&self, node: NodeId, rng: &mut dyn RngCore) -> Option<NodeId> {
        let adj = &self.adjacency[node.index()];
        if adj.is_empty() {
            None
        } else {
            let idx = rng.gen_range(0..adj.len());
            Some(adj[idx])
        }
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency[node.index()].clone()
    }

    fn contains_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a.index() >= self.len() || b.index() >= self.len() {
            return false;
        }
        // Scan the shorter adjacency list.
        let (from, to) = if self.adjacency[a.index()].len() <= self.adjacency[b.index()].len() {
            (a, b)
        } else {
            (b, a)
        };
        self.adjacency[from.index()].contains(&to)
    }

    fn random_edge(&self, rng: &mut dyn RngCore) -> Option<(NodeId, NodeId)> {
        if self.edges.is_empty() {
            None
        } else {
            let idx = rng.gen_range(0..self.edges.len());
            Some(self.edges[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(12345)
    }

    #[test]
    fn empty_graph_has_no_nodes_or_edges() {
        let g = Graph::with_nodes(0);
        assert_eq!(g.len(), 0);
        assert!(g.is_empty());
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_regular());
        assert!(g.is_connected());
    }

    #[test]
    fn add_edge_updates_both_endpoints() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(2)), 1);
        assert_eq!(g.degree(NodeId::new(1)), 0);
        assert_eq!(g.neighbors(NodeId::new(0)), vec![NodeId::new(2)]);
        assert_eq!(g.neighbors(NodeId::new(2)), vec![NodeId::new(0)]);
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::with_nodes(3);
        let err = g.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter { .. }));
    }

    #[test]
    fn add_edge_rejects_duplicate() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let err = g.add_edge(NodeId::new(1), NodeId::new(0)).unwrap_err();
        assert!(matches!(err, TopologyError::InvalidParameter { .. }));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::with_nodes(3);
        let err = g.add_edge(NodeId::new(0), NodeId::new(3)).unwrap_err();
        assert_eq!(err, TopologyError::NodeOutOfRange { node: 3, nodes: 3 });
    }

    #[test]
    fn contains_edge_is_symmetric() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(1), NodeId::new(4)).unwrap();
        assert!(g.contains_edge(NodeId::new(1), NodeId::new(4)));
        assert!(g.contains_edge(NodeId::new(4), NodeId::new(1)));
        assert!(!g.contains_edge(NodeId::new(0), NodeId::new(4)));
        assert!(!g.contains_edge(NodeId::new(0), NodeId::new(40)));
    }

    #[test]
    fn random_neighbor_of_isolated_node_is_none() {
        let g = Graph::with_nodes(2);
        let mut r = rng();
        assert!(g.random_neighbor(NodeId::new(0), &mut r).is_none());
    }

    #[test]
    fn random_neighbor_only_returns_actual_neighbors() {
        let mut g = Graph::with_nodes(6);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(5)).unwrap();
        let allowed: HashSet<NodeId> = [NodeId::new(1), NodeId::new(2), NodeId::new(5)]
            .into_iter()
            .collect();
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..200 {
            let nb = g.random_neighbor(NodeId::new(0), &mut r).unwrap();
            assert!(allowed.contains(&nb));
            seen.insert(nb);
        }
        // With 200 draws from 3 neighbours all of them should appear.
        assert_eq!(seen, allowed);
    }

    #[test]
    fn random_edge_covers_all_edges() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let mut r = rng();
        let mut seen = HashSet::new();
        for _ in 0..300 {
            let e = g.random_edge(&mut r).unwrap();
            assert!(g.contains_edge(e.0, e.1));
            seen.insert(e);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn random_edge_on_empty_graph_is_none() {
        let g = Graph::with_nodes(3);
        let mut r = rng();
        assert!(g.random_edge(&mut r).is_none());
    }

    #[test]
    fn complete_graph_has_all_edges() {
        let g = Graph::complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_regular());
        assert!(g.is_connected());
        for i in 0..6 {
            assert_eq!(g.degree(NodeId::new(i)), 5);
            for j in 0..6 {
                if i != j {
                    assert!(g.contains_edge(NodeId::new(i), NodeId::new(j)));
                }
            }
        }
    }

    #[test]
    fn edges_are_stored_normalised_lo_hi() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(NodeId::new(0), NodeId::new(2))]);
    }

    #[test]
    fn relabelled_preserves_structure() {
        let g = Graph::complete(8);
        let mut r = rng();
        let h = g.relabelled(&mut r);
        assert_eq!(h.len(), g.len());
        assert_eq!(h.num_edges(), g.num_edges());
        assert!(h.is_regular());
    }

    #[test]
    fn node_ids_iterates_densely() {
        let g = Graph::with_nodes(4);
        let ids: Vec<_> = g.node_ids().collect();
        assert_eq!(
            ids,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
    }

    #[test]
    fn neighbors_slice_matches_neighbors() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap();
        assert_eq!(
            g.neighbors_slice(NodeId::new(0)),
            &g.neighbors(NodeId::new(0))[..]
        );
    }

    #[test]
    fn is_regular_detects_irregularity() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(!g.is_regular());
    }
}
