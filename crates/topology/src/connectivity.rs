//! Connectivity analysis: BFS distances, components, diameter estimation.

use crate::{Graph, NodeId, Topology};
use rand::Rng;
use std::collections::VecDeque;

/// Returns `true` if `graph` is connected. The empty graph counts as connected.
pub(crate) fn is_connected(graph: &Graph) -> bool {
    let n = graph.len();
    if n == 0 {
        return true;
    }
    let distances = bfs_distances(graph, NodeId::new(0));
    distances.iter().all(|d| d.is_some())
}

/// Computes the BFS distance (in hops) from `source` to every node.
///
/// Unreachable nodes are reported as `None`.
///
/// # Example
///
/// ```
/// use overlay_topology::{bfs_distances, generators, NodeId};
///
/// let ring = generators::ring(6);
/// let dist = bfs_distances(&ring, NodeId::new(0));
/// assert_eq!(dist[3], Some(3)); // opposite side of a 6-ring
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let n = graph.len();
    assert!(source.index() < n, "source {source} out of range");
    let mut distances: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    distances[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(current) = queue.pop_front() {
        let d = distances[current.index()].expect("queued nodes have distances"); // lint-allow(unwrap): BFS assigns a distance before queueing any node
        for &next in graph.neighbors_slice(current) {
            if distances[next.index()].is_none() {
                distances[next.index()] = Some(d + 1);
                queue.push_back(next);
            }
        }
    }
    distances
}

/// Partitions the graph into connected components.
///
/// Returns one vector of node identifiers per component, ordered by the
/// smallest node identifier they contain.
///
/// # Example
///
/// ```
/// use overlay_topology::{connected_components, Graph, NodeId};
///
/// let mut g = Graph::with_nodes(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// let components = connected_components(&g);
/// assert_eq!(components.len(), 3); // {0,1}, {2}, {3}
/// ```
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.len();
    let mut component_of: Vec<Option<usize>> = vec![None; n];
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for start in 0..n {
        if component_of[start].is_some() {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        component_of[start] = Some(id);
        queue.push_back(NodeId::new(start));
        while let Some(current) = queue.pop_front() {
            members.push(current);
            for &next in graph.neighbors_slice(current) {
                if component_of[next.index()].is_none() {
                    component_of[next.index()] = Some(id);
                    queue.push_back(next);
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components
}

/// Estimates the diameter (longest shortest path) of a connected graph by
/// running BFS from `samples` randomly chosen sources and taking the maximum
/// eccentricity observed.
///
/// For a connected graph the estimate is a lower bound on the true diameter;
/// with a handful of samples it is usually within one or two hops on the
/// random graphs used in the paper. Returns `None` when the graph is empty or
/// disconnected.
///
/// # Example
///
/// ```
/// use overlay_topology::{estimate_diameter, generators};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ring = generators::ring(10);
/// let diameter = estimate_diameter(&ring, 10, &mut rng).unwrap();
/// assert_eq!(diameter, 5);
/// ```
pub fn estimate_diameter<R: Rng + ?Sized>(
    graph: &Graph,
    samples: usize,
    rng: &mut R,
) -> Option<usize> {
    let n = graph.len();
    if n == 0 || samples == 0 {
        return None;
    }
    let mut best = 0usize;
    for _ in 0..samples {
        let source = NodeId::new(rng.gen_range(0..n));
        let distances = bfs_distances(graph, source);
        let mut eccentricity = 0usize;
        for d in &distances {
            match d {
                Some(v) => eccentricity = eccentricity.max(*v),
                None => return None, // disconnected
            }
        }
        best = best.max(eccentricity);
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn bfs_on_path_graph() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_marks_unreachable_nodes() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d[2], None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_panics_on_bad_source() {
        let g = Graph::with_nodes(2);
        let _ = bfs_distances(&g, NodeId::new(5));
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(comps[1], vec![NodeId::new(2), NodeId::new(3)]);
        assert_eq!(comps[2], vec![NodeId::new(4)]);
    }

    #[test]
    fn components_of_connected_graph_is_single() {
        let g = Graph::complete(7);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 7);
    }

    #[test]
    fn components_of_empty_graph() {
        let g = Graph::with_nodes(0);
        assert!(connected_components(&g).is_empty());
    }

    #[test]
    fn diameter_of_complete_graph_is_one() {
        let g = Graph::complete(10);
        let mut r = rng();
        assert_eq!(estimate_diameter(&g, 5, &mut r), Some(1));
    }

    #[test]
    fn diameter_of_even_ring_is_half() {
        let g = generators::ring(12);
        let mut r = rng();
        assert_eq!(estimate_diameter(&g, 12, &mut r), Some(6));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        let mut r = rng();
        assert_eq!(estimate_diameter(&g, 3, &mut r), None);
    }

    #[test]
    fn diameter_edge_cases() {
        let mut r = rng();
        assert_eq!(estimate_diameter(&Graph::with_nodes(0), 3, &mut r), None);
        let g = Graph::complete(3);
        assert_eq!(estimate_diameter(&g, 0, &mut r), None);
    }

    #[test]
    fn is_connected_checks() {
        assert!(Graph::complete(5).is_connected());
        let mut g = Graph::with_nodes(2);
        assert!(!g.is_connected());
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(g.is_connected());
    }
}
